"""Deprecated backwards-compatible home of :class:`PlacementProblem`.

The shared problem description moved behind the domain-agnostic core
contract: the class now lives in :mod:`repro.problems.placement` (one
registered :class:`~repro.core.protocols.SearchProblem` implementation among
others), and everything in :mod:`repro.parallel` is written against the
protocol rather than the placement domain.  This module re-exports the old
names so existing imports keep working, but importing it is deprecated —
import from :mod:`repro.problems.placement` instead.
"""

from __future__ import annotations

import warnings

from ..problems.placement import PlacementProblem, restore_shared_problem

warnings.warn(
    "repro.parallel.problem is deprecated; import PlacementProblem and "
    "restore_shared_problem from repro.problems.placement instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["PlacementProblem", "restore_shared_problem"]
