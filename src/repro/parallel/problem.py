"""Backwards-compatible home of :class:`PlacementProblem`.

The shared problem description moved behind the domain-agnostic core
contract: the class now lives in :mod:`repro.problems.placement` (one
registered :class:`~repro.core.protocols.SearchProblem` implementation among
others), and everything in :mod:`repro.parallel` is written against the
protocol rather than the placement domain.  This module re-exports the old
names so existing imports keep working.
"""

from __future__ import annotations

from ..problems.placement import PlacementProblem, restore_shared_problem

__all__ = ["PlacementProblem", "restore_shared_problem"]
