"""Master process of the parallel tabu search — Figure 2 of the paper.

The master

1. creates the initial solution and the reference objective vector,
2. spawns the TSWs and hands every one the *same* initial solution,
3. runs ``global_iterations`` rounds: broadcast the incumbent best solution
   (plus its tabu list), collect one result per TSW — interrupting the slow
   ones according to the synchronisation policy — and adopt the best,
4. finally stops all workers and returns the best solution, its exact
   objectives, and the best-cost-versus-virtual-time trace the heterogeneity
   experiment (Figure 11) plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from .._rng import derive_seed
from ..core.protocols import SearchProblem
from ..tabu.candidate import partition_cells
from .config import ParallelSearchParams
from .delta import DeltaEncoder, decode_solution, swap_list_between
from .messages import GlobalStart, ReportNow, Tags, TswResult
from .sync import SyncPolicy
from .tsw import tsw_process

__all__ = ["GlobalIterationRecord", "MasterResult", "master_process"]


@dataclass
class GlobalIterationRecord:
    """What happened during one global iteration (for analysis and tests)."""

    index: int
    best_cost_after: float
    received_costs: Tuple[float, ...]
    interrupted_tsws: int
    finish_time: float


@dataclass
class MasterResult:
    """Return value of the master process."""

    best_cost: float
    #: Domain-specific crisp objective values of the final best solution
    #: (an ``ObjectiveVector`` for placement, the QAP objectives for QAP).
    best_objectives: Any
    best_solution: np.ndarray
    initial_cost: float
    #: Fine-grained (virtual time, best cost) series: the master's own points
    #: (initial evaluation and every global iteration) merged with the
    #: per-local-iteration points reported by all TSWs, sorted by time and
    #: reduced to the best-so-far envelope.  This is the series Figure 11
    #: plots and the speedup experiments query for time-to-quality.
    trace: List[Tuple[float, float]] = field(default_factory=list)
    #: Coarse (virtual time, best cost) series with one point per global
    #: iteration, as seen by the master alone.
    master_trace: List[Tuple[float, float]] = field(default_factory=list)
    global_records: List[GlobalIterationRecord] = field(default_factory=list)
    total_tsw_evaluations: int = 0


def master_process(ctx, problem: SearchProblem, params: ParallelSearchParams):
    """Generator body of the master process (run it under a PVM kernel)."""
    sync = SyncPolicy(mode=params.sync_mode, report_fraction=params.report_fraction)
    num_cells = problem.num_cells

    # ---- initial solution and reference cost ------------------------------
    init_seed = (
        params.initial_placement_seed
        if params.initial_placement_seed is not None
        else derive_seed(params.seed, "initial")
    )
    initial_solution = problem.random_solution(init_seed)
    evaluator = problem.make_evaluator(initial_solution)
    yield ctx.compute(problem.install_work_units(), label="initial-eval")
    best_cost = evaluator.cost()
    initial_cost = best_cost
    best_solution = initial_solution.copy()
    best_tabu_payload: Optional[tuple] = None
    start_time = yield ctx.now()
    master_trace: List[Tuple[float, float]] = [(start_time, best_cost)]
    worker_points: List[Tuple[float, float]] = []
    global_records: List[GlobalIterationRecord] = []

    # ---- worker topology ---------------------------------------------------
    tsw_ranges = partition_cells(
        num_cells, params.num_tsws, scheme=params.tsw_partition_scheme, label_prefix="tsw"
    )
    clw_ranges = partition_cells(
        num_cells, params.clws_per_tsw, scheme=params.clw_partition_scheme, label_prefix="clw"
    )
    tsw_pids: List[int] = []
    for tsw_index in range(params.num_tsws):
        pid = yield ctx.spawn(
            tsw_process,
            problem,
            params,
            tsw_index,
            tsw_ranges[tsw_index],
            list(clw_ranges),
            derive_seed(params.seed, "tsw", tsw_index),
            name=f"tsw{tsw_index}",
        )
        tsw_pids.append(pid)

    total_tsw_evaluations = 0
    # Per-TSW resident tracking: broadcasts go out as swap-list deltas
    # against each TSW's previously *reported* solution (what it keeps
    # resident after normalising), falling back to full shipment on first
    # contact, after a needs_full NACK, or when the searches diverged.
    encoder = DeltaEncoder()

    # ---- global iterations --------------------------------------------------
    for global_iteration in range(params.global_iterations):
        broadcast_solution = best_solution.copy()
        for pid in tsw_pids:
            payload = encoder.encode(pid, broadcast_solution, version=global_iteration)
            yield ctx.send(
                pid,
                Tags.GLOBAL_START,
                GlobalStart(
                    global_iteration=global_iteration,
                    solution=payload,
                    tabu_payload=best_tabu_payload,
                ),
            )

        pending: Set[int] = set(tsw_pids)
        results: List[TswResult] = []
        decoded_solutions: Dict[int, np.ndarray] = {}
        interrupt_sent = False
        while pending:
            reply = yield ctx.recv(tag=Tags.TSW_RESULT)
            result: TswResult = reply.payload
            # Account for the sender *before* the staleness check: under a
            # truly asynchronous backend a late or duplicate report from an
            # earlier iteration may be the only message this TSW sends this
            # round, and skipping the discard would wedge the collect loop
            # forever (tests/parallel/test_stale_results.py).
            pending.discard(reply.src)
            if result.global_iteration != global_iteration:
                # stale: sender accounted for, result ignored; its resident
                # state is no longer trustworthy
                encoder.invalidate(reply.src)
                continue
            if result.needs_full:
                # the TSW could not apply the delta — re-broadcast in full
                encoder.invalidate(reply.src)
                payload = encoder.encode(
                    reply.src, broadcast_solution, version=global_iteration
                )
                yield ctx.send(
                    reply.src,
                    Tags.GLOBAL_START,
                    GlobalStart(
                        global_iteration=global_iteration,
                        solution=payload,
                        tabu_payload=best_tabu_payload,
                    ),
                )
                pending.add(reply.src)
                continue
            if any(r.tsw_index == result.tsw_index for r in results):
                encoder.invalidate(reply.src)
                continue  # duplicate of an already-recorded result
            decoded = decode_solution(
                result.best_solution,
                broadcast_solution,
                expected_base_version=global_iteration,
            )
            if decoded is None:
                # undecodable report: ignore it, and ship this TSW a full
                # solution next round
                encoder.invalidate(reply.src)
                continue
            decoded_solutions[result.tsw_index] = decoded
            # after reporting, the TSW normalises onto its reported best —
            # record it so the next broadcast can be a delta
            encoder.set_resident(reply.src, global_iteration, decoded)
            results.append(result)
            worker_points.extend(result.trace)
            if (
                sync.is_heterogeneous
                and not interrupt_sent
                and pending
                and sync.should_interrupt(len(results), len(tsw_pids))
            ):
                for pid in pending:
                    yield ctx.send(pid, Tags.REPORT_NOW, ReportNow(round_id=global_iteration))
                interrupt_sent = True

        # Arrival order is nondeterministic on the real backends; order the
        # round's results by worker index so everything downstream (records,
        # cost ties) is independent of message timing.
        results.sort(key=lambda r: r.tsw_index)

        # Adopt the best reported solution.  The master re-evaluates the
        # winner with its own (exact) evaluator so that the best-cost trace
        # and the final result use one canonical cost, independent of the
        # per-worker timing-surrogate state.  The evaluator holds the
        # broadcast solution, so each candidate is reached by committing its
        # delta and rejected candidates are rewound with a state restore —
        # no full cache rebuilds on this path either.
        results_by_cost = sorted(results, key=lambda r: r.best_cost)
        winner: Optional[TswResult] = None
        base_state = evaluator.save_state()
        for result in results_by_cost:
            if result.best_cost >= best_cost:
                break
            candidate = decoded_solutions[result.tsw_index]
            delta = swap_list_between(broadcast_solution, candidate)
            evaluator.apply_swaps(delta)
            yield ctx.compute(
                problem.adopt_work_units(int(delta.shape[0])), label="select-best"
            )
            exact_cost = evaluator.exact_cost()
            if exact_cost < best_cost:
                best_cost = exact_cost
                best_solution = candidate.copy()
                winner = result
                break
            # the reported cost was optimistic; try the next-best result
            evaluator.restore_state(base_state)
        if winner is not None:
            best_tabu_payload = winner.tabu_payload
        total_tsw_evaluations = sum(result.evaluations for result in results)

        now = yield ctx.now()
        master_trace.append((now, best_cost))
        global_records.append(
            GlobalIterationRecord(
                index=global_iteration,
                best_cost_after=best_cost,
                received_costs=tuple(result.best_cost for result in results),
                interrupted_tsws=sum(1 for result in results if result.interrupted),
                finish_time=now,
            )
        )

    # ---- shutdown ------------------------------------------------------------
    for pid in tsw_pids:
        yield ctx.send(pid, Tags.STOP)

    # exact objectives of the final best solution
    evaluator.install_solution(best_solution)
    evaluator.exact_cost()
    best_objectives = evaluator.objectives()

    # Merge the master's coarse points with the per-worker fine-grained points
    # into one best-so-far envelope sorted by time.
    merged = sorted(master_trace + worker_points, key=lambda point: point[0])
    envelope: List[Tuple[float, float]] = []
    incumbent = float("inf")
    for moment, cost in merged:
        incumbent = min(incumbent, cost)
        envelope.append((moment, incumbent))

    return MasterResult(
        best_cost=float(best_cost),
        best_objectives=best_objectives,
        best_solution=best_solution,
        initial_cost=initial_cost,
        trace=envelope,
        master_trace=master_trace,
        global_records=global_records,
        total_tsw_evaluations=total_tsw_evaluations,
    )
