"""Master process of the parallel tabu search — Figure 2 of the paper.

The master

1. creates the initial solution and the reference objective vector,
2. spawns the TSWs and hands every one the *same* initial solution,
3. runs ``global_iterations`` rounds: broadcast the incumbent best solution
   (plus its tabu list), collect one result per TSW — interrupting the slow
   ones according to the synchronisation policy — and adopt the best,
4. finally stops all workers and returns the best solution, its exact
   objectives, and the best-cost-versus-virtual-time trace the heterogeneity
   experiment (Figure 11) plots.

The session layer (PR 7) extends this into a *resumable* process: the round
loop can be entered at any global iteration from a harvested
:class:`MasterRunState`, capped after ``max_rounds`` rounds, or paused by a
``CANCEL`` message — in all three cases the master harvests the full worker
subtree state (master → TSW → CLW) before stopping the workers, and returns
an *incomplete* :class:`MasterResult` whose ``run_state`` resumes the run
bit-identically.  Workers are acquired either by spawning (cold start and
checkpoint restore) or by shipping ``SETUP`` messages to the persistent
worker loops of a warm :class:`~repro.session.WorkerPool`.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from .._rng import derive_seed
from ..core.protocols import SearchProblem
from ..metrics.trace import FaultEvent, best_so_far_envelope
from ..tabu.candidate import partition_cells, partition_cells_weighted
from .config import ParallelSearchParams
from .delta import DeltaEncoder, decode_solution, swap_list_between
from .health import HealthLedger
from .messages import GlobalStart, ReportNow, Tags, TswResult, TswSetup, TswWorkerState
from .sync import SyncPolicy
from .tsw import tsw_process

__all__ = ["GlobalIterationRecord", "MasterResult", "MasterRunState", "master_process"]


@dataclass
class GlobalIterationRecord:
    """What happened during one global iteration (for analysis and tests)."""

    index: int
    best_cost_after: float
    received_costs: Tuple[float, ...]
    interrupted_tsws: int
    finish_time: float


@dataclass
class MasterRunState:
    """Serializable mid-run state of the whole search tree.

    Everything a fresh master (under a fresh kernel, on any backend) needs
    to continue the run with a bit-identical trajectory: the master's own
    incumbent and exact evaluator state, the per-TSW resident-solution
    bookkeeping of the delta protocol (keyed by ``tsw_index`` — pids are not
    stable across kernels), the accumulated traces/records, and one
    :class:`~repro.parallel.messages.TswWorkerState` per TSW (each carrying
    its CLW states).
    """

    next_iteration: int
    best_cost: float
    best_solution: np.ndarray
    best_tabu_payload: Optional[tuple]
    initial_cost: float
    #: The assignment the master's evaluator currently holds, plus the
    #: pickled exact ``save_state()`` blob (delta-adopted state is only
    #: float-tolerance-equal to a fresh install, so the blob is canonical).
    evaluator_assignment: np.ndarray
    evaluator_state: bytes
    #: ``DeltaEncoder.export_residents()`` re-keyed by ``tsw_index``.
    master_residents: Dict[Any, Tuple[int, np.ndarray]]
    master_trace: List[Tuple[float, float]] = field(default_factory=list)
    worker_points: List[Tuple[float, float]] = field(default_factory=list)
    global_records: List[GlobalIterationRecord] = field(default_factory=list)
    total_tsw_evaluations: int = 0
    worker_states: Tuple[TswWorkerState, ...] = ()
    #: Session-timeline virtual time at which the state was harvested; a
    #: resume under a fresh kernel (clock restarts at zero) shifts its new
    #: trace points by this much so the stitched trace stays monotone.
    clock_base: float = 0.0
    #: ``HealthLedger.export_state()`` of the fault-tolerant master, or
    #: ``None``.  A resume revives every worker (cold resumes respawn, pool
    #: resumes repair) but keeps the observed throughput history.
    health: Optional[tuple] = None
    #: Fault incidents of the epoch that produced this state (observability;
    #: the session layer accumulates events across epochs).
    fault_events: List[FaultEvent] = field(default_factory=list)
    # --- elasticity (PR 10) -------------------------------------------------
    #: Total worker indices ever allocated (initial topology + mid-run
    #: admissions).  ``0`` on pre-elasticity checkpoints means "use
    #: ``params.num_tsws``".
    num_workers: int = 0
    #: Live range assignment at pause, keyed by ``tsw_index``.  A resume of a
    #: grown/drained topology must restore these exactly — re-deriving them
    #: from worker counts would diverge from the admission-time re-partition.
    assigned_ranges: Optional[Dict[int, Any]] = None
    #: Indices gracefully retired before the pause; a resume does not respawn
    #: them.
    drained_workers: Tuple[int, ...] = ()
    #: Speed hints in effect at pause (config extended by admission-time
    #: hints), keyed by ``tsw_index``.
    speed_hints: Optional[Dict[int, float]] = None


@dataclass
class MasterResult:
    """Return value of the master process."""

    best_cost: float
    #: Domain-specific crisp objective values of the final best solution
    #: (an ``ObjectiveVector`` for placement, the QAP objectives for QAP).
    #: ``None`` on a paused (incomplete) result — the evaluator state is
    #: kept pristine for the checkpoint instead of being re-installed.
    best_objectives: Any
    best_solution: np.ndarray
    initial_cost: float
    #: Fine-grained (virtual time, best cost) series: the master's own points
    #: (initial evaluation and every global iteration) merged with the
    #: per-local-iteration points reported by all TSWs, sorted by time and
    #: reduced to the best-so-far envelope.  This is the series Figure 11
    #: plots and the speedup experiments query for time-to-quality.
    trace: List[Tuple[float, float]] = field(default_factory=list)
    #: Coarse (virtual time, best cost) series with one point per global
    #: iteration, as seen by the master alone.
    master_trace: List[Tuple[float, float]] = field(default_factory=list)
    global_records: List[GlobalIterationRecord] = field(default_factory=list)
    total_tsw_evaluations: int = 0
    #: ``False`` when the run was paused (cancel or ``max_rounds``) before
    #: all global iterations finished; ``run_state`` then resumes it.
    complete: bool = True
    run_state: Optional[MasterRunState] = None
    #: Fault incidents observed during the run (fault mode only): worker
    #: deaths, deadline re-sends, limplock transitions, range re-assignments.
    fault_events: List[FaultEvent] = field(default_factory=list)
    #: Worker names (``"tsw<i>"``) declared dead during the run.
    dead_workers: Tuple[str, ...] = ()
    #: Worker names admitted mid-run (``WorkerPool.grow`` or a seeded
    #: ``SpawnWorker`` plan entry), in admission order.
    admitted_workers: Tuple[str, ...] = ()
    #: Worker names gracefully drained during the run (no strike).
    drained_workers: Tuple[str, ...] = ()
    #: Total worker indices ever part of the run (initial + admitted).
    num_workers: int = 0
    #: Final ``HealthLedger.export_state()`` rows (fault mode only) — lets
    #: callers check that admitted workers actually contributed evaluations.
    health: Optional[tuple] = None


def master_process(
    ctx,
    problem: SearchProblem,
    params: ParallelSearchParams,
    resume_state: Optional[MasterRunState] = None,
    max_rounds: Optional[int] = None,
    pool_pids: Optional[List[int]] = None,
):
    """Generator body of the master process (run it under a PVM kernel).

    Parameters
    ----------
    resume_state:
        Continue a paused run from this harvested state instead of creating
        a fresh initial solution.
    max_rounds:
        Run at most this many global iterations this invocation, then pause
        and return an incomplete result (session ``step``/chunked submit).
    pool_pids:
        Pids of persistent TSW worker loops (one per TSW, in ``tsw_index``
        order) to configure via ``SETUP`` instead of spawning fresh workers.
    """
    sync = SyncPolicy(mode=params.sync_mode, report_fraction=params.report_fraction)
    num_cells = problem.num_cells

    # ---- initial solution and reference cost ------------------------------
    if resume_state is None:
        init_seed = (
            params.initial_placement_seed
            if params.initial_placement_seed is not None
            else derive_seed(params.seed, "initial")
        )
        initial_solution = problem.random_solution(init_seed)
        evaluator = problem.make_evaluator(initial_solution)
        yield ctx.compute(problem.install_work_units(), label="initial-eval")
        best_cost = evaluator.cost()
        initial_cost = best_cost
        best_solution = initial_solution.copy()
        best_tabu_payload: Optional[tuple] = None
        start_time = yield ctx.now()
        master_trace: List[Tuple[float, float]] = [(start_time, best_cost)]
        worker_points: List[Tuple[float, float]] = []
        global_records: List[GlobalIterationRecord] = []
        total_tsw_evaluations = 0
        start_round = 0
        time_offset = 0.0
    else:
        resume_start = yield ctx.now()
        evaluator = problem.make_evaluator(
            np.asarray(resume_state.evaluator_assignment, dtype=np.int64)
        )
        yield ctx.compute(problem.install_work_units(), label="initial-eval")
        evaluator.restore_state(pickle.loads(resume_state.evaluator_state))
        best_cost = float(resume_state.best_cost)
        initial_cost = float(resume_state.initial_cost)
        best_solution = np.asarray(resume_state.best_solution, dtype=np.int64).copy()
        best_tabu_payload = resume_state.best_tabu_payload
        master_trace = list(resume_state.master_trace)
        worker_points = list(resume_state.worker_points)
        global_records = list(resume_state.global_records)
        total_tsw_evaluations = int(resume_state.total_tsw_evaluations)
        start_round = int(resume_state.next_iteration)
        # Same-kernel resume (warm pool): the clock kept rolling past the
        # harvest time, keep raw times.  Fresh-kernel resume (checkpoint
        # restore): the clock restarted, shift new points past the stitched
        # history so the merged trace stays monotone in time.
        time_offset = max(0.0, float(resume_state.clock_base) - float(resume_start))

    # ---- worker topology ---------------------------------------------------
    # The roster can have *grown* (mid-run admissions) or *shrunk* (graceful
    # drains) before a pause: the resume state records the total index space,
    # the retired indices, and the live range assignment, which must be
    # restored exactly — re-deriving ranges from worker counts would diverge
    # from the admission-time re-partition.
    initial_workers = params.num_tsws
    drained_indices: Set[int] = set()
    if resume_state is not None:
        initial_workers = int(getattr(resume_state, "num_workers", 0) or params.num_tsws)
        drained_indices = {
            int(index) for index in (getattr(resume_state, "drained_workers", ()) or ())
        }
    clw_ranges = partition_cells(
        num_cells, params.clws_per_tsw, scheme=params.clw_partition_scheme, label_prefix="clw"
    )
    saved_ranges = (
        getattr(resume_state, "assigned_ranges", None) if resume_state is not None else None
    )
    if saved_ranges:
        assigned_range: Dict[int, Any] = {int(k): v for k, v in saved_ranges.items()}
    else:
        # fresh start, or a pre-elasticity checkpoint: positional partition
        assigned_range = dict(
            enumerate(
                partition_cells(
                    num_cells,
                    initial_workers,
                    scheme=params.tsw_partition_scheme,
                    label_prefix="tsw",
                )
            )
        )
    for index in drained_indices:
        assigned_range.pop(index, None)
    shipped_range: Dict[int, Any] = dict(assigned_range)  # shipped at startup

    worker_states_by_index: Dict[int, TswWorkerState] = {}
    if resume_state is not None:
        worker_states_by_index = {s.tsw_index: s for s in resume_state.worker_states}

    spawn_indices = [i for i in range(initial_workers) if i not in drained_indices]
    # A grown pool may hold more loops than the base topology (the extras
    # idle until admitted or resumed into a grown roster) — only *too few*
    # loops is a misconfiguration.
    if pool_pids is not None and resume_state is None and len(pool_pids) < params.num_tsws:
        raise ValueError(
            f"pool provides {len(pool_pids)} TSW loops, params want {params.num_tsws}"
        )
    pool_loop_pids = list(pool_pids) if pool_pids is not None else []
    tsw_pids: List[int] = []
    pid_of_index: Dict[int, int] = {}
    index_of_pid: Dict[int, int] = {}
    setup_sent: Set[int] = set()
    for slot, tsw_index in enumerate(spawn_indices):
        if slot < len(pool_loop_pids):
            # Warm pool loop: ship a SETUP and wait for the ack before any
            # run traffic (the explicit handshake beats the simulated
            # network's size-dependent message latency).
            pid = pool_loop_pids[slot]
            yield ctx.send(
                pid,
                Tags.SETUP,
                TswSetup(
                    problem=problem,
                    params=params,
                    tsw_index=tsw_index,
                    tsw_range=assigned_range[tsw_index],
                    clw_ranges=tuple(clw_ranges),
                    seed=derive_seed(params.seed, "tsw", tsw_index),
                    initial_state=worker_states_by_index.get(tsw_index),
                ),
            )
            setup_sent.add(pid)
        else:
            # Cold spawn — also the overflow path when a resumed roster has
            # grown past the pool's loop count.
            pid = yield ctx.spawn(
                tsw_process,
                problem,
                params,
                tsw_index,
                assigned_range[tsw_index],
                list(clw_ranges),
                derive_seed(params.seed, "tsw", tsw_index),
                name=f"tsw{tsw_index}",
                initial_state=worker_states_by_index.get(tsw_index),
            )
        tsw_pids.append(pid)
        pid_of_index[tsw_index] = pid
        index_of_pid[pid] = tsw_index
    awaiting_acks = bool(setup_sent)

    # ---- fault mode: health ledger and elastic topology bookkeeping --------
    fault = params.fault if params.fault_enabled else None
    fault_events: List[FaultEvent] = []
    dead_pids: Set[int] = set()
    retired_pids: Set[int] = set()
    admitted_indices: List[int] = []
    drained_this_run: List[int] = []
    pending_admits: List[Any] = []
    pending_drains: List[Any] = []
    next_worker_index = initial_workers
    ledger: Optional[HealthLedger] = None
    if fault is not None:
        hints = getattr(params, "worker_speed_hints", None)
        hint_map: Dict[int, float] = dict(enumerate(hints)) if hints is not None else {}
        saved_hints = (
            getattr(resume_state, "speed_hints", None) if resume_state is not None else None
        )
        if saved_hints:
            hint_map.update({int(k): float(v) for k, v in saved_hints.items()})
        ledger = HealthLedger(
            fault,
            list(range(initial_workers)),
            speed_hints=hint_map or None,
        )
        if resume_state is not None and getattr(resume_state, "health", None) is not None:
            ledger.install_state(resume_state.health, revive=True)

    def _note_event(kind: str, index: int, detail: str = "", at: float = 0.0) -> None:
        fault_events.append(
            FaultEvent(time=float(at), kind=kind, worker=f"tsw{index}", detail=detail)
        )

    def _declare_dead(pid: int, reason: str, at: float) -> None:
        """Mark a TSW dead and re-partition its range over the survivors."""
        index = index_of_pid[pid]
        dead_pids.add(pid)
        ledger.mark_dead(index)
        encoder.invalidate(pid)
        _note_event("worker-dead", index, reason, at)
        survivors = [
            index_of_pid[p] for p in tsw_pids if p not in dead_pids and p not in retired_pids
        ]
        if not survivors:
            return
        weights = ledger.throughput_weights(survivors) if fault.rebalance else None
        if weights is not None:
            new_ranges = partition_cells_weighted(
                num_cells,
                weights,
                scheme=params.tsw_partition_scheme,
                label_prefix="tsw",
            )
        else:
            new_ranges = partition_cells(
                num_cells,
                len(survivors),
                scheme=params.tsw_partition_scheme,
                label_prefix="tsw",
            )
        for new_range, survivor in zip(new_ranges, survivors):
            assigned_range[survivor] = new_range
        _note_event(
            "range-reassigned",
            index,
            f"range split over {len(survivors)} survivor(s)",
            at,
        )

    # Per-TSW resident tracking: broadcasts go out as swap-list deltas
    # against each TSW's previously *reported* solution (what it keeps
    # resident after normalising), falling back to full shipment on first
    # contact, after a needs_full NACK, or when the searches diverged.
    encoder = DeltaEncoder()
    if resume_state is not None:
        encoder.install_residents(
            {
                pid_of_index[int(index)]: entry
                for index, entry in resume_state.master_residents.items()
                if int(index) in pid_of_index
            }
        )

    cancel_seen = False
    if awaiting_acks:
        # Warm pool: wait for every SETUP ack before any run traffic (the
        # explicit handshake beats the simulated network's size-dependent
        # message latency).
        acked: Set[int] = set()
        if fault is None:
            while len(acked) < len(setup_sent):
                ack = yield ctx.recv(tag=Tags.SETUP_ACK)
                acked.add(ack.src)
        else:
            # A loop that dies before acking must not wedge the handshake:
            # give the ack round one deadline and strike silent loops out up
            # front, so the run starts degraded instead of never starting.
            ack_deadline = float((yield ctx.now())) + fault.round_deadline
            while setup_sent - acked - dead_pids:
                now = yield ctx.now()
                remaining = ack_deadline - float(now)
                if remaining <= 0:
                    for pid in sorted(setup_sent - acked - dead_pids):
                        _declare_dead(pid, "no setup ack", float(now) + time_offset)
                    break
                reply = yield ctx.recv_timeout(remaining)
                if reply is None:
                    continue
                if reply.tag == Tags.SETUP_ACK:
                    acked.add(reply.src)
                elif reply.tag == Tags.WORKER_DOWN:
                    down_pid = getattr(reply.payload, "pid", None)
                    if down_pid in index_of_pid and down_pid not in dead_pids:
                        at = yield ctx.now()
                        reason = getattr(reply.payload, "reason", "") or "backend obituary"
                        _declare_dead(down_pid, reason, float(at) + time_offset)
                elif reply.tag == Tags.CANCEL:
                    # honoured at the first global-iteration boundary
                    cancel_seen = True
                elif reply.tag == Tags.ADMIT:
                    pending_admits.append(reply.payload)
                elif reply.tag == Tags.DRAIN:
                    pending_drains.append(reply.payload)

    # ---- global iterations --------------------------------------------------
    stop_round = params.global_iterations
    if max_rounds is not None:
        stop_round = min(stop_round, start_round + max(0, int(max_rounds)))
    next_round = start_round
    cancelled = False
    all_dead = False
    for global_iteration in range(start_round, stop_round):
        cancel = yield ctx.probe(tag=Tags.CANCEL)
        if cancel is not None or cancel_seen:
            cancelled = True
            break

        # ---- elasticity boundary: drains, admissions, one re-partition ----
        # Requests arrive asynchronously (a seeded SpawnWorker/DrainWorker
        # replay, or WorkerPool.grow/drain on a live backend) but are only
        # *processed* here, at the global-iteration boundary, where every
        # worker is idle and its last report is already folded in — that is
        # what makes the grown topology deterministic under the simulator.
        while True:
            request = yield ctx.probe(tag=Tags.DRAIN)
            if request is None:
                break
            pending_drains.append(request.payload)
        while True:
            request = yield ctx.probe(tag=Tags.ADMIT)
            if request is None:
                break
            pending_admits.append(request.payload)
        if pending_drains or pending_admits:
            boundary_at = yield ctx.now()
            boundary_at = float(boundary_at) + time_offset
            by_name = {f"tsw{index}": index for index in pid_of_index}
            for spec in pending_drains:
                index = by_name.get(getattr(spec, "name", ""))
                if index is None:
                    continue
                pid = pid_of_index[index]
                if pid in dead_pids or pid in retired_pids:
                    continue
                # Graceful retirement: the worker's current range is finished
                # (boundary semantics — its report for the previous round is
                # already adopted), so harvest is complete; no strike.
                retired_pids.add(pid)
                drained_indices.add(index)
                drained_this_run.append(index)
                if ledger is not None:
                    ledger.mark_drained(index)
                encoder.invalidate(pid)
                assigned_range.pop(index, None)
                shipped_range.pop(index, None)
                _note_event(
                    "worker-drained", index, "graceful drain (no strike)", boundary_at
                )
                yield ctx.send(pid, Tags.STOP)
            # (index, pool loop pid or None, speed hint, machine pin)
            new_workers: List[Tuple[int, Optional[int], Optional[float], Optional[int]]] = []
            for spec in pending_admits:
                admit_pids = list(getattr(spec, "pids", ()) or ())
                if admit_pids:
                    admit_hints = list(getattr(spec, "speed_hints", ()) or ())
                    admit_hints += [None] * (len(admit_pids) - len(admit_hints))
                    for loop_pid, hint in zip(admit_pids, admit_hints):
                        new_workers.append((next_worker_index, loop_pid, hint, None))
                        next_worker_index += 1
                else:
                    count = max(1, int(getattr(spec, "count", 1) or 1))
                    hint = getattr(spec, "speed_hint", None)
                    machine = getattr(spec, "machine", None)
                    for _ in range(count):
                        new_workers.append((next_worker_index, None, hint, machine))
                        next_worker_index += 1
            pending_admits = []
            pending_drains = []
            for index, _loop_pid, hint, _machine in new_workers:
                if ledger is not None:
                    ledger.add_worker(index, speed_hint=hint)
            # One re-partition over the final roster (survivors + admitted).
            # Admitted workers have no throughput observations yet, so the
            # weighted split only kicks in once everyone has reported.
            survivors = sorted(
                index_of_pid[p]
                for p in tsw_pids
                if p not in dead_pids and p not in retired_pids
            )
            roster = survivors + [entry[0] for entry in new_workers]
            if roster:
                weights = (
                    ledger.throughput_weights(roster)
                    if ledger is not None and fault.rebalance
                    else None
                )
                if weights is not None:
                    new_ranges = partition_cells_weighted(
                        num_cells,
                        weights,
                        scheme=params.tsw_partition_scheme,
                        label_prefix="tsw",
                    )
                else:
                    new_ranges = partition_cells(
                        num_cells,
                        len(roster),
                        scheme=params.tsw_partition_scheme,
                        label_prefix="tsw",
                    )
                for new_range, index in zip(new_ranges, roster):
                    assigned_range[index] = new_range
                _note_event(
                    "range-reassigned",
                    -1,
                    f"ranges re-partitioned over {len(roster)} worker(s)",
                    boundary_at,
                )
            admit_acks_expected: Set[int] = set()
            for index, loop_pid, hint, machine in new_workers:
                if loop_pid is not None:
                    yield ctx.send(
                        loop_pid,
                        Tags.SETUP,
                        TswSetup(
                            problem=problem,
                            params=params,
                            tsw_index=index,
                            tsw_range=assigned_range[index],
                            clw_ranges=tuple(clw_ranges),
                            seed=derive_seed(params.seed, "tsw", index),
                            initial_state=None,
                        ),
                    )
                    admit_acks_expected.add(loop_pid)
                    pid = loop_pid
                else:
                    pid = yield ctx.spawn(
                        tsw_process,
                        problem,
                        params,
                        index,
                        assigned_range[index],
                        list(clw_ranges),
                        derive_seed(params.seed, "tsw", index),
                        name=f"tsw{index}",
                        machine_index=machine,
                        initial_state=None,
                    )
                tsw_pids.append(pid)
                pid_of_index[index] = pid
                index_of_pid[pid] = index
                shipped_range[index] = assigned_range[index]
                admitted_indices.append(index)
                detail = "admitted mid-run"
                if hint is not None:
                    detail += f" (speed hint {float(hint):g})"
                _note_event("worker-admitted", index, detail, boundary_at)
            if admit_acks_expected:
                # SETUP/SETUP_ACK handshake with the pool-grown loops, fault-
                # aware like the startup handshake.
                acked_new: Set[int] = set()
                if fault is None:
                    while len(acked_new) < len(admit_acks_expected):
                        ack = yield ctx.recv(tag=Tags.SETUP_ACK)
                        acked_new.add(ack.src)
                else:
                    ack_deadline = float((yield ctx.now())) + fault.round_deadline
                    while admit_acks_expected - acked_new - dead_pids:
                        now = yield ctx.now()
                        remaining = ack_deadline - float(now)
                        if remaining <= 0:
                            for pid in sorted(admit_acks_expected - acked_new - dead_pids):
                                _declare_dead(pid, "no setup ack", float(now) + time_offset)
                            break
                        reply = yield ctx.recv_timeout(remaining)
                        if reply is None:
                            continue
                        if reply.tag == Tags.SETUP_ACK:
                            acked_new.add(reply.src)
                        elif reply.tag == Tags.WORKER_DOWN:
                            down_pid = getattr(reply.payload, "pid", None)
                            if down_pid in index_of_pid and down_pid not in dead_pids:
                                at = yield ctx.now()
                                reason = (
                                    getattr(reply.payload, "reason", "") or "backend obituary"
                                )
                                _declare_dead(down_pid, reason, float(at) + time_offset)
                        elif reply.tag == Tags.CANCEL:
                            cancel_seen = True
                        elif reply.tag == Tags.ADMIT:
                            pending_admits.append(reply.payload)
                        elif reply.tag == Tags.DRAIN:
                            pending_drains.append(reply.payload)

        participants = [
            pid for pid in tsw_pids if pid not in dead_pids and pid not in retired_pids
        ]
        if not participants:
            now = yield ctx.now()
            _note_event(
                "all-workers-dead", -1, "no survivors left", float(now) + time_offset
            )
            all_dead = True
            break
        broadcast_solution = best_solution.copy()
        for pid in participants:
            payload = encoder.encode(pid, broadcast_solution, version=global_iteration)
            index = index_of_pid[pid]
            range_update = None
            budget_update = None
            # Re-partitions (deaths, drains, admissions) must reach the
            # survivors whatever the mode — identity check, so an unchanged
            # range ships nothing.
            if assigned_range[index] is not shipped_range[index]:
                range_update = assigned_range[index]
            if fault is not None:
                budget = ledger.iteration_budget(index, params.tabu.local_iterations)
                if budget != params.tabu.local_iterations:
                    budget_update = budget
            yield ctx.send(
                pid,
                Tags.GLOBAL_START,
                GlobalStart(
                    global_iteration=global_iteration,
                    solution=payload,
                    tabu_payload=best_tabu_payload,
                    tsw_range=range_update,
                    local_iterations=budget_update,
                ),
            )
            if range_update is not None:
                shipped_range[index] = range_update

        pending: Set[int] = set(participants)
        results: List[TswResult] = []
        decoded_solutions: Dict[int, np.ndarray] = {}
        interrupt_sent = False
        round_start = None
        deadline = None
        if fault is not None:
            round_start = yield ctx.now()
            deadline = float(round_start) + fault.round_deadline
        while pending:
            if fault is None:
                reply = yield ctx.recv(tag=Tags.TSW_RESULT)
            else:
                now = yield ctx.now()
                remaining = deadline - float(now)
                if remaining <= 0:
                    # deadline elapsed: forgive with a full re-broadcast, or
                    # strike the worker out and re-partition its range
                    struck: List[int] = []
                    for pid in sorted(pending):
                        index = index_of_pid[pid]
                        if ledger.register_miss(index):
                            struck.append(pid)
                            continue
                        encoder.invalidate(pid)
                        payload = encoder.encode(
                            pid, broadcast_solution, version=global_iteration
                        )
                        _note_event(
                            "deadline-resend", index, at=float(now) + time_offset
                        )
                        yield ctx.send(
                            pid,
                            Tags.GLOBAL_START,
                            GlobalStart(
                                global_iteration=global_iteration,
                                solution=payload,
                                tabu_payload=best_tabu_payload,
                                tsw_range=assigned_range[index],
                            ),
                        )
                        shipped_range[index] = assigned_range[index]
                    for pid in struck:
                        pending.discard(pid)
                        _declare_dead(
                            pid,
                            "missed report deadline",
                            float(now) + time_offset,
                        )
                    deadline = float((yield ctx.now())) + fault.round_deadline
                    continue
                reply = yield ctx.recv_timeout(remaining)
                if reply is None:
                    continue
                if reply.tag == Tags.WORKER_DOWN:
                    down_pid = getattr(reply.payload, "pid", None)
                    if down_pid in index_of_pid and down_pid not in dead_pids:
                        pending.discard(down_pid)
                        reason = getattr(reply.payload, "reason", "") or "backend obituary"
                        at = yield ctx.now()
                        _declare_dead(down_pid, reason, float(at) + time_offset)
                    continue
                if reply.tag == Tags.CANCEL:
                    # scooped by the untagged receive — honoured at the next
                    # global-iteration boundary, like the probe
                    cancel_seen = True
                    continue
                if reply.tag == Tags.ADMIT:
                    # scooped by the untagged receive — processed at the next
                    # global-iteration boundary
                    pending_admits.append(reply.payload)
                    continue
                if reply.tag == Tags.DRAIN:
                    pending_drains.append(reply.payload)
                    continue
                if reply.tag != Tags.TSW_RESULT:
                    continue
            result: TswResult = reply.payload
            # Account for the sender *before* the staleness check: under a
            # truly asynchronous backend a late or duplicate report from an
            # earlier iteration may be the only message this TSW sends this
            # round, and skipping the discard would wedge the collect loop
            # forever (tests/parallel/test_stale_results.py).
            pending.discard(reply.src)
            if result.global_iteration != global_iteration:
                # stale: sender accounted for, result ignored; its resident
                # state is no longer trustworthy
                encoder.invalidate(reply.src)
                continue
            if result.needs_full:
                # the TSW could not apply the delta — re-broadcast in full
                encoder.invalidate(reply.src)
                payload = encoder.encode(
                    reply.src, broadcast_solution, version=global_iteration
                )
                yield ctx.send(
                    reply.src,
                    Tags.GLOBAL_START,
                    GlobalStart(
                        global_iteration=global_iteration,
                        solution=payload,
                        tabu_payload=best_tabu_payload,
                    ),
                )
                pending.add(reply.src)
                if fault is not None:
                    deadline = float((yield ctx.now())) + fault.round_deadline
                continue
            if any(r.tsw_index == result.tsw_index for r in results):
                encoder.invalidate(reply.src)
                continue  # duplicate of an already-recorded result
            decoded = decode_solution(
                result.best_solution,
                broadcast_solution,
                expected_base_version=global_iteration,
            )
            if decoded is None:
                # undecodable report: ignore it, and ship this TSW a full
                # solution next round
                encoder.invalidate(reply.src)
                continue
            decoded_solutions[result.tsw_index] = decoded
            # after reporting, the TSW normalises onto its reported best —
            # record it so the next broadcast can be a delta
            encoder.set_resident(reply.src, global_iteration, decoded)
            results.append(result)
            if time_offset:
                worker_points.extend(
                    (float(t) + time_offset, float(c)) for t, c in result.trace
                )
            else:
                worker_points.extend(result.trace)
            if (
                sync.is_heterogeneous
                and not interrupt_sent
                and pending
                and sync.should_interrupt(len(results), len(participants))
            ):
                for pid in pending:
                    yield ctx.send(pid, Tags.REPORT_NOW, ReportNow(round_id=global_iteration))
                interrupt_sent = True

        # Arrival order is nondeterministic on the real backends; order the
        # round's results by worker index so everything downstream (records,
        # cost ties) is independent of message timing.
        results.sort(key=lambda r: r.tsw_index)

        if fault is not None:
            # fold this round's reports into the throughput ledger and note
            # any fresh limplock transitions
            round_end = yield ctx.now()
            elapsed = float(round_end) - float(round_start)
            limplocked_before = set(ledger.limplocked_keys())
            for result in results:
                ledger.record_report(result.tsw_index, result.evaluations, elapsed)
            for index in ledger.limplocked_keys():
                if index not in limplocked_before:
                    rate = ledger.rate_of(index)
                    _note_event(
                        "limplock",
                        index,
                        f"observed rate {rate:.1f} evals/s",
                        float(round_end) + time_offset,
                    )

        # Adopt the best reported solution.  The master re-evaluates the
        # winner with its own (exact) evaluator so that the best-cost trace
        # and the final result use one canonical cost, independent of the
        # per-worker timing-surrogate state.  The evaluator holds the
        # broadcast solution, so each candidate is reached by committing its
        # delta and rejected candidates are rewound with a state restore —
        # no full cache rebuilds on this path either.
        results_by_cost = sorted(results, key=lambda r: r.best_cost)
        winner: Optional[TswResult] = None
        base_state = evaluator.save_state()
        for result in results_by_cost:
            if result.best_cost >= best_cost:
                break
            candidate = decoded_solutions[result.tsw_index]
            delta = swap_list_between(broadcast_solution, candidate)
            evaluator.apply_swaps(delta)
            yield ctx.compute(
                problem.adopt_work_units(int(delta.shape[0])), label="select-best"
            )
            exact_cost = evaluator.exact_cost()
            if exact_cost < best_cost:
                best_cost = exact_cost
                best_solution = candidate.copy()
                winner = result
                break
            # the reported cost was optimistic; try the next-best result
            evaluator.restore_state(base_state)
        if winner is not None:
            best_tabu_payload = winner.tabu_payload
        # each report carries the TSW's *cumulative* evaluation count (it
        # survives checkpoint/resume via the restored evaluator), so the
        # latest round overwrites rather than accumulates.  In fault mode an
        # all-struck-out round may report nothing — keep the previous total
        # rather than zeroing it.
        if results or fault is None:
            total_tsw_evaluations = sum(result.evaluations for result in results)

        now = yield ctx.now()
        now = float(now) + time_offset
        master_trace.append((now, best_cost))
        global_records.append(
            GlobalIterationRecord(
                index=global_iteration,
                best_cost_after=best_cost,
                received_costs=tuple(result.best_cost for result in results),
                interrupted_tsws=sum(1 for result in results if result.interrupted),
                finish_time=now,
            )
        )
        next_round = global_iteration + 1

    complete = next_round >= params.global_iterations and not cancelled
    if all_dead:
        # every worker died: nothing left to drive, return the best found so
        # far as the final (degraded) outcome rather than an unresumable pause
        complete = True

    run_state: Optional[MasterRunState] = None
    if not complete:
        # ---- harvest the worker subtree before stopping anyone ------------
        # Only reached at a global-iteration boundary: every worker is idle
        # at the top of its receive loop, no run traffic is in flight.
        harvested: Dict[int, TswWorkerState] = {}
        if fault is None:
            # retired (drained) loops already got their STOP and are parked
            # idle — a STATE_REQUEST to them would be consumed and ignored,
            # wedging this loop
            active = [pid for pid in tsw_pids if pid not in retired_pids]
            for pid in active:
                yield ctx.send(pid, Tags.STATE_REQUEST)
            while len(harvested) < len(active):
                reply = yield ctx.recv(tag=Tags.STATE_REPLY)
                tsw_state: TswWorkerState = reply.payload
                harvested[tsw_state.tsw_index] = tsw_state
        else:
            # harvest only the survivors, and survive a worker dying during
            # the harvest itself (a resume revives it from the others)
            awaiting = {
                pid for pid in tsw_pids if pid not in dead_pids and pid not in retired_pids
            }
            for pid in sorted(awaiting):
                yield ctx.send(pid, Tags.STATE_REQUEST)
            while awaiting:
                reply = yield ctx.recv_timeout(fault.round_deadline)
                now = yield ctx.now()
                if reply is None:
                    for pid in sorted(awaiting):
                        _declare_dead(pid, "no state reply", float(now) + time_offset)
                    break
                if reply.tag == Tags.WORKER_DOWN:
                    down_pid = getattr(reply.payload, "pid", None)
                    if down_pid in awaiting:
                        awaiting.discard(down_pid)
                        reason = getattr(reply.payload, "reason", "") or "backend obituary"
                        _declare_dead(down_pid, reason, float(now) + time_offset)
                    continue
                if reply.tag == Tags.CANCEL:
                    continue  # already pausing
                if reply.tag != Tags.STATE_REPLY:
                    continue
                harvested[reply.payload.tsw_index] = reply.payload
                awaiting.discard(reply.src)
        pause_time = yield ctx.now()
        run_state = MasterRunState(
            next_iteration=next_round,
            best_cost=float(best_cost),
            best_solution=best_solution.copy(),
            best_tabu_payload=best_tabu_payload,
            initial_cost=float(initial_cost),
            evaluator_assignment=evaluator.snapshot(),
            evaluator_state=pickle.dumps(evaluator.save_state(), protocol=4),
            master_residents={
                index_of_pid[pid]: entry
                for pid, entry in encoder.export_residents().items()
                if pid in index_of_pid
            },
            master_trace=list(master_trace),
            worker_points=list(worker_points),
            global_records=list(global_records),
            total_tsw_evaluations=int(total_tsw_evaluations),
            worker_states=tuple(harvested[i] for i in sorted(harvested)),
            clock_base=float(pause_time) + time_offset,
            health=(ledger.export_state() if ledger is not None else None),
            fault_events=list(fault_events),
            num_workers=next_worker_index,
            assigned_ranges=dict(assigned_range),
            drained_workers=tuple(sorted(drained_indices)),
            speed_hints=(ledger.export_hints() or None) if ledger is not None else None,
        )

    # ---- shutdown ------------------------------------------------------------
    # Under a warm pool the STOP only ends the *inner* worker bodies; the
    # persistent loops return to idle and await the next SETUP.  Drained
    # workers were already stopped at their retirement boundary.
    for pid in tsw_pids:
        if pid not in retired_pids:
            yield ctx.send(pid, Tags.STOP)

    if complete:
        # exact objectives of the final best solution
        evaluator.install_solution(best_solution)
        evaluator.exact_cost()
        best_objectives = evaluator.objectives()
    else:
        # paused: keep the harvested evaluator blob canonical — do not touch
        # the evaluator again, and leave the objectives unevaluated
        best_objectives = None

    # Merge the master's coarse points with the per-worker fine-grained points
    # into one best-so-far envelope sorted by time.
    envelope = list(best_so_far_envelope(master_trace + worker_points))

    return MasterResult(
        best_cost=float(best_cost),
        best_objectives=best_objectives,
        best_solution=best_solution,
        initial_cost=initial_cost,
        trace=envelope,
        master_trace=master_trace,
        global_records=global_records,
        total_tsw_evaluations=total_tsw_evaluations,
        complete=complete,
        run_state=run_state,
        fault_events=fault_events,
        dead_workers=tuple(
            f"tsw{index}" for index in sorted(index_of_pid[pid] for pid in dead_pids)
        ),
        admitted_workers=tuple(f"tsw{index}" for index in admitted_indices),
        drained_workers=tuple(f"tsw{index}" for index in drained_this_run),
        num_workers=next_worker_index,
        health=(ledger.export_state() if ledger is not None else None),
    )
