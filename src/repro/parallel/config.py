"""Configuration of the parallel tabu search (PTS)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Literal, Optional

from ..errors import ParallelSearchError
from ..tabu.params import TabuSearchParams

__all__ = ["SyncMode", "ParallelSearchParams"]

#: Synchronisation strategy between a parent and its children.
SyncMode = Literal["heterogeneous", "homogeneous"]


@dataclass(frozen=True, slots=True)
class ParallelSearchParams:
    """All knobs of a parallel-tabu-search run.

    Attributes
    ----------
    num_tsws:
        High-level parallelisation degree (number of Tabu Search Workers).
    clws_per_tsw:
        Low-level parallelisation degree (Candidate List Workers per TSW).
    global_iterations:
        Number of master-coordinated rounds; in every round each TSW runs
        ``tabu.local_iterations`` TS iterations.
    sync_mode:
        ``"heterogeneous"`` — a parent asks the remaining children to report
        as soon as ``report_fraction`` of them have reported (the paper's
        speed/load-aware strategy); ``"homogeneous"`` — wait for everyone.
    report_fraction:
        Fraction of children that must report before the early-report request
        is broadcast (the paper uses one half).
    diversify:
        Whether TSWs perform the diversification step at the start of every
        global iteration (Figure 9 compares on/off).
    tsw_partition_scheme / clw_partition_scheme:
        How cell ranges are carved up between TSWs (for diversification) and
        between the CLWs of one TSW (for candidate construction).
    tabu:
        Per-worker tabu-search parameters.
    cost:
        Domain-specific cost-model parameters shared by every worker, passed
        through to the problem builder (``None`` selects the domain's
        defaults — e.g. :class:`~repro.placement.cost.CostModelParams()` for
        placement).  The parallel engine itself never interprets this value.
    seed:
        Root seed; every process derives its own independent stream from it.
    """

    num_tsws: int = 4
    clws_per_tsw: int = 1
    global_iterations: int = 4
    sync_mode: SyncMode = "heterogeneous"
    report_fraction: float = 0.5
    diversify: bool = True
    tsw_partition_scheme: str = "contiguous"
    clw_partition_scheme: str = "strided"
    tabu: TabuSearchParams = field(default_factory=TabuSearchParams)
    cost: Optional[Any] = None
    seed: int = 2003
    initial_placement_seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_tsws < 1:
            raise ParallelSearchError(f"num_tsws must be >= 1, got {self.num_tsws}")
        if self.clws_per_tsw < 1:
            raise ParallelSearchError(f"clws_per_tsw must be >= 1, got {self.clws_per_tsw}")
        if self.global_iterations < 1:
            raise ParallelSearchError(
                f"global_iterations must be >= 1, got {self.global_iterations}"
            )
        if self.sync_mode not in ("heterogeneous", "homogeneous"):
            raise ParallelSearchError(f"unknown sync_mode {self.sync_mode!r}")
        if not (0.0 < self.report_fraction <= 1.0):
            raise ParallelSearchError(
                f"report_fraction must be in (0, 1], got {self.report_fraction}"
            )

    @property
    def total_workers(self) -> int:
        """Total number of worker processes (TSWs + CLWs), excluding the master."""
        return self.num_tsws + self.num_tsws * self.clws_per_tsw

    def with_(self, **changes) -> "ParallelSearchParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)
