"""Configuration of the parallel tabu search (PTS)."""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Literal, Optional, Tuple

from ..errors import ParallelSearchError
from ..tabu.params import TabuSearchParams

__all__ = ["SyncMode", "FaultPolicy", "ParallelSearchParams"]

#: Synchronisation strategy between a parent and its children.
SyncMode = Literal["heterogeneous", "homogeneous"]


@dataclass(frozen=True, slots=True)
class FaultPolicy:
    """How the master survives and adapts to worker failure mid-run.

    With a policy enabled the master (and each TSW, toward its CLWs) tracks
    per-worker report deadlines and death notices instead of trusting every
    worker to answer: a worker that misses ``max_missed_deadlines + 1``
    deadlines — or whose backend reports it dead — is declared dead, its
    candidate range is re-partitioned across the survivors (throughput-
    weighted when ``rebalance`` is set), its resident solution state is
    re-shipped through the existing delta/NACK path, and the run completes
    with degraded parallelism instead of raising.

    Attributes
    ----------
    round_deadline:
        Seconds the master waits for one TSW report per global round
        (virtual seconds on the simulated backend, wall-clock on the real
        ones).  A missed deadline triggers a full re-send; repeated misses
        kill the worker.
    clw_deadline:
        Seconds a TSW waits for one CLW result per local iteration.
    max_missed_deadlines:
        How many missed deadlines are forgiven (with a re-send) before a
        worker is declared dead; ``0`` kills on the first miss.
    rebalance:
        Re-partition ranges over survivors weighted by *observed* per-round
        throughput (when every survivor has reported at least once);
        otherwise survivors split the cells evenly.
    limplock_ratio:
        A worker whose observed throughput stays below ``limplock_ratio``
        times the fastest survivor's for ``limplock_rounds`` consecutive
        rounds is *limplocked*: it stays in the run but gets a shrunk
        local-iteration budget sized from its observed rate.
    limplock_rounds:
        Consecutive slow rounds before the limplock flag engages.
    min_iteration_share:
        Floor of the shrunk budget, as a fraction of the configured
        ``tabu.local_iterations`` (so a limplocked worker still contributes).
    throughput_smoothing:
        EWMA weight of the newest per-round throughput observation.
    """

    round_deadline: float = 30.0
    clw_deadline: float = 15.0
    max_missed_deadlines: int = 1
    rebalance: bool = True
    limplock_ratio: float = 0.25
    limplock_rounds: int = 2
    min_iteration_share: float = 0.25
    throughput_smoothing: float = 0.5
    enabled: bool = True

    def __post_init__(self) -> None:
        for label, value in (
            ("round_deadline", self.round_deadline),
            ("clw_deadline", self.clw_deadline),
        ):
            if not math.isfinite(value) or value <= 0:
                raise ParallelSearchError(f"{label} must be finite and positive, got {value}")
        if self.max_missed_deadlines < 0:
            raise ParallelSearchError(
                f"max_missed_deadlines must be >= 0, got {self.max_missed_deadlines}"
            )
        if not (0.0 < self.limplock_ratio < 1.0):
            raise ParallelSearchError(
                f"limplock_ratio must be in (0, 1), got {self.limplock_ratio}"
            )
        if self.limplock_rounds < 1:
            raise ParallelSearchError(
                f"limplock_rounds must be >= 1, got {self.limplock_rounds}"
            )
        if not (0.0 < self.min_iteration_share <= 1.0):
            raise ParallelSearchError(
                f"min_iteration_share must be in (0, 1], got {self.min_iteration_share}"
            )
        if not (0.0 < self.throughput_smoothing <= 1.0):
            raise ParallelSearchError(
                f"throughput_smoothing must be in (0, 1], got {self.throughput_smoothing}"
            )

    def with_(self, **changes) -> "FaultPolicy":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True, slots=True)
class ParallelSearchParams:
    """All knobs of a parallel-tabu-search run.

    Attributes
    ----------
    num_tsws:
        High-level parallelisation degree (number of Tabu Search Workers).
    clws_per_tsw:
        Low-level parallelisation degree (Candidate List Workers per TSW).
    global_iterations:
        Number of master-coordinated rounds; in every round each TSW runs
        ``tabu.local_iterations`` TS iterations.
    sync_mode:
        ``"heterogeneous"`` — a parent asks the remaining children to report
        as soon as ``report_fraction`` of them have reported (the paper's
        speed/load-aware strategy); ``"homogeneous"`` — wait for everyone.
    report_fraction:
        Fraction of children that must report before the early-report request
        is broadcast (the paper uses one half).
    diversify:
        Whether TSWs perform the diversification step at the start of every
        global iteration (Figure 9 compares on/off).
    tsw_partition_scheme / clw_partition_scheme:
        How cell ranges are carved up between TSWs (for diversification) and
        between the CLWs of one TSW (for candidate construction).
    tabu:
        Per-worker tabu-search parameters.
    cost:
        Domain-specific cost-model parameters shared by every worker, passed
        through to the problem builder (``None`` selects the domain's
        defaults — e.g. :class:`~repro.placement.cost.CostModelParams()` for
        placement).  The parallel engine itself never interprets this value.
    seed:
        Root seed; every process derives its own independent stream from it.
    fault:
        Optional :class:`FaultPolicy`.  ``None`` (the default) keeps the
        historical fail-fast behaviour — any worker death aborts the run —
        and changes nothing about message traffic or trajectories.
    worker_speed_hints:
        Optional per-TSW expected *relative* speeds (length ``num_tsws``,
        positive), e.g. ``(40.0, 1.0, 1.0)`` for one GPU worker next to two
        CPU workers.  Feeds the master's
        :class:`~repro.parallel.health.HealthLedger`, which normalises
        observed throughput by these hints before limplock detection and
        budget shrinking — without them a 10–50× device-speed skew makes
        every CPU worker look limplocked.  ``None`` (the default) treats
        all workers as the same device class.
    """

    num_tsws: int = 4
    clws_per_tsw: int = 1
    global_iterations: int = 4
    sync_mode: SyncMode = "heterogeneous"
    report_fraction: float = 0.5
    diversify: bool = True
    tsw_partition_scheme: str = "contiguous"
    clw_partition_scheme: str = "strided"
    tabu: TabuSearchParams = field(default_factory=TabuSearchParams)
    cost: Optional[Any] = None
    seed: int = 2003
    initial_placement_seed: Optional[int] = None
    fault: Optional[FaultPolicy] = None
    worker_speed_hints: Optional[Tuple[float, ...]] = None

    @property
    def fault_enabled(self) -> bool:
        """Whether a fault policy is present and switched on."""
        # getattr: params pickled before this field existed restore without
        # the slot — treat them as fault-less rather than crash
        fault = getattr(self, "fault", None)
        return fault is not None and fault.enabled

    def __post_init__(self) -> None:
        if self.num_tsws < 1:
            raise ParallelSearchError(f"num_tsws must be >= 1, got {self.num_tsws}")
        if self.clws_per_tsw < 1:
            raise ParallelSearchError(f"clws_per_tsw must be >= 1, got {self.clws_per_tsw}")
        if self.global_iterations < 1:
            raise ParallelSearchError(
                f"global_iterations must be >= 1, got {self.global_iterations}"
            )
        if self.sync_mode not in ("heterogeneous", "homogeneous"):
            raise ParallelSearchError(f"unknown sync_mode {self.sync_mode!r}")
        if not (0.0 < self.report_fraction <= 1.0):
            raise ParallelSearchError(
                f"report_fraction must be in (0, 1], got {self.report_fraction}"
            )
        hints = getattr(self, "worker_speed_hints", None)
        if hints is not None:
            hints = tuple(float(h) for h in hints)
            if len(hints) != self.num_tsws:
                raise ParallelSearchError(
                    f"worker_speed_hints must have one entry per TSW "
                    f"({self.num_tsws}), got {len(hints)}"
                )
            for h in hints:
                if not (h > 0.0) or h != h or h == float("inf"):
                    raise ParallelSearchError(
                        f"worker_speed_hints entries must be positive finite, got {h!r}"
                    )
            object.__setattr__(self, "worker_speed_hints", hints)

    @property
    def total_workers(self) -> int:
        """Total number of worker processes (TSWs + CLWs), excluding the master."""
        return self.num_tsws + self.num_tsws * self.clws_per_tsw

    def with_(self, **changes) -> "ParallelSearchParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)
