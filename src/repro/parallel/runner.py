"""High-level entry point: run a parallel tabu search on a (simulated) cluster.

This is the main public API of the library::

    from repro import load_benchmark, ParallelSearchParams, run_parallel_search

    netlist = load_benchmark("c532")
    params = ParallelSearchParams(num_tsws=4, clws_per_tsw=2, global_iterations=6)
    result = run_parallel_search(netlist, params)
    print(result.best_cost, result.virtual_runtime)

The runner builds the shared :class:`~repro.parallel.problem.PlacementProblem`,
spawns the master on the requested cluster backend, runs it to completion and
packages the master's result together with the kernel statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Literal, Optional, Tuple

import numpy as np

from ..errors import ParallelSearchError
from ..placement.cost import ObjectiveVector
from ..placement.netlist import Netlist
from ..pvm.cluster import ClusterSpec, paper_cluster
from ..pvm.process_backend import ProcessKernel
from ..pvm.simulator import ProcessInfo, SimKernel, SimStats
from ..pvm.threads_backend import ThreadKernel
from .config import ParallelSearchParams
from .master import GlobalIterationRecord, MasterResult, master_process
from .problem import PlacementProblem

__all__ = ["ParallelSearchResult", "run_parallel_search", "build_problem"]

Backend = Literal["simulated", "threads", "processes"]


@dataclass
class ParallelSearchResult:
    """Everything a parallel-tabu-search run produced."""

    circuit: str
    params: ParallelSearchParams
    best_cost: float
    initial_cost: float
    best_objectives: ObjectiveVector
    best_solution: np.ndarray
    #: (virtual time, best cost) trace recorded by the master.
    trace: List[Tuple[float, float]]
    global_records: List[GlobalIterationRecord]
    #: Virtual makespan of the run (wall-clock seconds for the real
    #: threads/processes backends).
    virtual_runtime: float
    sim_stats: Optional[SimStats]
    process_infos: List[ProcessInfo] = field(default_factory=list)
    wall_clock_seconds: float = 0.0

    @property
    def improvement(self) -> float:
        """Relative cost reduction with respect to the initial solution."""
        if self.initial_cost <= 0:
            return 0.0
        return (self.initial_cost - self.best_cost) / self.initial_cost

    def time_to_reach(self, cost_threshold: float) -> Optional[float]:
        """Virtual time at which the best cost first dropped to ``cost_threshold``.

        Returns ``None`` when the run never reached that quality — the
        speedup experiments treat such runs as failures for that threshold.
        """
        for moment, cost in self.trace:
            if cost <= cost_threshold:
                return moment
        return None


def build_problem(
    netlist: Netlist, params: ParallelSearchParams, *, reference_seed: Optional[int] = None
) -> PlacementProblem:
    """Build the shared problem instance for a run (exposed for tests/benchmarks)."""
    seed = reference_seed if reference_seed is not None else params.seed
    return PlacementProblem.from_netlist(
        netlist, cost_params=params.cost, reference_seed=seed
    )


def run_parallel_search(
    netlist: Netlist,
    params: ParallelSearchParams | None = None,
    *,
    cluster: Optional[ClusterSpec] = None,
    backend: Backend = "simulated",
    problem: Optional[PlacementProblem] = None,
    master_machine: int = 0,
    join_timeout: float = 3600.0,
) -> ParallelSearchResult:
    """Run the full master/TSW/CLW parallel tabu search.

    Parameters
    ----------
    netlist:
        Circuit to place.
    params:
        Parallelisation and search parameters (defaults: 4 TSWs, 1 CLW each).
    cluster:
        Cluster to run on; defaults to the paper's twelve-machine testbed.
    backend:
        ``"simulated"`` (deterministic virtual time; the default used by all
        experiments), ``"threads"`` (real threads, wall-clock time, GIL
        caveats apply) or ``"processes"`` (real OS processes, wall-clock
        time, true multi-core parallelism).
    problem:
        Pre-built problem instance; pass it to share the reference objective
        vector across several runs of the same circuit (as the speedup
        experiments must).
    master_machine:
        Machine index the master process is pinned to.
    join_timeout:
        One overall wall-clock deadline (seconds) for the whole run on the
        real backends (``"threads"`` / ``"processes"``) — not a per-worker
        allowance.
    """
    params = params or ParallelSearchParams()
    cluster = cluster or paper_cluster()
    problem = problem or build_problem(netlist, params)
    wall_start = time.perf_counter()

    if backend == "simulated":
        kernel = SimKernel(cluster)
        master_pid = kernel.spawn(
            master_process, problem, params, name="master", machine_index=master_machine
        )
        stats = kernel.run()
        master_result: MasterResult = kernel.result_of(master_pid)
        virtual_runtime = stats.virtual_makespan
        process_infos = kernel.all_processes()
        sim_stats: Optional[SimStats] = stats
    elif backend in ("threads", "processes"):
        real_kernel = ThreadKernel(cluster) if backend == "threads" else ProcessKernel(cluster)
        try:
            master_pid = real_kernel.spawn(
                master_process, problem, params, name="master", machine_index=master_machine
            )
            real_kernel.join_all(timeout=join_timeout)
            master_result = real_kernel.result_of(master_pid)
            virtual_runtime = real_kernel.now
        finally:
            real_kernel.shutdown()
        process_infos = []
        sim_stats = None
    else:
        raise ParallelSearchError(f"unknown backend {backend!r}")

    wall_clock = time.perf_counter() - wall_start
    return ParallelSearchResult(
        circuit=netlist.name,
        params=params,
        best_cost=master_result.best_cost,
        initial_cost=master_result.initial_cost,
        best_objectives=master_result.best_objectives,
        best_solution=master_result.best_solution,
        trace=master_result.trace,
        global_records=master_result.global_records,
        virtual_runtime=virtual_runtime,
        sim_stats=sim_stats,
        process_infos=process_infos,
        wall_clock_seconds=wall_clock,
    )
