"""High-level entry point: run a parallel tabu search on a (simulated) cluster.

This is the main public API of the library::

    from repro import load_benchmark, ParallelSearchParams, run_parallel_search

    netlist = load_benchmark("c532")
    params = ParallelSearchParams(num_tsws=4, clws_per_tsw=2, global_iterations=6)
    result = run_parallel_search(netlist, params)
    print(result.best_cost, result.virtual_runtime)

The runner is domain-agnostic: it accepts any
:class:`~repro.core.protocols.SearchProblem` — the shared, immutable problem
description the master/TSW/CLW processes run against — either directly or
via the legacy placement shorthand (a bare
:class:`~repro.placement.netlist.Netlist`, wrapped into a placement problem
through the domain registry).  A QAP run looks like::

    from repro.core import get_domain
    problem = get_domain("qap").build_problem("rand64")
    result = run_parallel_search(problem=problem, params=params)

Since PR 7 the runner is a thin wrapper over
:class:`~repro.session.SearchSession`: it builds a session, runs it to
completion in a single epoch, and returns the packaged result.  Anything
beyond one-shot runs — pausing, checkpoints, warm worker pools, background
submission — lives on the session API.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, List, Literal, Optional, Tuple

import numpy as np

from ..core.protocols import SearchProblem
from ..errors import ParallelSearchError
from ..pvm.cluster import ClusterSpec
from ..pvm.simulator import ProcessInfo, SimStats
from .config import ParallelSearchParams
from .master import GlobalIterationRecord

__all__ = ["ParallelSearchResult", "run_parallel_search", "build_problem"]

Backend = Literal["simulated", "threads", "processes"]


@dataclass
class ParallelSearchResult:
    """Everything a parallel-tabu-search run produced."""

    #: Name of the problem instance (a circuit for placement, a QAP
    #: instance name otherwise).  Renamed from ``circuit`` when the core
    #: went multi-domain; the old name survives as a deprecated alias.
    instance: str
    params: ParallelSearchParams
    best_cost: float
    initial_cost: float
    #: Domain-specific crisp objective values of the best solution
    #: (``None`` on a paused, incomplete session result).
    best_objectives: Any
    best_solution: np.ndarray
    #: (virtual time, best cost) trace recorded by the master.
    trace: List[Tuple[float, float]]
    global_records: List[GlobalIterationRecord]
    #: Virtual makespan of the run (wall-clock seconds for the real
    #: threads/processes backends).
    virtual_runtime: float
    sim_stats: Optional[SimStats]
    process_infos: List[ProcessInfo] = field(default_factory=list)
    wall_clock_seconds: float = 0.0
    #: ``False`` when the producing session was paused before all global
    #: iterations finished.
    complete: bool = True
    #: Fault incidents (:class:`~repro.metrics.trace.FaultEvent`) observed
    #: across the producing session's epochs; empty without a fault policy.
    fault_events: List[Any] = field(default_factory=list)

    @property
    def circuit(self) -> str:
        """Deprecated alias of :attr:`instance` (pre-multi-domain name)."""
        warnings.warn(
            "ParallelSearchResult.circuit is deprecated; use .instance",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.instance

    @property
    def improvement(self) -> float:
        """Relative cost reduction with respect to the initial solution."""
        if self.initial_cost <= 0:
            return 0.0
        return (self.initial_cost - self.best_cost) / self.initial_cost

    def time_to_reach(self, cost_threshold: float) -> Optional[float]:
        """Virtual time at which the best cost first dropped to ``cost_threshold``.

        Returns ``None`` when the run never reached that quality — the
        speedup experiments treat such runs as failures for that threshold.
        """
        for moment, cost in self.trace:
            if cost <= cost_threshold:
                return moment
        return None


def build_problem(
    netlist, params: ParallelSearchParams, *, reference_seed: Optional[int] = None
) -> SearchProblem:
    """Build the shared placement problem for a run (exposed for tests/benchmarks).

    Legacy placement shorthand: wraps a
    :class:`~repro.placement.netlist.Netlist` into the registered placement
    domain.  Other domains build their problems through
    :func:`repro.core.get_domain` directly.
    """
    from ..core.registry import get_domain

    seed = reference_seed if reference_seed is not None else params.seed
    return get_domain("placement").build_problem(
        netlist, cost_params=params.cost, reference_seed=seed
    )


def run_parallel_search(
    netlist=None,
    params: ParallelSearchParams | None = None,
    *,
    cluster: Optional[ClusterSpec] = None,
    backend: Backend = "simulated",
    problem: Optional[SearchProblem] = None,
    master_machine: int = 0,
    join_timeout: float = 3600.0,
) -> ParallelSearchResult:
    """Run the full master/TSW/CLW parallel tabu search.

    Parameters
    ----------
    netlist:
        Circuit to place (legacy placement shorthand), or any
        :class:`~repro.core.protocols.SearchProblem` instance.  May be
        omitted when ``problem`` is given.
    params:
        Parallelisation and search parameters (defaults: 4 TSWs, 1 CLW each).
    cluster:
        Cluster to run on; defaults to the paper's twelve-machine testbed.
    backend:
        ``"simulated"`` (deterministic virtual time; the default used by all
        experiments), ``"threads"`` (real threads, wall-clock time, GIL
        caveats apply) or ``"processes"`` (real OS processes, wall-clock
        time, true multi-core parallelism).
    problem:
        Pre-built problem instance; pass it to share the reference cost
        anchor across several runs of the same instance (as the speedup
        experiments must), or to run a non-placement domain.
    master_machine:
        Machine index the master process is pinned to.
    join_timeout:
        One overall wall-clock deadline (seconds) for the whole run on the
        real backends (``"threads"`` / ``"processes"``) — not a per-worker
        allowance.
    """
    from ..errors import SessionError
    from ..session.session import SearchSession

    if backend not in ("simulated", "threads", "processes"):
        raise ParallelSearchError(f"unknown backend {backend!r}")
    try:
        session = SearchSession(
            netlist,
            params,
            problem=problem,
            backend=backend,
            cluster=cluster,
            master_machine=master_machine,
            join_timeout=join_timeout,
        )
    except SessionError as error:
        # keep the runner's historical error type for bad arguments
        raise ParallelSearchError(str(error)) from error
    return session.run()
