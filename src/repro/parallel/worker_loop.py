"""Persistent worker loops for the warm :class:`~repro.session.WorkerPool`.

A cold run spawns its whole TSW/CLW tree per search and tears it down at the
end — on the processes backend that means OS-process startup plus
shared-memory export on every run.  A *warm* pool instead keeps one
:func:`tsw_worker_loop` process per TSW (each owning its
:func:`clw_worker_loop` children) alive across runs; a new search ships a
``SETUP`` message carrying the problem and parameters, the loop runs the
ordinary :func:`~repro.parallel.tsw.tsw_process` /
:func:`~repro.parallel.clw.clw_process` body inline (``yield from``), and
returns to idle when the master sends ``STOP``.

The loops reproduce the cold spawn topology exactly — worker names (which
seed the per-worker RNG streams) and seed derivations are identical — so a
search on a warm pool takes the same decisions as a cold one.

Setup is acknowledged bottom-up: each CLW loop acks its TSW loop after
installing the setup, the TSW loop acks the master only after all CLW acks
arrived, and the master starts run traffic only after all TSW acks.  The
handshake closes the simulated network's ordering hazard where a large
``SETUP`` payload (size-dependent latency) could be overtaken by a smaller
message sent later.
"""

from __future__ import annotations

from typing import Dict, List

from .._rng import derive_seed
from ..errors import ProcessError
from .clw import clw_process
from .messages import ClwSetup, ClwWorkerState, SetupAck, Tags, TswSetup
from .tsw import tsw_process

__all__ = ["clw_worker_loop", "tsw_worker_loop"]


def clw_worker_loop(ctx):
    """Persistent CLW: serve one :func:`clw_process` run per ``SETUP``."""
    runs = 0
    while True:
        message = yield ctx.recv()
        if message.tag == Tags.POOL_SHUTDOWN:
            break
        if message.tag != Tags.SETUP:
            continue
        setup: ClwSetup = message.payload
        yield ctx.send(message.src, Tags.SETUP_ACK, SetupAck(worker_name=ctx.name))
        yield from clw_process(
            ctx,
            setup.problem,
            setup.tabu_params,
            setup.cell_range,
            setup.clw_index,
            setup.seed,
            initial_state=setup.initial_state,
        )
        runs += 1
    return runs


def tsw_worker_loop(ctx, clws_per_tsw: int):
    """Persistent TSW: own ``clws_per_tsw`` CLW loops, serve runs on ``SETUP``."""
    clw_pids: List[int] = []
    for clw_index in range(clws_per_tsw):
        # Cold runs name CLWs f"tsw{i}.clw{j}" and the name feeds the CLW's
        # RNG stream — the pool loop must be named f"tsw{i}" for the warm
        # topology to reproduce cold decisions.
        pid = yield ctx.spawn(clw_worker_loop, name=f"{ctx.name}.clw{clw_index}")
        clw_pids.append(pid)

    runs = 0
    while True:
        message = yield ctx.recv()
        if message.tag == Tags.POOL_SHUTDOWN:
            for pid in clw_pids:
                yield ctx.send(pid, Tags.POOL_SHUTDOWN)
            break
        if message.tag != Tags.SETUP:
            continue
        setup: TswSetup = message.payload
        if len(setup.clw_ranges) != len(clw_pids):
            raise ProcessError(
                f"{ctx.name}: setup ships {len(setup.clw_ranges)} CLW ranges "
                f"but the pool keeps {len(clw_pids)} CLW loops"
            )
        clw_states: Dict[int, ClwWorkerState] = {}
        if setup.initial_state is not None:
            clw_states = {s.clw_index: s for s in setup.initial_state.clw_states}
        for clw_index, pid in enumerate(clw_pids):
            yield ctx.send(
                pid,
                Tags.SETUP,
                ClwSetup(
                    problem=setup.problem,
                    tabu_params=setup.params.tabu,
                    cell_range=setup.clw_ranges[clw_index],
                    clw_index=clw_index,
                    # identical to the cold spawn chain in tsw_process
                    seed=derive_seed(setup.seed, "tsw", setup.tsw_index, "clw", clw_index),
                    initial_state=clw_states.get(clw_index),
                ),
            )
        acked = 0
        while acked < len(clw_pids):
            yield ctx.recv(tag=Tags.SETUP_ACK)
            acked += 1
        yield ctx.send(message.src, Tags.SETUP_ACK, SetupAck(worker_name=ctx.name))
        yield from tsw_process(
            ctx,
            setup.problem,
            setup.params,
            setup.tsw_index,
            setup.tsw_range,
            list(setup.clw_ranges),
            setup.seed,
            initial_state=setup.initial_state,
            master_pid=message.src,
            clw_pids=list(clw_pids),
        )
        runs += 1
    return runs
