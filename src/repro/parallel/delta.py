"""Delta encoding of solutions for the parallel protocol.

The seed protocol pickled the *full* solution array on every hop —
master→TSW broadcast, TSW→CLW task, TSW→master report — and every receiver
paid a full cache rebuild to install it.  But consecutive solutions on one
hop differ by only a handful of swaps (the accepted compound move of one
local iteration, or one global round's search path), so workers can keep
their solution *resident* and exchange just the difference:

* :func:`swap_list_between` turns the difference of two assignments into a
  minimal swap sequence (cycle-chasing over the differing cells; at most one
  swap per differing cell), applied with the evaluator's bulk
  ``apply_swaps`` path (:class:`~repro.core.protocols.SwapEvaluator`);
* :class:`SolutionPayload` is the wire form — either a full ``int32``
  assignment or a swap list against a *versioned* base the receiver must
  hold.  A compact ``__reduce__`` codec packs either form into one ``bytes``
  blob for the real (pickling) backends;
* :class:`DeltaEncoder` is the sender side: it tracks, per receiver, the
  resident solution it believes the receiver holds and decides full versus
  delta shipment (first contact, an invalidated receiver, or a diff larger
  than :attr:`~DeltaEncoder.max_delta_fraction` of the cells always ships
  full);
* :class:`ResidentSolution` is the receiver side: it validates the base
  version of an incoming delta and reports a mismatch instead of applying a
  delta onto the wrong base — the caller then answers with a
  ``needs_full`` NACK and the sender falls back to full shipment.

Versions are protocol round identifiers (the TSW task counter for TSW↔CLW,
the global iteration for master↔TSW), not content hashes: both ends step
through the same rounds, so equal versions imply equal resident content.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple, Union

import numpy as np

__all__ = [
    "SolutionPayload",
    "DeltaEncoder",
    "ResidentSolution",
    "swap_list_between",
    "solution_crc",
    "as_payload",
    "decode_solution",
]

#: Wire dtype of solution and swap arrays: slot/cell indices comfortably fit
#: 32 bits, halving the bytes of every full shipment.
WIRE_DTYPE = np.int32


def swap_list_between(current: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Swap sequence transforming assignment ``current`` into ``target``.

    Returns an ``(k, 2)`` array of cell pairs; applying the swaps in order to
    ``current`` (exchange the slots of the two cells) yields exactly
    ``target``.  ``k`` is at most the number of differing cells (cycle
    chasing fixes at least one cell per swap), so identical assignments give
    an empty list.
    """
    cur = np.asarray(current, dtype=np.int64).copy()
    tgt = np.asarray(target, dtype=np.int64)
    if cur.shape != tgt.shape:
        raise ValueError(f"assignment shapes differ: {cur.shape} vs {tgt.shape}")
    diff = np.flatnonzero(cur != tgt)
    if diff.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    # slot → cell map restricted to the differing cells: the occupant of any
    # differing cell's target slot is itself a differing cell (permutations).
    occupant: Dict[int, int] = {int(s): int(c) for c, s in zip(diff, cur[diff])}
    swaps: List[Tuple[int, int]] = []
    for cell in diff:
        cell = int(cell)
        while cur[cell] != tgt[cell]:
            other = occupant[int(tgt[cell])]
            slot_c, slot_o = int(cur[cell]), int(cur[other])
            cur[cell], cur[other] = slot_o, slot_c
            occupant[slot_o] = cell
            occupant[slot_c] = other
            swaps.append((cell, other))
    return np.asarray(swaps, dtype=np.int64).reshape(-1, 2)


def solution_crc(solution: np.ndarray) -> int:
    """Checksum of an assignment in canonical wire form.

    Shipped with every delta so the receiver can prove the reconstructed
    solution matches the sender's target — any resident-tracking bug turns
    into a ``needs_full`` NACK (and a recovering full shipment) instead of a
    silently diverged search.
    """
    canonical = np.ascontiguousarray(solution, dtype=WIRE_DTYPE)
    return zlib.crc32(canonical.tobytes())


_WIRE_HEADER = struct.Struct("<bqqIi")  # kind, version, base_version, crc, length


@dataclass
class SolutionPayload:
    """One shipped solution: full assignment or swap-list delta.

    Attributes
    ----------
    version:
        Protocol round identifier of the target solution.
    full:
        Complete ``cell → slot`` assignment (``int32``), or ``None`` in delta
        form.
    base_version:
        Version the receiver's resident solution must have for ``swaps`` to
        apply; ``-1`` in full form.
    swaps:
        ``(k, 2)`` ``int32`` cell pairs turning the base into the target, in
        application order; ``None`` in full form.
    target_crc:
        :func:`solution_crc` of the target solution (delta form only); the
        receiver verifies it after applying the swaps.
    """

    version: int
    full: Optional[np.ndarray] = None
    base_version: int = -1
    swaps: Optional[np.ndarray] = None
    target_crc: int = 0

    @classmethod
    def full_shipment(cls, solution: np.ndarray, version: int) -> "SolutionPayload":
        """Wrap a complete assignment for the wire."""
        return cls(version=version, full=np.asarray(solution).astype(WIRE_DTYPE))

    @classmethod
    def delta_shipment(
        cls, swaps: np.ndarray, version: int, base_version: int, target_crc: int = 0
    ) -> "SolutionPayload":
        """Wrap a swap-list delta against a versioned base."""
        return cls(
            version=version,
            base_version=base_version,
            swaps=np.asarray(swaps).astype(WIRE_DTYPE).reshape(-1, 2),
            target_crc=target_crc,
        )

    @property
    def is_full(self) -> bool:
        """Whether this payload carries the complete assignment."""
        return self.full is not None

    @property
    def num_swaps(self) -> int:
        """Delta length (0 for a full shipment)."""
        return 0 if self.swaps is None else int(self.swaps.shape[0])

    def full_solution(self) -> np.ndarray:
        """The complete assignment as ``int64`` (full form only)."""
        if self.full is None:
            raise ValueError("delta payload carries no full solution")
        return np.asarray(self.full, dtype=np.int64)

    def swap_pairs(self) -> np.ndarray:
        """The delta swap list as ``int64`` pairs (delta form only)."""
        if self.swaps is None:
            raise ValueError("full payload carries no swap list")
        return np.asarray(self.swaps, dtype=np.int64)

    # -------------------------------------------------------------- #
    # compact wire codec: one bytes blob instead of generic pickle of
    # a dataclass holding NumPy arrays (saves the per-array pickle
    # framing on every hot message of the real backends)
    # -------------------------------------------------------------- #
    def __reduce__(self):
        if self.full is not None:
            body = np.ascontiguousarray(self.full, dtype=WIRE_DTYPE)
            header = _WIRE_HEADER.pack(0, self.version, -1, 0, body.size)
        else:
            body = np.ascontiguousarray(self.swaps, dtype=WIRE_DTYPE)
            header = _WIRE_HEADER.pack(
                1, self.version, self.base_version, self.target_crc, body.size
            )
        return (_payload_from_wire, (header + body.tobytes(),))


def _payload_from_wire(blob: bytes) -> SolutionPayload:
    """Inverse of :meth:`SolutionPayload.__reduce__`."""
    kind, version, base_version, crc, length = _WIRE_HEADER.unpack_from(blob)
    body = np.frombuffer(blob, dtype=WIRE_DTYPE, offset=_WIRE_HEADER.size, count=length)
    if kind == 0:
        return SolutionPayload(version=version, full=body)
    return SolutionPayload(
        version=version,
        base_version=base_version,
        swaps=body.reshape(-1, 2),
        target_crc=crc,
    )


def as_payload(solution: Union[np.ndarray, SolutionPayload], version: int = -1) -> SolutionPayload:
    """Normalise a raw assignment array (legacy wire form) to a payload."""
    if isinstance(solution, SolutionPayload):
        return solution
    return SolutionPayload.full_shipment(np.asarray(solution), version)


def decode_solution(
    solution: Union[np.ndarray, SolutionPayload],
    base_solution: Optional[np.ndarray] = None,
    *,
    expected_base_version: Optional[int] = None,
) -> Optional[np.ndarray]:
    """Reconstruct a full assignment from any wire form.

    ``base_solution`` is the solution a delta applies to (the retained
    broadcast for TSW→master reports).  Returns ``None`` when the payload
    cannot be decoded: delta without a base, wrong base version, or failed
    checksum — callers ignore such a report rather than adopt a wrong
    solution.
    """
    if not isinstance(solution, SolutionPayload):
        return np.asarray(solution, dtype=np.int64)
    if solution.is_full:
        return solution.full_solution()
    if base_solution is None:
        return None
    if (
        expected_base_version is not None
        and solution.base_version != expected_base_version
    ):
        return None
    decoded = np.asarray(base_solution, dtype=np.int64).copy()
    for cell_a, cell_b in solution.swap_pairs().tolist():
        decoded[cell_a], decoded[cell_b] = decoded[cell_b], decoded[cell_a]
    if solution_crc(decoded) != solution.target_crc:
        return None
    return decoded


class DeltaEncoder:
    """Sender-side resident tracking: full versus delta shipment per receiver.

    One encoder per sending process; receivers are keyed by any hashable
    identity (worker pid or index).  ``encode`` compares the target against
    the receiver's tracked resident solution and ships the swap-list delta
    when it is small, falling back to a full shipment on first contact, after
    :meth:`invalidate` (the NACK path), or when the diff exceeds
    ``max_delta_fraction`` of the cells (divergent solutions — a delta would
    cost more than it saves).
    """

    def __init__(self, *, max_delta_fraction: float = 0.25) -> None:
        if not (0.0 < max_delta_fraction <= 1.0):
            raise ValueError(
                f"max_delta_fraction must be in (0, 1], got {max_delta_fraction}"
            )
        self.max_delta_fraction = max_delta_fraction
        self._resident: Dict[Hashable, Tuple[int, np.ndarray]] = {}
        #: Shipment statistics (protocol-overhead benchmark and tests).
        self.full_shipments = 0
        self.delta_shipments = 0
        self.delta_swaps_shipped = 0

    def encode(self, receiver: Hashable, target: np.ndarray, version: int) -> SolutionPayload:
        """Encode ``target`` for ``receiver``, updating the resident record."""
        target = np.asarray(target, dtype=np.int64)
        entry = self._resident.get(receiver)
        payload: Optional[SolutionPayload] = None
        if entry is not None:
            base_version, base = entry
            if base.shape == target.shape:
                swaps = swap_list_between(base, target)
                if swaps.shape[0] <= max(1, int(target.size * self.max_delta_fraction)):
                    payload = SolutionPayload.delta_shipment(
                        swaps, version, base_version, solution_crc(target)
                    )
                    self.delta_shipments += 1
                    self.delta_swaps_shipped += int(swaps.shape[0])
        if payload is None:
            payload = SolutionPayload.full_shipment(target, version)
            self.full_shipments += 1
        self._resident[receiver] = (version, target.copy())
        return payload

    def set_resident(self, receiver: Hashable, version: int, solution: np.ndarray) -> None:
        """Record out-of-band knowledge of a receiver's resident solution.

        Used when the resident state is learned from the protocol itself
        rather than from a previous ``encode`` — e.g. the master records each
        TSW's *reported* solution, which is exactly what the TSW keeps
        resident after reporting.
        """
        self._resident[receiver] = (version, np.asarray(solution, dtype=np.int64).copy())

    def resident_version(self, receiver: Hashable) -> Optional[int]:
        """Version tracked for ``receiver`` (``None`` before first contact)."""
        entry = self._resident.get(receiver)
        return None if entry is None else entry[0]

    def invalidate(self, receiver: Hashable) -> None:
        """Forget a receiver's resident state; the next encode ships full."""
        self._resident.pop(receiver, None)

    # -------------------------------------------------------------- #
    # checkpoint surface: a resumed run must replay the exact same
    # full-versus-delta decisions, so the per-receiver resident
    # bookkeeping is part of the session state.
    # -------------------------------------------------------------- #
    def export_residents(self) -> Dict[Hashable, Tuple[int, np.ndarray]]:
        """Serializable copy of the per-receiver resident records."""
        return {
            receiver: (version, solution.copy())
            for receiver, (version, solution) in self._resident.items()
        }

    def install_residents(
        self, residents: Dict[Hashable, Tuple[int, np.ndarray]]
    ) -> None:
        """Replace the resident records with an :meth:`export_residents` copy."""
        self._resident = {
            receiver: (int(version), np.asarray(solution, dtype=np.int64).copy())
            for receiver, (version, solution) in residents.items()
        }


class ResidentSolution:
    """Receiver-side resident-version bookkeeping.

    The owner applies payloads to its evaluator; this class only decides
    *how*: ``plan`` returns one of

    * ``("full", array)`` — install the complete assignment;
    * ``("delta", pairs)`` — apply the swap list to the resident solution
      (an empty list means the solution is unchanged: skip the install
      entirely);
    * ``("mismatch", None)`` — the delta's base version is not what is
      resident; the caller must NACK so the sender re-ships full.

    Call :meth:`adopted` after successfully applying a payload.
    """

    def __init__(self) -> None:
        self.version = -1

    def plan(self, payload: SolutionPayload) -> Tuple[str, Optional[np.ndarray]]:
        """Decide how to apply ``payload`` given the resident version."""
        if payload.is_full:
            return "full", payload.full_solution()
        if payload.base_version != self.version:
            return "mismatch", None
        return "delta", payload.swap_pairs()

    def adopted(self, payload: SolutionPayload) -> None:
        """Record that ``payload`` was applied; its version is now resident."""
        self.version = payload.version
