"""Tabu Search Worker (TSW) process — Figure 3 of the paper.

Each TSW owns a complete tabu search (tabu list, frequency memory, aspiration)
over its private copy of the solution.  Per global iteration it

1. adopts the solution broadcast by the master (together with the tabu list
   associated with it),
2. performs the diversification step restricted to its own cell range so that
   different TSWs explore different regions (Section 4.1),
3. runs ``local_iterations`` tabu-search iterations; the candidate compound
   moves of every iteration are produced by its CLWs, collected according to
   the synchronisation policy (wait for all, or interrupt the slow half), and
4. reports its best solution, cost and tabu list to the master — either after
   finishing all local iterations or as soon as the master requests an early
   report.

Solution state is *resident* on every hop of this process:

* **master → TSW** — the broadcast arrives as a
  :class:`~repro.parallel.delta.SolutionPayload` whose delta form applies to
  the solution this TSW *reported* last round; after reporting, the TSW
  normalises its evaluator onto that reported best, so both ends track the
  same base.  A mismatch is answered with a ``needs_full``
  :class:`~repro.parallel.messages.TswResult` and the master re-broadcasts in
  full.
* **TSW → CLW** — each local iteration's task ships the delta between the
  CLW's resident solution (the previous task base) and the current one —
  usually just the previously accepted compound move, or nothing at all when
  the iteration stalled.  A CLW ``needs_full`` NACK triggers a full re-send
  of the same task.
* **TSW → master** — the report ships the best solution as a delta against
  this round's broadcast, which the master retains.
"""

from __future__ import annotations

import pickle
from typing import Dict, List, Optional, Set

import numpy as np

from .._rng import derive_seed
from ..core.protocols import SearchProblem
from ..tabu.candidate import CellRange, partition_cells
from ..tabu.moves import CompoundMove, SwapMove
from ..tabu.search import TabuSearch
from .clw import clw_process
from .config import ParallelSearchParams
from .delta import DeltaEncoder, ResidentSolution, as_payload, solution_crc, swap_list_between
from .messages import (
    ClwResult,
    ClwTask,
    ClwWorkerState,
    GlobalStart,
    ReportNow,
    Tags,
    TswResult,
    TswSummary,
    TswWorkerState,
)
from .sync import SyncPolicy

__all__ = ["tsw_process"]

#: Key under which the TSW's encoder tracks what the master knows resident.
_MASTER = "master"


def _result_to_candidate(result: ClwResult) -> CompoundMove:
    """Convert a CLW's wire-format result into a candidate compound move.

    ``step_costs`` carries the cost after each prefix step, so intermediate
    :class:`SwapMove`\\ s keep their own trial costs (a legacy result without
    per-step costs falls back to stamping the final cost on every step).
    """
    if result.step_costs and len(result.step_costs) == len(result.pairs):
        costs = [float(c) for c in result.step_costs]
    else:
        costs = [result.cost_after] * len(result.pairs)
    swaps = [
        SwapMove(cell_a=int(a), cell_b=int(b), cost_after=cost)
        for (a, b), cost in zip(result.pairs, costs)
    ]
    return CompoundMove(
        swaps=swaps,
        cost_before=result.cost_before,
        cost_after=result.cost_after,
        trials=result.trials,
        truncated_early=result.interrupted,
    )


def _needs_full_result(tsw_index: int, global_iteration: int) -> TswResult:
    """A ``needs_full`` reply: the delta broadcast could not be applied."""
    return TswResult(
        tsw_index=tsw_index,
        global_iteration=global_iteration,
        best_solution=np.zeros(0, dtype=np.int64),
        best_cost=float("inf"),
        local_iterations_done=0,
        interrupted=False,
        evaluations=0,
        needs_full=True,
    )


def tsw_process(
    ctx,
    problem: SearchProblem,
    params: ParallelSearchParams,
    tsw_index: int,
    tsw_range: CellRange,
    clw_ranges: List[CellRange],
    seed: int,
    initial_state: Optional[TswWorkerState] = None,
    master_pid: Optional[int] = None,
    clw_pids: Optional[List[int]] = None,
):
    """Generator body of a TSW process (run it under a PVM kernel).

    ``initial_state`` resumes the TSW from a checkpointed
    :class:`~repro.parallel.messages.TswWorkerState` (the CLWs it spawns get
    their own slices).  ``master_pid`` overrides where results are reported
    (persistent worker loops run under a pool parent, not under the master).
    ``clw_pids`` reuses already-running CLWs instead of spawning fresh ones —
    the warm-pool path; their order must match ``clw_ranges``.
    """
    sync = SyncPolicy(mode=params.sync_mode, report_fraction=params.report_fraction)
    if master_pid is None:
        master_pid = ctx.parent

    # ---- spawn (or adopt) the candidate-list workers ---------------------
    clw_states_by_index: Dict[int, ClwWorkerState] = {}
    if initial_state is not None:
        clw_states_by_index = {s.clw_index: s for s in initial_state.clw_states}
    if clw_pids is None:
        clw_pids = []
        for clw_index, clw_range in enumerate(clw_ranges):
            pid = yield ctx.spawn(
                clw_process,
                problem,
                params.tabu,
                clw_range,
                clw_index,
                derive_seed(seed, "tsw", tsw_index, "clw", clw_index),
                name=f"tsw{tsw_index}.clw{clw_index}",
                initial_state=clw_states_by_index.get(clw_index),
            )
            clw_pids.append(pid)
    clw_index_of = {pid: index for index, pid in enumerate(clw_pids)}

    # ---- fault mode: CLW liveness and elastic range bookkeeping ----------
    fault = params.fault if params.fault_enabled else None
    alive_clws: Set[int] = set(clw_pids)
    clw_range_of: Dict[int, CellRange] = dict(enumerate(clw_ranges))
    range_dirty: Set[int] = set()  # CLW indices whose new range must ship
    clw_missed: Dict[int, int] = {}

    def _drop_clw(pid: int) -> None:
        """Remove a dead CLW and re-partition its range over the survivors."""
        alive_clws.discard(pid)
        survivors = [clw_index_of[p] for p in clw_pids if p in alive_clws]
        if not survivors:
            return
        new_ranges = partition_cells(
            problem.num_cells,
            len(survivors),
            scheme=params.clw_partition_scheme,
            label_prefix="clw",
        )
        for new_range, index in zip(new_ranges, survivors):
            clw_range_of[index] = new_range
            range_dirty.add(index)

    evaluator = None
    search: Optional[TabuSearch] = None
    resident = ResidentSolution()  # what we hold vs the master's broadcasts
    clw_encoder = DeltaEncoder()  # what each CLW holds resident
    master_encoder = DeltaEncoder()  # what the master knows about us
    round_counter = 0
    global_iterations_done = 0
    local_iterations_done = 0
    interruptions = 0

    if initial_state is not None and initial_state.search_state is not None:
        evaluator = problem.make_evaluator(
            np.asarray(initial_state.assignment, dtype=np.int64)
        )
        yield ctx.compute(problem.install_work_units(), label="install")
        evaluator.restore_state(pickle.loads(initial_state.evaluator_state))
        evaluator.evaluations = int(initial_state.evaluations)
        search = TabuSearch(
            evaluator,
            params.tabu,
            cell_range=tsw_range,
            seed=derive_seed(seed, "tsw-search", tsw_index),
        )
        search.install_state(initial_state.search_state)
        resident.version = int(initial_state.resident_version)
        master_encoder.install_residents(initial_state.master_residents)
        clw_encoder.install_residents(initial_state.clw_residents)
        round_counter = int(initial_state.round_counter)
        global_iterations_done = int(initial_state.global_iterations_done)
        local_iterations_done = int(initial_state.local_iterations_done)
        interruptions = int(initial_state.interruptions)

    while True:
        message = yield ctx.recv()
        if message.tag == Tags.STOP:
            for pid in clw_pids:
                yield ctx.send(pid, Tags.STOP)
            break
        if message.tag == Tags.REPORT_NOW:
            continue  # stale: we already reported for that iteration
        if message.tag == Tags.STATE_REQUEST:
            # Harvest for a checkpoint: fan the request out to the CLWs,
            # collect their states, and reply with the full subtree.  Only
            # sent at a global-iteration boundary, when everyone is idle.
            replies: Dict[int, ClwWorkerState] = {}
            for pid in clw_pids:
                yield ctx.send(pid, Tags.STATE_REQUEST)
            while len(replies) < len(clw_pids):
                reply = yield ctx.recv(tag=Tags.STATE_REPLY)
                clw_state: ClwWorkerState = reply.payload
                replies[clw_state.clw_index] = clw_state
            state = TswWorkerState(
                tsw_index=tsw_index,
                search_state=(search.export_state() if search is not None else None),
                assignment=(
                    evaluator.snapshot() if evaluator is not None else np.empty(0, np.int64)
                ),
                evaluator_state=(
                    pickle.dumps(evaluator.save_state(), protocol=4)
                    if evaluator is not None
                    else b""
                ),
                evaluations=(evaluator.evaluations if evaluator is not None else 0),
                resident_version=resident.version,
                master_residents=master_encoder.export_residents(),
                clw_residents=clw_encoder.export_residents(),
                round_counter=round_counter,
                global_iterations_done=global_iterations_done,
                local_iterations_done=local_iterations_done,
                interruptions=interruptions,
                clw_states=tuple(replies[i] for i in sorted(replies)),
            )
            yield ctx.send(message.src, Tags.STATE_REPLY, state)
            continue
        if message.tag == Tags.WORKER_DOWN:
            # backend obituary for one of our CLWs, delivered between rounds
            down_pid = getattr(message.payload, "pid", None)
            if fault is not None and down_pid in alive_clws:
                _drop_clw(down_pid)
            continue
        if message.tag != Tags.GLOBAL_START:
            continue
        start: GlobalStart = message.payload
        # elastic re-assignment: the master re-partitioned TSW ranges over
        # the survivors and shipped us a new diversification range
        new_tsw_range = getattr(start, "tsw_range", None)
        if new_tsw_range is not None:
            tsw_range = new_tsw_range
            if search is not None:
                search.set_cell_range(new_tsw_range)
        payload = as_payload(start.solution, version=start.global_iteration)

        # ---- adopt the master's solution (and its tabu list) -------------
        if evaluator is None:
            if not payload.is_full:
                yield ctx.send(
                    master_pid,
                    Tags.TSW_RESULT,
                    _needs_full_result(tsw_index, start.global_iteration),
                )
                continue
            solution = payload.full_solution()
            evaluator = problem.make_evaluator(solution)
            search = TabuSearch(
                evaluator,
                params.tabu,
                cell_range=tsw_range,
                seed=derive_seed(seed, "tsw-search", tsw_index),
            )
            yield ctx.compute(problem.install_work_units(), label="install")
        else:
            plan, data = resident.plan(payload)
            if plan == "mismatch":
                yield ctx.send(
                    master_pid,
                    Tags.TSW_RESULT,
                    _needs_full_result(tsw_index, start.global_iteration),
                )
                continue
            if plan == "full":
                search.adopt_solution(data)
                yield ctx.compute(problem.install_work_units(), label="install")
            elif data.shape[0]:
                # apply on the evaluator only and verify the checksum BEFORE
                # the search records anything — a wrong-base delta must not
                # pollute the best-solution tracking
                evaluator.apply_swaps(data, exact_timing=True)
                if solution_crc(evaluator.snapshot()) != payload.target_crc:
                    resident.version = -1
                    yield ctx.send(
                        master_pid,
                        Tags.TSW_RESULT,
                        _needs_full_result(tsw_index, start.global_iteration),
                    )
                    continue
                search.note_best()
                yield ctx.compute(
                    problem.adopt_work_units(int(data.shape[0])), label="install"
                )
            # empty delta: the incumbent did not change — nothing to install
            # (the post-report normalisation left the evaluator in the same
            # exactly-refreshed state a full install would produce)
        resident.adopted(payload)
        # the master knows exactly what we hold now: this round's broadcast
        master_encoder.set_resident(
            _MASTER, start.global_iteration, evaluator.snapshot()
        )
        if start.tabu_payload is not None:
            search.adopt_tabu_list(start.tabu_payload)

        # ---- diversification within this TSW's private range -------------
        if params.diversify and params.tabu.diversification_depth > 0:
            evals_before = evaluator.evaluations
            search.diversify()
            yield ctx.compute(
                float(evaluator.evaluations - evals_before), label="diversify"
            )

        # ---- local iterations --------------------------------------------
        interrupted = False
        locals_this_round = 0
        local_trace = []
        # limplock shrinking (fault mode only): the master may ship a smaller
        # per-round budget sized from this worker's observed throughput
        budget = getattr(start, "local_iterations", None)
        if budget is None:
            budget = params.tabu.local_iterations
        for _ in range(budget):
            round_counter += 1
            solution = evaluator.snapshot()
            active = [pid for pid in clw_pids if pid in alive_clws]
            pending: Set[int] = set(active)
            for pid in active:
                index = clw_index_of[pid]
                task_payload = clw_encoder.encode(index, solution, version=round_counter)
                yield ctx.send(
                    pid,
                    Tags.CLW_TASK,
                    ClwTask(
                        round_id=round_counter,
                        solution=task_payload,
                        cell_range=(clw_range_of[index] if index in range_dirty else None),
                    ),
                )
                range_dirty.discard(index)
            results: List[ClwResult] = []
            interrupt_sent = False
            stashed_report = None
            deadline = None
            if fault is not None:
                deadline = (yield ctx.now()) + fault.clw_deadline
            while pending:
                if fault is None:
                    reply = yield ctx.recv(tag=Tags.CLW_RESULT)
                else:
                    now = yield ctx.now()
                    remaining = deadline - now
                    if remaining <= 0:
                        # deadline elapsed: forgive with a full re-send, or
                        # strike the worker out and re-partition its range
                        struck: List[int] = []
                        for pid in sorted(pending):
                            index = clw_index_of[pid]
                            clw_missed[index] = clw_missed.get(index, 0) + 1
                            if clw_missed[index] > fault.max_missed_deadlines:
                                struck.append(pid)
                                continue
                            clw_encoder.invalidate(index)
                            task_payload = clw_encoder.encode(
                                index, solution, version=round_counter
                            )
                            yield ctx.send(
                                pid,
                                Tags.CLW_TASK,
                                ClwTask(
                                    round_id=round_counter,
                                    solution=task_payload,
                                    cell_range=clw_range_of[index],
                                ),
                            )
                        for pid in struck:
                            pending.discard(pid)
                            _drop_clw(pid)
                        deadline = (yield ctx.now()) + fault.clw_deadline
                        continue
                    reply = yield ctx.recv_timeout(remaining)
                    if reply is None:
                        continue
                    if reply.tag == Tags.WORKER_DOWN:
                        down_pid = getattr(reply.payload, "pid", None)
                        if down_pid in alive_clws:
                            pending.discard(down_pid)
                            _drop_clw(down_pid)
                        continue
                    if reply.tag == Tags.REPORT_NOW:
                        # the master's early-report request, scooped by the
                        # untagged receive — honoured at the probe point below
                        stashed_report = reply
                        continue
                    if reply.tag != Tags.CLW_RESULT:
                        continue
                result: ClwResult = reply.payload
                # Discard the sender before the staleness check — a late or
                # duplicate result from an earlier round must still release
                # its CLW from `pending`, or an asynchronous backend wedges
                # here (tests/parallel/test_stale_results.py).
                pending.discard(reply.src)
                if result.round_id != round_counter:
                    # stale: sender accounted for, result ignored; its
                    # resident state is no longer trustworthy
                    clw_encoder.invalidate(result.clw_index)
                    continue
                if result.needs_full:
                    # the CLW could not apply the delta — re-send in full
                    clw_encoder.invalidate(result.clw_index)
                    task_payload = clw_encoder.encode(
                        result.clw_index, solution, version=round_counter
                    )
                    yield ctx.send(
                        reply.src,
                        Tags.CLW_TASK,
                        ClwTask(round_id=round_counter, solution=task_payload),
                    )
                    pending.add(reply.src)
                    if fault is not None:
                        deadline = (yield ctx.now()) + fault.clw_deadline
                    continue
                if any(r.clw_index == result.clw_index for r in results):
                    # duplicate of an already-recorded result: a double-report
                    # means the CLW's resident state can no longer be trusted
                    clw_encoder.invalidate(result.clw_index)
                    continue
                if fault is not None:
                    clw_missed[result.clw_index] = 0
                results.append(result)
                if (
                    sync.is_heterogeneous
                    and not interrupt_sent
                    and pending
                    and sync.should_interrupt(len(results), len(active))
                ):
                    for pid in pending:
                        yield ctx.send(pid, Tags.REPORT_NOW, ReportNow(round_id=round_counter))
                    interrupt_sent = True

            # Arrival order is nondeterministic on the real backends; order by
            # CLW index so candidate tie-breaking is timing-independent.
            results.sort(key=lambda r: r.clw_index)
            candidates = [_result_to_candidate(result) for result in results]
            evals_before = evaluator.evaluations
            search.consider_candidates(candidates)
            yield ctx.compute(float(evaluator.evaluations - evals_before), label="accept")
            locals_this_round += 1
            local_iterations_done += 1
            now = yield ctx.now()
            local_trace.append((float(now), float(search.best_cost)))

            # Did the master ask us to cut this global iteration short?
            request = stashed_report
            if request is None:
                request = yield ctx.probe(tag=Tags.REPORT_NOW)
            if request is not None:
                report: ReportNow = request.payload
                if report.round_id == start.global_iteration:
                    interrupted = True
                    interruptions += 1
                    break
                # stale request for an earlier global iteration: ignore

        # ---- report to the master ----------------------------------------
        global_iterations_done += 1
        best_solution = search.best_solution
        report_payload = master_encoder.encode(
            _MASTER, best_solution, version=start.global_iteration
        )
        result = TswResult(
            tsw_index=tsw_index,
            global_iteration=start.global_iteration,
            best_solution=report_payload,
            best_cost=search.best_cost,
            local_iterations_done=locals_this_round,
            interrupted=interrupted,
            evaluations=evaluator.evaluations,
            tabu_payload=search.tabu_list.to_payload(),
            trace=tuple(local_trace),
        )
        yield ctx.send(master_pid, Tags.TSW_RESULT, result)
        # Normalise the resident solution onto the reported best — the base
        # the master encodes the next broadcast against.  Applied even when
        # no swaps are needed: the exact timing refresh leaves the evaluator
        # in the same canonical state a full install of the reported best
        # would, so an empty delta next round is interchangeable with one.
        normalize = swap_list_between(evaluator.snapshot(), best_solution)
        evaluator.apply_swaps(normalize, exact_timing=True)
        if normalize.shape[0]:
            yield ctx.compute(
                problem.adopt_work_units(int(normalize.shape[0])), label="normalize"
            )

    best_cost = search.best_cost if search is not None else float("inf")
    evaluations = evaluator.evaluations if evaluator is not None else 0
    return TswSummary(
        tsw_index=tsw_index,
        global_iterations_done=global_iterations_done,
        local_iterations_done=local_iterations_done,
        interruptions=interruptions,
        best_cost=best_cost,
        evaluations=evaluations,
    )
