"""Tabu Search Worker (TSW) process — Figure 3 of the paper.

Each TSW owns a complete tabu search (tabu list, frequency memory, aspiration)
over its private copy of the solution.  Per global iteration it

1. adopts the solution broadcast by the master (together with the tabu list
   associated with it),
2. performs the diversification step restricted to its own cell range so that
   different TSWs explore different regions (Section 4.1),
3. runs ``local_iterations`` tabu-search iterations; the candidate compound
   moves of every iteration are produced by its CLWs, collected according to
   the synchronisation policy (wait for all, or interrupt the slow half), and
4. reports its best solution, cost and tabu list to the master — either after
   finishing all local iterations or as soon as the master requests an early
   report.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .._rng import derive_seed
from ..tabu.candidate import CellRange
from ..tabu.moves import CompoundMove, SwapMove
from ..tabu.search import TabuSearch
from .clw import clw_process
from .config import ParallelSearchParams
from .messages import ClwResult, ClwTask, GlobalStart, ReportNow, Tags, TswResult, TswSummary
from .problem import PlacementProblem
from .sync import SyncPolicy

__all__ = ["tsw_process"]


def _result_to_candidate(result: ClwResult) -> CompoundMove:
    """Convert a CLW's wire-format result into a candidate compound move."""
    swaps = [
        SwapMove(cell_a=int(a), cell_b=int(b), cost_after=result.cost_after)
        for a, b in result.pairs
    ]
    return CompoundMove(
        swaps=swaps,
        cost_before=result.cost_before,
        cost_after=result.cost_after,
        trials=result.trials,
        truncated_early=result.interrupted,
    )


def tsw_process(
    ctx,
    problem: PlacementProblem,
    params: ParallelSearchParams,
    tsw_index: int,
    tsw_range: CellRange,
    clw_ranges: List[CellRange],
    seed: int,
):
    """Generator body of a TSW process (run it under a PVM kernel)."""
    sync = SyncPolicy(mode=params.sync_mode, report_fraction=params.report_fraction)

    # ---- spawn the candidate-list workers --------------------------------
    clw_pids: List[int] = []
    for clw_index, clw_range in enumerate(clw_ranges):
        pid = yield ctx.spawn(
            clw_process,
            problem,
            params.tabu,
            clw_range,
            clw_index,
            derive_seed(seed, "tsw", tsw_index, "clw", clw_index),
            name=f"tsw{tsw_index}.clw{clw_index}",
        )
        clw_pids.append(pid)

    evaluator = None
    search: Optional[TabuSearch] = None
    round_counter = 0
    global_iterations_done = 0
    local_iterations_done = 0
    interruptions = 0

    while True:
        message = yield ctx.recv()
        if message.tag == Tags.STOP:
            for pid in clw_pids:
                yield ctx.send(pid, Tags.STOP)
            break
        if message.tag == Tags.REPORT_NOW:
            continue  # stale: we already reported for that iteration
        if message.tag != Tags.GLOBAL_START:
            continue
        start: GlobalStart = message.payload

        # ---- adopt the master's solution (and its tabu list) -------------
        if evaluator is None:
            evaluator = problem.make_evaluator(start.solution)
            search = TabuSearch(
                evaluator,
                params.tabu,
                cell_range=tsw_range,
                seed=derive_seed(seed, "tsw-search", tsw_index),
            )
        else:
            search.adopt_solution(start.solution)
        if start.tabu_payload is not None:
            search.adopt_tabu_list(start.tabu_payload)
        yield ctx.compute(problem.install_work_units(), label="install")

        # ---- diversification within this TSW's private range -------------
        if params.diversify and params.tabu.diversification_depth > 0:
            evals_before = evaluator.evaluations
            search.diversify()
            yield ctx.compute(
                float(evaluator.evaluations - evals_before), label="diversify"
            )

        # ---- local iterations --------------------------------------------
        interrupted = False
        locals_this_round = 0
        local_trace = []
        for _ in range(params.tabu.local_iterations):
            round_counter += 1
            solution = evaluator.snapshot()
            pending: Set[int] = set(clw_pids)
            for pid in clw_pids:
                yield ctx.send(
                    pid, Tags.CLW_TASK, ClwTask(round_id=round_counter, solution=solution)
                )
            results: List[ClwResult] = []
            interrupt_sent = False
            while pending:
                reply = yield ctx.recv(tag=Tags.CLW_RESULT)
                result: ClwResult = reply.payload
                # Discard the sender before the staleness check — a late or
                # duplicate result from an earlier round must still release
                # its CLW from `pending`, or an asynchronous backend wedges
                # here (tests/parallel/test_stale_results.py).
                pending.discard(reply.src)
                if result.round_id != round_counter:
                    continue  # stale: sender accounted for, result ignored
                if any(r.clw_index == result.clw_index for r in results):
                    continue  # duplicate of an already-recorded result
                results.append(result)
                if (
                    sync.is_heterogeneous
                    and not interrupt_sent
                    and pending
                    and sync.should_interrupt(len(results), len(clw_pids))
                ):
                    for pid in pending:
                        yield ctx.send(pid, Tags.REPORT_NOW, ReportNow(round_id=round_counter))
                    interrupt_sent = True

            # Arrival order is nondeterministic on the real backends; order by
            # CLW index so candidate tie-breaking is timing-independent.
            results.sort(key=lambda r: r.clw_index)
            candidates = [_result_to_candidate(result) for result in results]
            evals_before = evaluator.evaluations
            search.consider_candidates(candidates)
            yield ctx.compute(float(evaluator.evaluations - evals_before), label="accept")
            locals_this_round += 1
            local_iterations_done += 1
            now = yield ctx.now()
            local_trace.append((float(now), float(search.best_cost)))

            # Did the master ask us to cut this global iteration short?
            request = yield ctx.probe(tag=Tags.REPORT_NOW)
            if request is not None:
                report: ReportNow = request.payload
                if report.round_id == start.global_iteration:
                    interrupted = True
                    interruptions += 1
                    break
                # stale request for an earlier global iteration: ignore

        # ---- report to the master ----------------------------------------
        global_iterations_done += 1
        result = TswResult(
            tsw_index=tsw_index,
            global_iteration=start.global_iteration,
            best_solution=search.best_solution,
            best_cost=search.best_cost,
            local_iterations_done=locals_this_round,
            interrupted=interrupted,
            evaluations=evaluator.evaluations,
            tabu_payload=search.tabu_list.to_payload(),
            trace=tuple(local_trace),
        )
        yield ctx.send(ctx.parent, Tags.TSW_RESULT, result)

    best_cost = search.best_cost if search is not None else float("inf")
    evaluations = evaluator.evaluations if evaluator is not None else 0
    return TswSummary(
        tsw_index=tsw_index,
        global_iterations_done=global_iterations_done,
        local_iterations_done=local_iterations_done,
        interruptions=interruptions,
        best_cost=best_cost,
        evaluations=evaluations,
    )
