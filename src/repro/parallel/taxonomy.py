"""Crainic / Toulouse / Gendreau taxonomy of parallel tabu search.

Section 4 of the paper classifies its algorithm along the three dimensions of
the Crainic et al. taxonomy.  This module encodes those dimensions as enums
and provides :func:`classify`, which derives the classification of a
:class:`~repro.parallel.config.ParallelSearchParams` configuration — useful
both for documentation (the classification is printed by the quickstart
example) and as an executable statement of Section 4.3:

* the *high* level (master/TSWs) is **p-control**, the *low* level
  (TSW/CLWs) is **1-control**;
* control & communication follow **rigid synchronisation** (the parent waits
  for, or stops, its children at fixed points);
* search differentiation is **MPSS** — multiple starting points (after
  diversification), single strategy — unless diversification is disabled, in
  which case all workers start from the same point (SPSS).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .config import ParallelSearchParams

__all__ = [
    "ControlCardinality",
    "CommunicationType",
    "SearchDifferentiation",
    "ParallelisationStrategy",
    "TaxonomyClassification",
    "classify",
]


class ControlCardinality(enum.Enum):
    """Who controls the search."""

    ONE_CONTROL = "1-control"
    P_CONTROL = "p-control"


class CommunicationType(enum.Enum):
    """Control & communication dimension."""

    RIGID_SYNCHRONIZATION = "RS"
    KNOWLEDGE_SYNCHRONIZATION = "KS"
    COLLEGIAL = "C"
    KNOWLEDGE_COLLEGIAL = "KC"


class SearchDifferentiation(enum.Enum):
    """Search differentiation dimension."""

    SPSS = "single point, single strategy"
    SPDS = "single point, different strategies"
    MPSS = "multiple points, single strategy"
    MPDS = "multiple points, different strategies"


class ParallelisationStrategy(enum.Enum):
    """Coarse strategy names used in Section 4 of the paper."""

    FUNCTIONAL_DECOMPOSITION = "functional decomposition"
    MULTI_SEARCH_THREADS = "multi-search threads"
    DOMAIN_DECOMPOSITION = "domain decomposition"


@dataclass(frozen=True, slots=True)
class TaxonomyClassification:
    """Classification of a PTS configuration along the taxonomy's dimensions."""

    high_level_control: ControlCardinality
    low_level_control: ControlCardinality
    communication: CommunicationType
    differentiation: SearchDifferentiation
    strategies: tuple[ParallelisationStrategy, ...]

    def describe(self) -> str:
        """One-paragraph human-readable description."""
        strategy_names = ", ".join(s.value for s in self.strategies)
        return (
            f"high level: {self.high_level_control.value}; "
            f"low level: {self.low_level_control.value}; "
            f"communication: {self.communication.value}; "
            f"differentiation: {self.differentiation.name} ({self.differentiation.value}); "
            f"strategies: {strategy_names}"
        )


def classify(params: ParallelSearchParams) -> TaxonomyClassification:
    """Classify a parameter set exactly as Section 4.3 classifies the paper's PTS."""
    strategies = []
    if params.num_tsws > 1:
        strategies.append(ParallelisationStrategy.MULTI_SEARCH_THREADS)
    if params.clws_per_tsw > 1:
        strategies.append(ParallelisationStrategy.FUNCTIONAL_DECOMPOSITION)
        strategies.append(ParallelisationStrategy.DOMAIN_DECOMPOSITION)
    if not strategies:
        strategies.append(ParallelisationStrategy.FUNCTIONAL_DECOMPOSITION)

    differentiation = (
        SearchDifferentiation.MPSS
        if params.diversify and params.num_tsws > 1
        else SearchDifferentiation.SPSS
    )
    return TaxonomyClassification(
        high_level_control=(
            ControlCardinality.P_CONTROL if params.num_tsws > 1 else ControlCardinality.ONE_CONTROL
        ),
        low_level_control=ControlCardinality.ONE_CONTROL,
        communication=CommunicationType.RIGID_SYNCHRONIZATION,
        differentiation=differentiation,
        strategies=tuple(strategies),
    )
