"""Parent/child synchronisation policies.

The paper accounts for speed and load heterogeneity with one simple rule
(Section 4.2): a parent (the master w.r.t. its TSWs, a TSW w.r.t. its CLWs)
stops waiting passively once **half** of its children have reported, and asks
all remaining children to report whatever best solution they currently have.
Every child still reports exactly once per round — the slow ones just report
earlier (and with less work done) than they would have otherwise.

The *homogeneous* policy is the control configuration: the parent always
waits for every child to finish its full assignment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ParallelSearchError
from .config import SyncMode

__all__ = ["SyncPolicy"]


@dataclass(frozen=True, slots=True)
class SyncPolicy:
    """When to broadcast the early-report request.

    Attributes
    ----------
    mode:
        ``"heterogeneous"`` or ``"homogeneous"``.
    report_fraction:
        Fraction of children whose reports trigger the early-report request
        (ignored in homogeneous mode).  The paper uses 0.5.
    """

    mode: SyncMode = "heterogeneous"
    report_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.mode not in ("heterogeneous", "homogeneous"):
            raise ParallelSearchError(f"unknown sync mode {self.mode!r}")
        if not (0.0 < self.report_fraction <= 1.0):
            raise ParallelSearchError(
                f"report_fraction must be in (0, 1], got {self.report_fraction}"
            )

    @property
    def is_heterogeneous(self) -> bool:
        """Whether the early-report mechanism is active."""
        return self.mode == "heterogeneous"

    def report_threshold(self, num_children: int) -> int:
        """Number of received reports after which the parent interrupts the rest.

        In homogeneous mode the threshold equals ``num_children`` (never
        interrupt).  In heterogeneous mode it is
        ``ceil(report_fraction * num_children)``, clamped to at least 1.
        """
        if num_children < 1:
            raise ParallelSearchError(f"num_children must be >= 1, got {num_children}")
        if not self.is_heterogeneous:
            return num_children
        return max(1, math.ceil(self.report_fraction * num_children))

    def should_interrupt(self, received: int, num_children: int) -> bool:
        """Whether the parent should now ask the remaining children to report."""
        if received >= num_children:
            return False  # everyone already reported
        return received >= self.report_threshold(num_children)
