"""Candidate List Worker (CLW) process — Figure 4 of the paper.

A CLW serves its parent TSW: for every task it receives it adopts the TSW's
current solution, explores the neighbourhood restricted to its private cell
range by building a compound move of configurable depth, and sends the best
(sub-)move back.  Each depth step draws its whole candidate list up front and
scores it with one call to the evaluator's batched swap-evaluation kernel
(``evaluate_swaps_batch`` of the :class:`~repro.core.protocols.SwapEvaluator`
protocol).

The CLW keeps its solution *resident*: after finishing a task it rewinds the
evaluator to the task base, so the next task's
:class:`~repro.parallel.delta.SolutionPayload` can arrive as a swap-list
delta (often one accepted compound move — a handful of swaps) and be applied
with the evaluator's bulk ``apply_swaps`` path instead of a
full install and cache rebuild.  An empty delta (the TSW's solution did not
change) skips the install outright.  On a base-version or checksum mismatch
the CLW answers a ``needs_full`` NACK and the TSW re-sends the task in full.

Between depth steps the CLW polls for an early-report request
(:class:`~repro.parallel.messages.ReportNow`) from the parent — the mechanism
the heterogeneous synchronisation uses to keep slow machines from stalling
the whole search.
"""

from __future__ import annotations

import copy
import pickle
from typing import Optional

import numpy as np

from .._rng import derive_seed, make_rng
from ..core.protocols import SearchProblem
from ..tabu.candidate import CellRange
from ..tabu.moves import CompoundMoveBuilder
from ..tabu.params import TabuSearchParams
from .delta import ResidentSolution, as_payload, solution_crc
from .messages import ClwResult, ClwSummary, ClwTask, ClwWorkerState, ReportNow, Tags

__all__ = ["clw_process"]


def _nack(clw_index: int, round_id: int) -> ClwResult:
    """A ``needs_full`` reply: the delta task could not be applied."""
    return ClwResult(
        clw_index=clw_index,
        round_id=round_id,
        pairs=(),
        cost_before=0.0,
        cost_after=0.0,
        trials=0,
        interrupted=False,
        needs_full=True,
    )


def clw_process(
    ctx,
    problem: SearchProblem,
    tabu_params: TabuSearchParams,
    cell_range: CellRange,
    clw_index: int,
    seed: int,
    initial_state: Optional[ClwWorkerState] = None,
):
    """Generator body of a CLW process (run it under a PVM kernel).

    Parameters
    ----------
    problem:
        Shared immutable problem description.
    tabu_params:
        ``pairs_per_step`` (m), ``move_depth`` (d) and the early-accept flag
        are the relevant fields here.
    cell_range:
        The private range this CLW draws the first cell of every candidate
        pair from.
    clw_index:
        Index of this CLW within its parent TSW (used in results and seeds).
    seed:
        Seed of this worker's private random stream.
    initial_state:
        Checkpointed :class:`~repro.parallel.messages.ClwWorkerState` to
        resume from — restores the RNG stream, the evaluator's exact
        internal state and the resident-solution version, so the resumed
        trajectory is bit-identical to the uninterrupted one.
    """
    rng = make_rng(derive_seed(seed, "clw", clw_index), ctx.name)
    evaluator = None
    resident = ResidentSolution()
    base_state = None  # evaluator snapshot at the current task base
    tasks_done = 0
    total_trials = 0
    interruptions = 0

    if initial_state is not None and initial_state.evaluator_state:
        rng.bit_generator.state = copy.deepcopy(initial_state.rng_state)
        evaluator = problem.make_evaluator(
            np.asarray(initial_state.assignment, dtype=np.int64)
        )
        yield ctx.compute(problem.install_work_units(), label="install")
        evaluator.restore_state(pickle.loads(initial_state.evaluator_state))
        evaluator.evaluations = int(initial_state.evaluations)
        resident.version = int(initial_state.resident_version)
        tasks_done = int(initial_state.tasks_done)
        total_trials = int(initial_state.trials)
        interruptions = int(initial_state.interruptions)

    while True:
        message = yield ctx.recv()  # task, stop, state request, or stale report_now
        if message.tag == Tags.STOP:
            break
        if message.tag == Tags.REPORT_NOW:
            # Stale interrupt from a round whose result we already sent.
            continue
        if message.tag == Tags.STATE_REQUEST:
            state = ClwWorkerState(
                clw_index=clw_index,
                rng_state=copy.deepcopy(rng.bit_generator.state),
                assignment=(
                    evaluator.snapshot() if evaluator is not None else np.empty(0, np.int64)
                ),
                evaluator_state=(
                    pickle.dumps(evaluator.save_state(), protocol=4)
                    if evaluator is not None
                    else b""
                ),
                evaluations=(evaluator.evaluations if evaluator is not None else 0),
                resident_version=resident.version,
                tasks_done=tasks_done,
                trials=total_trials,
                interruptions=interruptions,
            )
            yield ctx.send(message.src, Tags.STATE_REPLY, state)
            continue
        if message.tag != Tags.CLW_TASK:
            continue
        task: ClwTask = message.payload
        if getattr(task, "cell_range", None) is not None:
            # elastic re-assignment: a CLW died and the TSW re-partitioned
            # its ranges over the survivors
            cell_range = task.cell_range
        payload = as_payload(task.solution, version=task.round_id)

        # ---- adopt the task solution (full, delta, or unchanged) ----------
        if evaluator is None:
            if not payload.is_full:
                # first contact must ship full; NACK so the TSW recovers
                yield ctx.send(ctx.parent, Tags.CLW_RESULT, _nack(clw_index, task.round_id))
                continue
            evaluator = problem.make_evaluator(payload.full_solution())
            adopt_swaps = -1
            yield ctx.compute(problem.install_work_units(), label="install")
        else:
            plan, data = resident.plan(payload)
            if plan == "full":
                evaluator.install_solution(data)
                adopt_swaps = -1
                yield ctx.compute(problem.install_work_units(), label="install")
            elif plan == "delta" and data.shape[0] == 0:
                adopt_swaps = 0  # unchanged solution: skip the install
            elif plan == "delta":
                evaluator.apply_swaps(data, exact_timing=True)
                if solution_crc(evaluator.snapshot()) != payload.target_crc:
                    # resident base diverged from the sender's record — the
                    # evaluator now holds a wrong solution, but the recovery
                    # shipment is a full install that overwrites everything
                    resident.version = -1
                    yield ctx.send(
                        ctx.parent, Tags.CLW_RESULT, _nack(clw_index, task.round_id)
                    )
                    continue
                adopt_swaps = int(data.shape[0])
                yield ctx.compute(
                    problem.adopt_work_units(adopt_swaps), label="install"
                )
            else:  # mismatch: delta against a base we do not hold
                yield ctx.send(ctx.parent, Tags.CLW_RESULT, _nack(clw_index, task.round_id))
                continue
        resident.adopted(payload)
        base_state = evaluator.save_state()

        # ---- explore the neighbourhood ------------------------------------
        builder = CompoundMoveBuilder(
            evaluator,
            cell_range,
            pairs_per_step=tabu_params.pairs_per_step,
            depth=tabu_params.move_depth,
            early_accept=tabu_params.early_accept,
        )
        interrupted = False
        while builder.wants_more_steps():
            interrupt = yield ctx.probe(tag=Tags.REPORT_NOW)
            if interrupt is not None:
                request: ReportNow = interrupt.payload
                if request.round_id == task.round_id:
                    interrupted = True
                    interruptions += 1
                    break
                continue  # stale interrupt for an earlier round: ignore
            trials = builder.step(rng)
            # one commit accompanies the batch of trials of each step
            yield ctx.compute(trials + 1, label="explore")

        move = builder.finalize()
        total_trials += move.trials
        tasks_done += 1
        result = ClwResult(
            clw_index=clw_index,
            round_id=task.round_id,
            pairs=tuple(move.pairs()),
            cost_before=move.cost_before,
            cost_after=move.cost_after,
            trials=move.trials,
            interrupted=interrupted,
            step_costs=tuple(swap.cost_after for swap in move.swaps),
            adopt_swaps=adopt_swaps,
        )
        yield ctx.send(ctx.parent, Tags.CLW_RESULT, result)
        # Rewind to the task base: the resident solution the next delta
        # applies to is the task solution, not the explored best prefix.
        evaluator.restore_state(base_state)

    return ClwSummary(
        clw_index=clw_index,
        tasks_done=tasks_done,
        trials=total_trials,
        interruptions=interruptions,
    )
