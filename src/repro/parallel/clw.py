"""Candidate List Worker (CLW) process — Figure 4 of the paper.

A CLW serves its parent TSW: for every task it receives it installs the
TSW's current solution, explores the neighbourhood restricted to its private
cell range by building a compound move of configurable depth, and sends the
best (sub-)move back.  Each depth step draws its whole candidate list up
front and scores it with one call to the batched swap-evaluation kernel
(:meth:`~repro.placement.cost.CostEvaluator.evaluate_swaps_batch`) — the
per-trial work the simulated ``compute`` cost accounts for below is therefore
a vectorised batch on the real hardware, which is where the wall-clock
speedups of Figs. 6/8 come from.  Between depth steps the CLW polls for an
early-report request (:class:`~repro.parallel.messages.ReportNow`) from the
parent — the mechanism the heterogeneous synchronisation uses to keep slow
machines from stalling the whole search.
"""

from __future__ import annotations

from typing import Optional

from .._rng import derive_seed, make_rng
from ..tabu.candidate import CellRange
from ..tabu.moves import CompoundMoveBuilder
from ..tabu.params import TabuSearchParams
from .messages import ClwResult, ClwSummary, ClwTask, ReportNow, Tags
from .problem import PlacementProblem

__all__ = ["clw_process"]


def clw_process(
    ctx,
    problem: PlacementProblem,
    tabu_params: TabuSearchParams,
    cell_range: CellRange,
    clw_index: int,
    seed: int,
):
    """Generator body of a CLW process (run it under a PVM kernel).

    Parameters
    ----------
    problem:
        Shared immutable problem description.
    tabu_params:
        ``pairs_per_step`` (m), ``move_depth`` (d) and the early-accept flag
        are the relevant fields here.
    cell_range:
        The private range this CLW draws the first cell of every candidate
        pair from.
    clw_index:
        Index of this CLW within its parent TSW (used in results and seeds).
    seed:
        Seed of this worker's private random stream.
    """
    rng = make_rng(derive_seed(seed, "clw", clw_index), ctx.name)
    evaluator = None
    tasks_done = 0
    total_trials = 0
    interruptions = 0

    while True:
        message = yield ctx.recv()  # task, stop, or stale report_now
        if message.tag == Tags.STOP:
            break
        if message.tag == Tags.REPORT_NOW:
            # Stale interrupt from a round whose result we already sent.
            continue
        if message.tag != Tags.CLW_TASK:
            continue
        task: ClwTask = message.payload

        if evaluator is None:
            evaluator = problem.make_evaluator(task.solution)
        else:
            evaluator.install_solution(task.solution)
        yield ctx.compute(problem.install_work_units(), label="install")

        builder = CompoundMoveBuilder(
            evaluator,
            cell_range,
            pairs_per_step=tabu_params.pairs_per_step,
            depth=tabu_params.move_depth,
            early_accept=tabu_params.early_accept,
        )
        interrupted = False
        while builder.wants_more_steps():
            interrupt = yield ctx.probe(tag=Tags.REPORT_NOW)
            if interrupt is not None:
                request: ReportNow = interrupt.payload
                if request.round_id == task.round_id:
                    interrupted = True
                    interruptions += 1
                    break
                continue  # stale interrupt for an earlier round: ignore
            trials = builder.step(rng)
            # one commit accompanies the batch of trials of each step
            yield ctx.compute(trials + 1, label="explore")

        move = builder.finalize()
        total_trials += move.trials
        tasks_done += 1
        result = ClwResult(
            clw_index=clw_index,
            round_id=task.round_id,
            pairs=tuple(move.pairs()),
            cost_before=move.cost_before,
            cost_after=move.cost_after,
            trials=move.trials,
            interrupted=interrupted,
        )
        yield ctx.send(ctx.parent, Tags.CLW_RESULT, result)

    return ClwSummary(
        clw_index=clw_index,
        tasks_done=tasks_done,
        trials=total_trials,
        interruptions=interruptions,
    )
