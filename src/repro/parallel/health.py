"""Master-side worker health ledger: liveness, deadlines and throughput.

The fault-tolerant master keeps one :class:`HealthLedger` over its TSWs (and
each TSW keeps one over its CLWs): every report updates an EWMA of the
worker's *observed* per-round throughput, every missed deadline increments a
strike counter, and a death — by strike-out or by backend obituary — flips
the worker's ``alive`` bit.  The ledger is pure bookkeeping driven by times
the caller passes in (virtual on the simulated backend, wall-clock on the
real ones), so the same code is bit-deterministic under the simulator and
its state serialises into run checkpoints.

Throughput observations feed two decisions:

* **re-partitioning** — when a worker dies, survivors split the cells
  proportionally to their smoothed rates (:meth:`throughput_weights`);
* **limplock shrinking** — a persistently slow-but-alive worker gets a
  smaller local-iteration budget (:meth:`iteration_budget`) sized from its
  observed rate rather than its declared machine speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .config import FaultPolicy

__all__ = ["WorkerHealth", "HealthLedger"]


@dataclass
class WorkerHealth:
    """Observed state of one worker (plain data, checkpoint-friendly)."""

    key: int
    alive: bool = True
    missed_deadlines: int = 0
    rate: Optional[float] = None  # EWMA evaluations/second
    last_evaluations: int = 0
    rounds_reported: int = 0
    slow_streak: int = 0
    limplocked: bool = False
    #: Gracefully retired (no strike): not alive, but not dead either —
    #: ``dead_keys`` excludes drained workers and ``install_state(revive=True)``
    #: does not resurrect them.
    drained: bool = False


class HealthLedger:
    """Deadline, liveness and throughput bookkeeping for a set of workers.

    ``speed_hints`` declares expected *relative* speeds (e.g. a GPU worker at
    ``40.0`` next to CPU workers at ``1.0``).  Limplock detection and budget
    shrinking compare hint-normalised rates, so a CPU worker in a mixed
    cluster is only limplocked when it runs slow *for a CPU* — without hints
    a 10–50× device-speed skew would strangle every CPU worker's iteration
    budget even though nothing is wrong with it.  Re-partitioning weights
    (:meth:`throughput_weights`) deliberately stay raw-observed: splitting
    cells by real throughput is the point of measuring it.  Hints are
    config, not observations — they are re-supplied at construction and stay
    out of the checkpoint rows.
    """

    def __init__(
        self,
        policy: FaultPolicy,
        keys: List[int],
        *,
        speed_hints: Optional[Dict[int, float]] = None,
    ) -> None:
        self._policy = policy
        self._workers: Dict[int, WorkerHealth] = {key: WorkerHealth(key=key) for key in keys}
        self._hints: Dict[int, float] = {}
        if speed_hints:
            for key, hint in speed_hints.items():
                if key in self._workers:
                    self.set_speed_hint(key, hint)

    def set_speed_hint(self, key: int, hint: float) -> None:
        """Declare a worker's expected relative speed (must be positive)."""
        hint = float(hint)
        if not hint > 0 or hint != hint or hint == float("inf"):
            raise ValueError(f"speed hint must be a positive finite number, got {hint!r}")
        self._hints[key] = hint

    def _normalized_rate(self, worker: WorkerHealth) -> Optional[float]:
        """Observed rate divided by the worker's speed hint (default 1.0)."""
        if worker.rate is None:
            return None
        return worker.rate / self._hints.get(worker.key, 1.0)

    # -- liveness -------------------------------------------------------- #
    def alive_keys(self) -> List[int]:
        """Keys of workers still considered alive, in key order."""
        return [key for key in sorted(self._workers) if self._workers[key].alive]

    def dead_keys(self) -> List[int]:
        """Keys of workers that died (drained workers are *not* dead)."""
        return [
            key
            for key in sorted(self._workers)
            if not self._workers[key].alive and not self._workers[key].drained
        ]

    def drained_keys(self) -> List[int]:
        return [key for key in sorted(self._workers) if self._workers[key].drained]

    def is_alive(self, key: int) -> bool:
        return self._workers[key].alive

    def mark_dead(self, key: int) -> None:
        self._workers[key].alive = False

    def mark_drained(self, key: int) -> None:
        """Gracefully retire a worker: off the roster, but without a strike."""
        worker = self._workers[key]
        worker.alive = False
        worker.drained = True

    def add_worker(self, key: int, *, speed_hint: Optional[float] = None) -> None:
        """Register a mid-run admitted worker (no-op if already tracked)."""
        if key not in self._workers:
            self._workers[key] = WorkerHealth(key=key)
        if speed_hint is not None:
            self.set_speed_hint(key, speed_hint)

    def register_miss(self, key: int) -> bool:
        """Record a missed deadline; returns True when the worker struck out."""
        worker = self._workers[key]
        worker.missed_deadlines += 1
        return worker.missed_deadlines > self._policy.max_missed_deadlines

    def clear_misses(self, key: int) -> None:
        self._workers[key].missed_deadlines = 0

    # -- throughput ------------------------------------------------------ #
    def record_report(self, key: int, evaluations_total: int, elapsed: float) -> None:
        """Fold one round's report into the worker's smoothed throughput.

        ``evaluations_total`` is the worker's *cumulative* evaluation count
        (what :class:`~repro.parallel.messages.TswResult` carries); the
        ledger differences it against the previous report.
        """
        worker = self._workers[key]
        worker.rounds_reported += 1
        worker.missed_deadlines = 0
        delta = max(0, int(evaluations_total) - worker.last_evaluations)
        worker.last_evaluations = int(evaluations_total)
        if elapsed <= 0:
            return
        observed = delta / elapsed
        if worker.rate is None:
            worker.rate = observed
        else:
            alpha = self._policy.throughput_smoothing
            worker.rate = alpha * observed + (1.0 - alpha) * worker.rate
        self._update_limplock(worker)

    def _update_limplock(self, worker: WorkerHealth) -> None:
        """Fold the report just recorded into ``worker``'s limplock streak.

        Only the reporting worker's streak moves — a streak counts *its own*
        consecutive slow reports, one per round, not every peer's report.
        Rates are hint-normalised, so in a declared-heterogeneous cluster
        "slow" means slow relative to what the worker's hardware should do,
        not slow relative to the fastest device class.
        """
        rates = [
            norm
            for w in self._workers.values()
            if w.alive and (norm := self._normalized_rate(w)) is not None
        ]
        if not rates:
            return
        fastest = max(rates)
        if fastest <= 0:
            return
        threshold = self._policy.limplock_ratio * fastest
        if self._normalized_rate(worker) < threshold:
            worker.slow_streak += 1
        else:
            worker.slow_streak = 0
            worker.limplocked = False
        if worker.slow_streak >= self._policy.limplock_rounds:
            worker.limplocked = True

    def limplocked_keys(self) -> List[int]:
        return [
            key
            for key in sorted(self._workers)
            if self._workers[key].alive and self._workers[key].limplocked
        ]

    def rate_of(self, key: int) -> Optional[float]:
        return self._workers[key].rate

    def throughput_weights(self, keys: List[int]) -> Optional[List[float]]:
        """Smoothed rates of ``keys`` as partition weights.

        Returns ``None`` unless *every* worker has a positive observed rate —
        re-partitioning on declared-speed guesses is exactly what this layer
        replaces, so without full observations the caller splits evenly.
        """
        weights: List[float] = []
        for key in keys:
            rate = self._workers[key].rate
            if rate is None or rate <= 0:
                return None
            weights.append(rate)
        return weights

    def iteration_budget(self, key: int, base_iterations: int) -> int:
        """Local-iteration budget for one worker under limplock shrinking.

        Healthy workers keep the configured budget; a limplocked worker gets
        a budget proportional to its observed rate relative to the fastest
        survivor, floored at ``min_iteration_share`` of the base.
        """
        worker = self._workers[key]
        if not worker.limplocked or worker.rate is None:
            return base_iterations
        rates = [
            norm
            for w in self._workers.values()
            if w.alive and (norm := self._normalized_rate(w)) is not None
        ]
        fastest = max(rates) if rates else 0.0
        if fastest <= 0:
            return base_iterations
        floor = max(1, int(round(base_iterations * self._policy.min_iteration_share)))
        scaled = int(round(base_iterations * self._normalized_rate(worker) / fastest))
        return max(floor, min(base_iterations, scaled))

    # -- checkpointing --------------------------------------------------- #
    def export_hints(self) -> Dict[int, float]:
        """Current speed hints (config, not observations) for persistence."""
        return dict(self._hints)

    def export_state(self) -> Tuple[Tuple[int, bool, int, Optional[float], int, int, int, bool, bool], ...]:
        """Plain-tuple snapshot (stable field order; pickles byte-stably)."""
        return tuple(
            (
                w.key,
                w.alive,
                w.missed_deadlines,
                w.rate,
                w.last_evaluations,
                w.rounds_reported,
                w.slow_streak,
                w.limplocked,
                w.drained,
            )
            for _, w in sorted(self._workers.items())
        )

    def install_state(self, state, *, revive: bool = True) -> None:
        """Restore a snapshot from a checkpoint.

        ``revive`` resets every non-drained worker to alive: deaths are
        per-epoch facts (a cold resume respawns all workers; a pool resume
        repairs dead loops first), while throughput history — and graceful
        retirements — are worth keeping.  Accepts the pre-elasticity
        8-element rows (no ``drained`` flag) for old checkpoints.
        """
        for row in state:
            key = row[0]
            if key not in self._workers:
                continue
            worker = self._workers[key]
            (
                _,
                worker.alive,
                worker.missed_deadlines,
                worker.rate,
                worker.last_evaluations,
                worker.rounds_reported,
                worker.slow_streak,
                worker.limplocked,
            ) = row[:8]
            worker.drained = bool(row[8]) if len(row) > 8 else False
            if revive:
                worker.alive = not worker.drained
                worker.missed_deadlines = 0
