"""Parallel tabu search: the paper's primary contribution.

The package provides the three process types of the paper (master, Tabu
Search Workers, Candidate List Workers), the synchronisation policies for
heterogeneous clusters, and :func:`~repro.parallel.runner.run_parallel_search`
— the one-call entry point used by the examples and the benchmark harness.
"""

from .clw import clw_process
from .config import FaultPolicy, ParallelSearchParams, SyncMode
from .health import HealthLedger, WorkerHealth
from .master import GlobalIterationRecord, MasterResult, MasterRunState, master_process
from .messages import (
    ClwResult,
    ClwSummary,
    ClwTask,
    ClwWorkerState,
    GlobalStart,
    ReportNow,
    Tags,
    TswResult,
    TswSummary,
    TswWorkerState,
    WorkerDown,
)
from .runner import ParallelSearchResult, build_problem, run_parallel_search
from .sync import SyncPolicy
from .worker_loop import clw_worker_loop, tsw_worker_loop
from .taxonomy import (
    CommunicationType,
    ControlCardinality,
    ParallelisationStrategy,
    SearchDifferentiation,
    TaxonomyClassification,
    classify,
)
from .tsw import tsw_process


def __getattr__(name):
    # Lazy legacy re-export: ``from repro.parallel import PlacementProblem``
    # keeps working, but the engine package itself stays free of static
    # problem-domain imports (tests/core/test_import_boundaries.py) and the
    # deprecation warning of ``repro.parallel.problem`` fires only when the
    # legacy name is actually used.
    if name == "PlacementProblem":
        from ..problems.placement import PlacementProblem

        return PlacementProblem
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ParallelSearchParams",
    "FaultPolicy",
    "HealthLedger",
    "WorkerHealth",
    "WorkerDown",
    "SyncMode",
    "SyncPolicy",
    "PlacementProblem",
    "ParallelSearchResult",
    "build_problem",
    "run_parallel_search",
    "master_process",
    "tsw_process",
    "clw_process",
    "tsw_worker_loop",
    "clw_worker_loop",
    "MasterResult",
    "MasterRunState",
    "GlobalIterationRecord",
    "TswWorkerState",
    "ClwWorkerState",
    "Tags",
    "GlobalStart",
    "ReportNow",
    "TswResult",
    "TswSummary",
    "ClwTask",
    "ClwResult",
    "ClwSummary",
    "CommunicationType",
    "ControlCardinality",
    "ParallelisationStrategy",
    "SearchDifferentiation",
    "TaxonomyClassification",
    "classify",
]
