"""Parallel tabu search: the paper's primary contribution.

The package provides the three process types of the paper (master, Tabu
Search Workers, Candidate List Workers), the synchronisation policies for
heterogeneous clusters, and :func:`~repro.parallel.runner.run_parallel_search`
— the one-call entry point used by the examples and the benchmark harness.
"""

from .clw import clw_process
from .config import ParallelSearchParams, SyncMode
from .master import GlobalIterationRecord, MasterResult, master_process
from .messages import (
    ClwResult,
    ClwSummary,
    ClwTask,
    GlobalStart,
    ReportNow,
    Tags,
    TswResult,
    TswSummary,
)
from .problem import PlacementProblem
from .runner import ParallelSearchResult, build_problem, run_parallel_search
from .sync import SyncPolicy
from .taxonomy import (
    CommunicationType,
    ControlCardinality,
    ParallelisationStrategy,
    SearchDifferentiation,
    TaxonomyClassification,
    classify,
)
from .tsw import tsw_process

__all__ = [
    "ParallelSearchParams",
    "SyncMode",
    "SyncPolicy",
    "PlacementProblem",
    "ParallelSearchResult",
    "build_problem",
    "run_parallel_search",
    "master_process",
    "tsw_process",
    "clw_process",
    "MasterResult",
    "GlobalIterationRecord",
    "Tags",
    "GlobalStart",
    "ReportNow",
    "TswResult",
    "TswSummary",
    "ClwTask",
    "ClwResult",
    "ClwSummary",
    "CommunicationType",
    "ControlCardinality",
    "ParallelisationStrategy",
    "SearchDifferentiation",
    "TaxonomyClassification",
    "classify",
]
