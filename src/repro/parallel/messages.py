"""Message tags and payloads of the master / TSW / CLW protocol.

The protocol mirrors Figures 2–4 of the paper:

* the master broadcasts the current best solution to its TSWs at the start of
  every global iteration (:class:`GlobalStart`), collects one
  :class:`TswResult` per TSW, and may broadcast :class:`ReportNow` once the
  report threshold of the synchronisation policy is reached;
* a TSW sends one :class:`ClwTask` per CLW per local iteration, collects one
  :class:`ClwResult` per CLW, and may send :class:`ReportNow` to its slower
  CLWs;
* ``STOP`` terminates the worker loops.

Payload classes are intentionally *not* slotted dataclasses: the simulated
network estimates their size by walking ``__dict__``, so the byte accounting
sees the embedded NumPy solution arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from ..pvm.faults import (
    WORKER_ADMIT_TAG,
    WORKER_DOWN_TAG,
    WORKER_DRAIN_TAG,
    AdmitWorkers,
    DrainWorker,
    WorkerDown,
)
from .delta import SolutionPayload

__all__ = [
    "Tags",
    "WorkerDown",
    "AdmitWorkers",
    "DrainWorker",
    "GlobalStart",
    "ReportNow",
    "TswResult",
    "ClwTask",
    "ClwResult",
    "ClwSummary",
    "TswSummary",
    "ClwWorkerState",
    "TswWorkerState",
    "ClwSetup",
    "TswSetup",
    "SetupAck",
]


class Tags:
    """String tags of every message in the protocol."""

    GLOBAL_START = "global_start"
    TSW_RESULT = "tsw_result"
    REPORT_NOW = "report_now"
    CLW_TASK = "clw_task"
    CLW_RESULT = "clw_result"
    STOP = "stop"
    # --- session / pool extensions (PR 7) ---------------------------------
    #: Pool → persistent worker loop: configure for a new run.
    SETUP = "setup"
    #: Worker loop → parent/pool: setup installed, ready for traffic.
    SETUP_ACK = "setup_ack"
    #: Master → TSW → CLW: export your live run state for a checkpoint.
    STATE_REQUEST = "state_request"
    #: Child → parent: the requested worker-state export.
    STATE_REPLY = "state_reply"
    #: Driver → master: pause the run at the next global-iteration boundary.
    CANCEL = "cancel"
    #: Pool → persistent worker loops: exit for good.
    POOL_SHUTDOWN = "pool_shutdown"
    # --- fault tolerance (PR 8) -------------------------------------------
    #: Kernel/backend → parent or death listener: a worker died.  The tag
    #: literal lives in :mod:`repro.pvm.faults` (the kernels cannot import
    #: this module); the payload is :class:`~repro.pvm.faults.WorkerDown`.
    WORKER_DOWN = WORKER_DOWN_TAG
    # --- elasticity (PR 10) -----------------------------------------------
    #: Kernel (seeded ``SpawnWorker`` replay) or ``WorkerPool.grow`` → master:
    #: admit new TSW workers into the running search.  Payload is
    #: :class:`~repro.pvm.faults.AdmitWorkers`.
    ADMIT = WORKER_ADMIT_TAG
    #: Kernel (seeded ``DrainWorker`` replay) or ``WorkerPool.drain`` → master:
    #: gracefully retire the named worker at the next boundary, no strike.
    #: Payload is :class:`~repro.pvm.faults.DrainWorker`.
    DRAIN = WORKER_DRAIN_TAG


@dataclass
class GlobalStart:
    """Master → TSW: begin a global iteration from the given solution.

    ``solution`` is either a raw assignment array (legacy full shipment, kept
    for tests and tooling) or a :class:`~repro.parallel.delta.SolutionPayload`
    whose delta form applies to the solution the TSW *reported* for global
    iteration ``base_version`` — exactly what the TSW keeps resident after
    reporting.  A TSW that cannot apply a delta answers with a ``needs_full``
    :class:`TswResult` and the master re-broadcasts in full.
    """

    global_iteration: int
    solution: Union[np.ndarray, SolutionPayload]
    #: Tabu list associated with the solution (``TabuList.to_payload()``), or
    #: ``None`` for the very first iteration.
    tabu_payload: Optional[tuple] = None
    #: Elastic re-assignment (fault mode only): a new diversification /
    #: candidate range for this TSW, shipped when the master re-partitioned
    #: ranges over the survivors.  ``None`` keeps the current range.
    tsw_range: Optional[Any] = None
    #: Limplock shrinking (fault mode only): override of
    #: ``params.tabu.local_iterations`` for this round, sized from the
    #: worker's observed throughput.  ``None`` keeps the configured budget.
    local_iterations: Optional[int] = None


@dataclass
class ReportNow:
    """Parent → child: stop working and report your current best immediately.

    ``round_id`` identifies the round the request refers to (the global
    iteration for master→TSW, the TSW-local task counter for TSW→CLW) so that
    a request that arrives late — after the child already reported — can be
    recognised as stale and ignored.
    """

    round_id: int


@dataclass
class ClwTask:
    """TSW → CLW: explore the neighbourhood of this solution.

    ``solution`` is either a raw assignment array (legacy full shipment) or a
    :class:`~repro.parallel.delta.SolutionPayload`; the delta form applies to
    the task solution of round ``base_version``, which the CLW restores after
    finishing each task (so its resident state is always the last task base,
    not the explored best prefix).  An empty delta means the TSW's solution
    did not change since the last round — the CLW skips the install outright.
    On a base-version mismatch the CLW answers a ``needs_full``
    :class:`ClwResult` and the TSW re-sends the task in full.
    """

    round_id: int
    solution: Union[np.ndarray, SolutionPayload]
    #: Elastic re-assignment (fault mode only): a new compound-move range for
    #: this CLW, shipped when the TSW re-partitioned its CLW ranges after a
    #: CLW death.  ``None`` keeps the current range.
    cell_range: Optional[Any] = None


@dataclass
class ClwResult:
    """CLW → TSW: the best compound move found for one task."""

    clw_index: int
    round_id: int
    #: Swapped cell pairs of the best prefix, in application order.
    pairs: Tuple[Tuple[int, int], ...]
    cost_before: float
    cost_after: float
    trials: int
    interrupted: bool
    #: Cost after each prefix step, aligned with ``pairs`` — the per-step
    #: trajectory of the compound move, so the TSW can reconstruct the
    #: intermediate costs instead of stamping every step with the final one.
    step_costs: Tuple[float, ...] = ()
    #: Set when the CLW could not apply a delta task (base-version mismatch):
    #: the result carries no move and the TSW must re-send the task in full.
    needs_full: bool = False
    #: How the task solution was adopted: ``-1`` full install, otherwise the
    #: number of delta swaps applied (0 = unchanged solution, install
    #: skipped).  Observability for tests and the protocol-overhead bench.
    adopt_swaps: int = -1


@dataclass
class TswResult:
    """TSW → master: outcome of one global iteration."""

    tsw_index: int
    global_iteration: int
    #: Best solution found this round: a raw array (legacy) or a
    #: :class:`~repro.parallel.delta.SolutionPayload` whose delta form applies
    #: to the master's broadcast of the same global iteration (which the
    #: master retains, so no mismatch is possible on this hop).
    best_solution: Union[np.ndarray, SolutionPayload]
    best_cost: float
    local_iterations_done: int
    interrupted: bool
    evaluations: int
    tabu_payload: tuple = ()
    #: Set when the TSW could not apply a delta broadcast (base-version
    #: mismatch): the result carries no solution and the master re-sends the
    #: :class:`GlobalStart` in full to this TSW.
    needs_full: bool = False
    #: (virtual time, best cost so far) recorded after every local iteration
    #: of this global round.  The master merges these per-worker traces into
    #: the fine-grained best-cost-versus-time series the speedup experiments
    #: use (the paper measures "time to hit an x-quality solution" over the
    #: whole run, not only at global synchronisation points).
    trace: Tuple[Tuple[float, float], ...] = ()


@dataclass
class ClwSummary:
    """Return value of a CLW process (per-worker statistics)."""

    clw_index: int
    tasks_done: int
    trials: int
    interruptions: int


@dataclass
class TswSummary:
    """Return value of a TSW process (per-worker statistics)."""

    tsw_index: int
    global_iterations_done: int
    local_iterations_done: int
    interruptions: int
    best_cost: float
    evaluations: int


# --------------------------------------------------------------------------- #
# Session / pool extensions (PR 7)
# --------------------------------------------------------------------------- #


@dataclass
class ClwWorkerState:
    """Full serializable run state of one CLW, harvested for a checkpoint.

    ``evaluator_state`` is the pickled backend-specific
    ``evaluator.save_state()`` blob: delta-adopted and fully-installed
    solutions agree only to float tolerance (incremental cost accumulation),
    so bit-identical resumption must restore the evaluator's exact internal
    state rather than re-install the assignment.
    """

    clw_index: int
    rng_state: Dict[str, Any]
    assignment: np.ndarray
    evaluator_state: bytes
    evaluations: int
    resident_version: int
    tasks_done: int
    trials: int
    interruptions: int


@dataclass
class TswWorkerState:
    """Full serializable run state of one TSW (including its CLWs)."""

    tsw_index: int
    #: ``TabuSearch.export_state()`` — RNG, tabu list, frequency memory,
    #: iteration counters, best-so-far.
    search_state: Any
    assignment: np.ndarray
    evaluator_state: bytes
    evaluations: int
    resident_version: int
    #: ``DeltaEncoder.export_residents()`` of the TSW→master encoder
    #: (keyed by the literal ``"master"``).
    master_residents: Dict[Any, Tuple[int, np.ndarray]]
    #: ``DeltaEncoder.export_residents()`` of the TSW→CLW encoder
    #: (keyed by ``clw_index`` — stable across respawns).
    clw_residents: Dict[Any, Tuple[int, np.ndarray]]
    round_counter: int
    global_iterations_done: int
    local_iterations_done: int
    interruptions: int
    clw_states: Tuple[ClwWorkerState, ...] = ()


@dataclass
class ClwSetup:
    """Pool → persistent CLW loop: arguments of one ``clw_process`` run."""

    problem: Any
    tabu_params: Any
    cell_range: Any
    clw_index: int
    seed: int
    initial_state: Optional[ClwWorkerState] = None


@dataclass
class TswSetup:
    """Pool → persistent TSW loop: arguments of one ``tsw_process`` run."""

    problem: Any
    params: Any
    tsw_index: int
    tsw_range: Any
    clw_ranges: Tuple[Any, ...]
    seed: int
    initial_state: Optional[TswWorkerState] = None


@dataclass
class SetupAck:
    """Worker loop → parent/pool: setup fully installed (CLWs included).

    The explicit ack closes a simulated-network ordering hazard: a large
    SETUP payload has a size-dependent latency, so a smaller message sent
    later could otherwise overtake it.  The master never sends run traffic
    to a pool worker before its ack arrived.
    """

    worker_name: str
