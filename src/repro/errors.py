"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause while
still being able to distinguish configuration mistakes from runtime protocol
violations in the simulated cluster.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "NetlistError",
    "LayoutError",
    "PlacementError",
    "CostModelError",
    "TabuSearchError",
    "ClusterError",
    "MessageError",
    "ProcessError",
    "SimulationError",
    "ParallelSearchError",
    "ExperimentError",
    "SessionError",
]


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` package."""


class NetlistError(ReproError):
    """Malformed netlist: dangling pins, unknown cells, duplicate names, ..."""


class LayoutError(ReproError):
    """Invalid layout geometry (non-positive rows, too few slots, ...)."""


class PlacementError(ReproError):
    """Invalid placement solution (cell placed twice, slot out of range, ...)."""


class CostModelError(ReproError):
    """Misconfigured cost model (bad goal vector, negative weights, ...)."""


class TabuSearchError(ReproError):
    """Invalid tabu-search configuration or internal state."""


class ClusterError(ReproError):
    """Invalid heterogeneous-cluster specification."""


class MessageError(ReproError):
    """Message-passing protocol violation (unknown task id, bad tag, ...)."""


class ProcessError(ReproError):
    """Error raised by or about a simulated PVM process."""


class SimulationError(ReproError, ValueError):
    """Discrete-event simulator invariant violation (time going backwards, deadlock, ...).

    Also a :class:`ValueError`: fault plans are user-supplied configuration
    (JSON files on the CLI surface), so malformed plans must be catchable by
    callers that only know stdlib exception types.
    """


class ParallelSearchError(ReproError):
    """Error in the master/TSW/CLW parallel search protocol."""


class ExperimentError(ReproError):
    """Invalid experiment or benchmark configuration."""


class SessionError(ReproError):
    """Invalid search-session lifecycle transition or checkpoint artifact."""
