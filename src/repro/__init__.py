"""repro — reproduction of "Parallel Tabu Search in a Heterogeneous Environment".

The package implements, from scratch, everything the IPDPS 2003 paper by
Al-Yamani, Sait, Barada and Youssef builds on:

* a domain-agnostic search core — the ``SwapEvaluator``/``SearchProblem``
  protocols and the problem registry (:mod:`repro.core`) with two registered
  domains, cell placement and QAP (:mod:`repro.problems`),
* a VLSI standard-cell placement substrate with a fuzzy multi-objective cost
  (:mod:`repro.placement`, :mod:`repro.fuzzy`),
* a serial tabu-search engine with compound moves, aspiration and
  diversification (:mod:`repro.tabu`),
* a PVM-like message-passing layer over a simulated heterogeneous cluster
  (:mod:`repro.pvm`),
* the paper's parallel tabu search — master / TSW / CLW processes with
  heterogeneity-aware synchronisation (:mod:`repro.parallel`), and
* the experiment harness that regenerates every figure of the evaluation
  (:mod:`repro.experiments`, driven by the ``benchmarks/`` directory).

Quickstart
----------

>>> from repro import load_benchmark, ParallelSearchParams, run_parallel_search
>>> netlist = load_benchmark("c532")
>>> params = ParallelSearchParams(num_tsws=4, clws_per_tsw=2, global_iterations=4)
>>> result = run_parallel_search(netlist, params)
>>> result.best_cost < result.initial_cost
True
"""

from .core import (
    SearchProblem,
    SwapEvaluator,
    available_domains,
    get_domain,
    register_domain,
)
from .errors import (
    ClusterError,
    CostModelError,
    ExperimentError,
    LayoutError,
    MessageError,
    NetlistError,
    ParallelSearchError,
    PlacementError,
    ProcessError,
    ReproError,
    SessionError,
    SimulationError,
    TabuSearchError,
)
from .metrics import CostTrace, speedup_curve, speedup_to_quality
from .parallel import (
    FaultPolicy,
    ParallelSearchParams,
    ParallelSearchResult,
    PlacementProblem,
    SyncPolicy,
    build_problem,
    classify,
    run_parallel_search,
)
from .placement import (
    CostEvaluator,
    CostModelParams,
    Layout,
    Netlist,
    NetlistBuilder,
    ObjectiveVector,
    Placement,
    load_benchmark,
    paper_benchmarks,
    random_placement,
)
from .session import (
    SearchSession,
    SessionState,
    WorkerPool,
)
from .pvm import (
    ClusterSpec,
    DrainWorker,
    FaultPlan,
    KillWorker,
    MessageFaults,
    SpawnWorker,
    ThrottleMachine,
    ProcessKernel,
    SimKernel,
    ThreadKernel,
    homogeneous_cluster,
    paper_cluster,
)
from .tabu import TabuSearch, TabuSearchParams, TerminationCriteria

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "SwapEvaluator",
    "SearchProblem",
    "get_domain",
    "register_domain",
    "available_domains",
    # errors
    "ReproError",
    "NetlistError",
    "LayoutError",
    "PlacementError",
    "CostModelError",
    "TabuSearchError",
    "ClusterError",
    "MessageError",
    "ProcessError",
    "SimulationError",
    "ParallelSearchError",
    "ExperimentError",
    "SessionError",
    # placement
    "Netlist",
    "NetlistBuilder",
    "Layout",
    "Placement",
    "random_placement",
    "CostEvaluator",
    "CostModelParams",
    "ObjectiveVector",
    "load_benchmark",
    "paper_benchmarks",
    # tabu
    "TabuSearch",
    "TabuSearchParams",
    "TerminationCriteria",
    # pvm
    "ClusterSpec",
    "SimKernel",
    "ThreadKernel",
    "ProcessKernel",
    "paper_cluster",
    "homogeneous_cluster",
    "FaultPlan",
    "KillWorker",
    "SpawnWorker",
    "DrainWorker",
    "ThrottleMachine",
    "MessageFaults",
    # parallel
    "ParallelSearchParams",
    "FaultPolicy",
    "ParallelSearchResult",
    "PlacementProblem",
    "SyncPolicy",
    "build_problem",
    "classify",
    "run_parallel_search",
    # session
    "SearchSession",
    "SessionState",
    "WorkerPool",
    # metrics
    "CostTrace",
    "speedup_curve",
    "speedup_to_quality",
]
