"""Array backend: one device binding with transfer counters and scratch pools.

An :class:`ArrayBackend` is what an evaluator holds instead of a bare module
reference: it knows which device was resolved, exposes the array module as
``xp``, moves arrays across the host↔device boundary through *counted*
transfers (`to_device` / `to_host`), and pools scratch buffers exactly like
PR 6's per-batch-size scratch packs so steady-state evaluation allocates
nothing on either side of the boundary.

On the CPU backend every operation is the identity: ``to_device`` and
``to_host`` return their argument (no copy — the counters prove it), and
scratch buffers are plain ``numpy.empty`` reuses.  That is deliberate: the
NumPy path through the xp-generic kernels must be *exactly* as cheap as the
direct kernels it replaced (the dispatch-tax bar in
``benchmarks/bench_gpu_kernels.py`` enforces ≤ 1.1×).
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

import numpy as np

from ..metrics.trace import TransferStats
from .device import array_module, resolve_device

__all__ = ["ArrayBackend"]


class ArrayBackend:
    """One resolved device plus its array module, counters and scratch pool."""

    #: Distinct scratch keys cached before the pool is dropped wholesale —
    #: the drivers only ever use a handful of batch sizes, so a tiny cache
    #: bounds memory without an eviction policy (mirrors
    #: ``QAPEvaluator._scratch_for``'s behaviour pre-refactor).
    MAX_POOL_KEYS = 8

    def __init__(self, device: Optional[str] = None) -> None:
        self.device = resolve_device(device)
        self.xp = array_module(self.device)
        self._pool: Dict[Tuple, object] = {}
        self._bytes_to_device = 0
        self._bytes_to_host = 0
        self._transfers_to_device = 0
        self._transfers_to_host = 0
        self._transfer_seconds = 0.0

    @property
    def is_cuda(self) -> bool:
        """Whether this backend executes on a CUDA device."""
        return self.device == "cuda"

    # ------------------------------------------------------------------ #
    # counted host <-> device movement
    # ------------------------------------------------------------------ #
    def to_device(self, array: np.ndarray):
        """Upload a host array (identity — zero copies — on the CPU backend)."""
        if not self.is_cuda:
            return array
        return self._timed_upload(array)  # pragma: no cover - cupy only

    def _timed_upload(self, array):  # pragma: no cover - cupy only
        start = time.perf_counter()
        out = self.xp.asarray(array)
        self._transfer_seconds += time.perf_counter() - start
        self._bytes_to_device += int(array.nbytes)
        self._transfers_to_device += 1
        return out

    def to_host(self, array) -> np.ndarray:
        """Download a device array (identity — zero copies — on CPU)."""
        if not self.is_cuda:
            return array
        return self._timed_download(array)  # pragma: no cover - cupy only

    def _timed_download(self, array):  # pragma: no cover - cupy only
        start = time.perf_counter()
        out = self.xp.asnumpy(array)
        self._transfer_seconds += time.perf_counter() - start
        self._bytes_to_host += int(out.nbytes)
        self._transfers_to_host += 1
        return out

    # ------------------------------------------------------------------ #
    # pooled scratch buffers
    # ------------------------------------------------------------------ #
    def scratch(self, key: Tuple, shape: Tuple[int, ...], dtype=np.float64):
        """A reusable uninitialised buffer, cached by ``key``.

        ``key`` must encode everything that determines the buffer's identity
        (a name plus the shape-defining sizes); callers get the *same* buffer
        object back on every call with the same key, so per-iteration work
        allocates nothing once the pool is warm.  On the cuda backend the
        buffers are device arrays — the pool is what keeps per-iteration
        device allocations at zero.
        """
        buffer = self._pool.get(key)
        if buffer is None or buffer.shape != tuple(shape) or buffer.dtype != dtype:
            if len(self._pool) >= self.MAX_POOL_KEYS and key not in self._pool:
                self._pool.clear()
            buffer = self.xp.empty(shape, dtype=dtype)
            self._pool[key] = buffer
        return buffer

    def pool_size(self) -> int:
        """Number of scratch buffers currently pooled."""
        return len(self._pool)

    def drop_scratch(self) -> None:
        """Release every pooled buffer (e.g. before shipping the evaluator)."""
        self._pool.clear()

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def transfer_stats(self) -> TransferStats:
        """Counters of all host↔device traffic since the last reset."""
        return TransferStats(
            bytes_to_device=self._bytes_to_device,
            bytes_to_host=self._bytes_to_host,
            transfers_to_device=self._transfers_to_device,
            transfers_to_host=self._transfers_to_host,
            seconds=self._transfer_seconds,
        )

    def reset_transfer_stats(self) -> None:
        """Zero the transfer counters (per-run accounting)."""
        self._bytes_to_device = 0
        self._bytes_to_host = 0
        self._transfers_to_device = 0
        self._transfers_to_host = 0
        self._transfer_seconds = 0.0
