"""Array-module dispatch layer (``xp`` = numpy | cupy) for the hot kernels.

This package is the single place the reproduction touches an accelerator:
device probing and selection (:mod:`repro.accel.device`), counted
host↔device movement plus pooled scratch buffers
(:mod:`repro.accel.backend`), and the xp-generic hot kernels
(:mod:`repro.accel.kernels`).  Domain packages never import cupy directly —
the import-boundary suite enforces it — they hold an
:class:`ArrayBackend` and pass backend-space arrays into the kernels.

Gating mirrors the numba JIT hooks: cupy is optional, ``REPRO_DEVICE=cpu``
is the escape hatch, an unavailable ``cuda`` only fails when explicitly
requested, and under NumPy the kernels run the identical shipped code the
CUDA path uses (parity is proven in CI without a GPU; only the glue is
device-conditional).
"""

from .backend import ArrayBackend
from .device import (
    HAVE_CUPY,
    DeviceProbe,
    array_module,
    cuda_available,
    cuda_unavailable_reason,
    device_report,
    module_for,
    probe_cuda,
    resolve_device,
)
from .kernels import (
    HpwlArrays,
    fuse_admissible,
    hpwl_batch_deltas,
    masked_argmin,
    qap_swap_deltas,
)

__all__ = [
    "ArrayBackend",
    "HAVE_CUPY",
    "DeviceProbe",
    "array_module",
    "cuda_available",
    "cuda_unavailable_reason",
    "device_report",
    "module_for",
    "probe_cuda",
    "resolve_device",
    "HpwlArrays",
    "fuse_admissible",
    "hpwl_batch_deltas",
    "masked_argmin",
    "qap_swap_deltas",
]
