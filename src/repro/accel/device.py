"""Device probing and array-module selection (``xp`` = numpy | cupy).

The accelerator layer is gated exactly like the numba JIT hooks in
:mod:`repro.placement._kernels`: `CuPy <https://cupy.dev>`__ is an
**optional** dependency — the base environment does not ship it and nothing
here may fail when it is absent.  Selection runs through three levels, most
specific first:

1. an explicit ``device=`` knob on an evaluator / backend constructor;
2. the ``REPRO_DEVICE`` environment variable (``auto`` | ``cpu`` | ``cuda``;
   ``cpu`` is the bisection escape hatch mirroring ``REPRO_JIT=0``);
3. a capability probe: ``cuda`` when cupy imports *and* at least one CUDA
   device answers, ``cpu`` otherwise.

Requesting ``cuda`` explicitly when the probe fails raises
:class:`~repro.errors.ReproError` with the probe's reason — an explicit
request must never silently degrade to the NumPy path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ReproError

__all__ = [
    "HAVE_CUPY",
    "DeviceProbe",
    "cuda_available",
    "cuda_unavailable_reason",
    "probe_cuda",
    "resolve_device",
    "array_module",
    "module_for",
    "device_report",
]

#: Recognised device names (``auto`` resolves through the probe).
_DEVICES = ("auto", "cpu", "cuda")

HAVE_CUPY = False
_cupy = None
try:  # pragma: no cover - exercised only where cupy is installed
    import cupy as _cupy  # type: ignore

    HAVE_CUPY = True
except ImportError:
    pass


@dataclass(frozen=True)
class DeviceProbe:
    """Outcome of the CUDA capability probe (see :func:`probe_cuda`)."""

    available: bool
    #: Why the probe failed ("" when ``available``).
    reason: str
    cupy_version: Optional[str] = None
    driver_version: Optional[str] = None
    runtime_version: Optional[str] = None
    device_count: int = 0
    device_name: Optional[str] = None


_PROBE_CACHE: Optional[DeviceProbe] = None


def probe_cuda(*, refresh: bool = False) -> DeviceProbe:
    """Probe for a usable CUDA device (cached; ``refresh=True`` re-runs it).

    "Usable" means cupy imports *and* the CUDA runtime reports at least one
    device — a cupy wheel installed on a machine without a driver imports
    fine and fails only when the runtime is touched, so the probe touches it
    here, once, instead of letting the first kernel call explode.
    """
    global _PROBE_CACHE
    if _PROBE_CACHE is not None and not refresh:
        return _PROBE_CACHE
    if not HAVE_CUPY:
        probe = DeviceProbe(available=False, reason="cupy is not installed")
    else:  # pragma: no cover - exercised only where cupy is installed
        try:
            count = int(_cupy.cuda.runtime.getDeviceCount())
            if count < 1:
                probe = DeviceProbe(
                    available=False,
                    reason="cupy imports but no CUDA device is visible",
                    cupy_version=_cupy.__version__,
                )
            else:
                try:
                    name = _cupy.cuda.runtime.getDeviceProperties(0)["name"]
                    if isinstance(name, bytes):
                        name = name.decode("utf-8", "replace")
                except Exception:
                    name = None
                probe = DeviceProbe(
                    available=True,
                    reason="",
                    cupy_version=_cupy.__version__,
                    driver_version=_version_or_none(
                        _cupy.cuda.runtime.driverGetVersion
                    ),
                    runtime_version=_version_or_none(
                        _cupy.cuda.runtime.runtimeGetVersion
                    ),
                    device_count=count,
                    device_name=name,
                )
        except Exception as error:  # CUDARuntimeError and friends
            probe = DeviceProbe(
                available=False,
                reason=f"cupy imports but the CUDA runtime failed: {error}",
                cupy_version=_cupy.__version__,
            )
    _PROBE_CACHE = probe
    return probe


def _version_or_none(getter) -> Optional[str]:  # pragma: no cover - cupy only
    try:
        return str(getter())
    except Exception:
        return None


def cuda_available() -> bool:
    """Whether the ``cuda`` device is usable in this process."""
    return probe_cuda().available


def cuda_unavailable_reason() -> str:
    """Human-readable reason the probe failed ("" when cuda is usable)."""
    return probe_cuda().reason


def _env_device() -> str:
    raw = os.environ.get("REPRO_DEVICE", "auto").strip().lower()
    if raw == "":
        return "auto"
    if raw not in _DEVICES:
        raise ReproError(
            f"REPRO_DEVICE must be one of {', '.join(_DEVICES)}, got {raw!r}"
        )
    return raw


def resolve_device(device: Optional[str] = None) -> str:
    """Resolve a device request to ``"cpu"`` or ``"cuda"``.

    ``device`` is the explicit knob (``None`` defers to ``REPRO_DEVICE``,
    which defaults to ``auto``).  An explicit ``cuda`` request — via the
    knob or the environment — raises when the probe fails; ``auto`` falls
    back to ``cpu`` silently (the probe's reason stays queryable through
    :func:`cuda_unavailable_reason`).
    """
    if device is None:
        requested = _env_device()
    else:
        requested = str(device).strip().lower()
        if requested not in _DEVICES:
            raise ReproError(
                f"device must be one of {', '.join(_DEVICES)}, got {device!r}"
            )
    if requested == "cpu":
        return "cpu"
    probe = probe_cuda()
    if probe.available:
        return "cuda"
    if requested == "cuda":
        raise ReproError(
            f"device 'cuda' requested but unavailable: {probe.reason} "
            "(install the gpu extra: pip install .[gpu])"
        )
    return "cpu"


def array_module(device: str):
    """The array module (``numpy`` or ``cupy``) implementing ``device``."""
    if device == "cpu":
        return np
    if device == "cuda":
        if not cuda_available():
            raise ReproError(
                f"device 'cuda' requested but unavailable: {cuda_unavailable_reason()}"
            )
        return _cupy
    raise ReproError(f"unknown device {device!r}; use 'cpu' or 'cuda'")


def module_for(array) -> object:
    """The array module that owns ``array`` (numpy for anything host-side).

    The driver's fused masked-argmin select runs on whatever module produced
    the candidate costs — this is how one shipped kernel serves both paths.
    """
    if HAVE_CUPY and isinstance(array, _cupy.ndarray):  # pragma: no cover - cupy
        return _cupy
    return np


def device_report(device: Optional[str] = None) -> List[Tuple[str, str]]:
    """Probe summary rows for the CLI ``devices`` subcommand (name, value)."""
    probe = probe_cuda()
    rows: List[Tuple[str, str]] = [
        ("numpy", np.__version__),
        ("cupy", probe.cupy_version or "not installed"),
    ]
    if probe.available:  # pragma: no cover - exercised only with a GPU
        rows.extend(
            [
                ("cuda driver", probe.driver_version or "unknown"),
                ("cuda runtime", probe.runtime_version or "unknown"),
                ("devices", str(probe.device_count)),
                ("device 0", probe.device_name or "unknown"),
            ]
        )
    else:
        rows.append(("cuda", f"unavailable ({probe.reason})"))
    rows.append(("REPRO_DEVICE", os.environ.get("REPRO_DEVICE", "<unset>")))
    try:
        selected = resolve_device(device)
        rows.append(("selected device", selected))
        if selected == "cpu" and not probe.available:
            rows.append(("fallback reason", probe.reason))
    except ReproError as error:
        rows.append(("selected device", f"error: {error}"))
    return rows
