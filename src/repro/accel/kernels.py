"""xp-generic hot kernels: written once, executed under numpy *or* cupy.

The three kernels the profile is made of — the QAP batched swap-delta, the
placement batched HPWL delta, and the driver's fused tabu+aspiration
masked-argmin select — live here as functions over an
:class:`~repro.accel.backend.ArrayBackend` plus plain arrays.  The domain
evaluators stage their device-resident state (matrices, incidence,
bbox caches) and call in; under the CPU backend every array *is* the host
array and the operations below are exactly the NumPy pipelines the direct
kernels used — same operations, same order, bit-identical results (the
parity suites in ``tests/accel`` pin this against frozen reference copies).

Two sub-steps are backend-divergent by nature and are isolated behind
explicit seams rather than hidden in the flow:

* the CSR shared-net membership test has a numba-aware CPU twin
  (:func:`repro.placement._kernels.shared_net_mask`, passed in by the
  caller) and a generic ``searchsorted`` path that runs under cupy;
* the segment-reduce fallback for vacated bbox edges relies on
  ``ufunc.reduceat``, which cupy does not implement — those (rare) segments
  are reduced on the host and scattered back, which is why ``moved`` and
  the coordinate arrays stay host-side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from .backend import ArrayBackend
from .device import module_for

__all__ = [
    "masked_argmin",
    "fuse_admissible",
    "qap_swap_deltas",
    "HpwlArrays",
    "hpwl_batch_deltas",
]


# ---------------------------------------------------------------------- #
# the driver's fused tabu+aspiration masked-argmin select
# ---------------------------------------------------------------------- #
def masked_argmin(costs, mask=None) -> int:
    """Index of the lowest cost among ``mask``-admissible candidates.

    With no mask — or with *every* candidate masked out — the overall
    argmin wins: the compound-move builder must always commit something,
    and the driver's move-level tabu check still guards final acceptance.
    Ties break toward the first minimum (``argmin`` semantics), matching
    the reference driver's strict-less scalar loop.  Runs under whichever
    array module produced ``costs``.
    """
    xp = module_for(costs)
    if mask is None or not bool(mask.any()):
        return int(xp.argmin(costs))
    return int(xp.argmin(xp.where(mask, costs, xp.inf)))


def fuse_admissible(tabu_mask, permits):
    """Admissible = not tabu, or tabu-but-aspiring (one fused mask op)."""
    return ~tabu_mask | permits


# ---------------------------------------------------------------------- #
# QAP: batched swap deltas
# ---------------------------------------------------------------------- #
def qap_swap_deltas(
    backend: ArrayBackend,
    flow,
    dist,
    p,
    a,
    b,
    ra,
    rb,
    *,
    symmetric: bool,
    scratch,
):
    """Raw-cost deltas of swapping each ``(a[i], b[i])`` facility pair.

    All array arguments live in ``backend``'s space (``flow``/``dist``/``p``
    device-resident, ``a``/``b``/``ra``/``rb`` the per-call uploads);
    ``scratch`` is four reusable ``(m, n)`` float64 buffers from the
    backend's pool.  The math and reduction order match the direct kernel
    this replaced term-for-term — the symmetric path stages every gather
    through the scratch buffers and mirrors the column sums off the row
    sums, the asymmetric branch materialises its gathers.  Self-pairs get a
    zero delta.  Returns a backend-space array (the caller downloads).
    """
    xp = backend.xp
    buf0, buf1, buf2, buf3 = scratch
    # row sums: sum_k (F[a,k] - F[b,k]) * (D[rb,p(k)] - D[ra,p(k)])
    xp.take(flow, a, axis=0, out=buf0)
    xp.take(flow, b, axis=0, out=buf1)
    xp.subtract(buf0, buf1, out=buf0)                            # flow rows
    xp.take(dist, rb, axis=0, out=buf1)
    xp.take(buf1, p, axis=1, out=buf2)
    xp.take(dist, ra, axis=0, out=buf1)
    xp.take(buf1, p, axis=1, out=buf3)
    xp.subtract(buf2, buf3, out=buf2)                            # dist rows
    row_sum = xp.einsum("ij,ij->i", buf0, buf2)
    if symmetric:
        # F = F^T and D = D^T make the column sums (and their k = a, b
        # corrections below) equal to the row sums term-by-term
        col_sum = row_sum.copy()
    else:
        # column sums: sum_k (F[k,a] - F[k,b]) * (D[p(k),rb] - D[p(k),ra])
        flow_cols = (flow[:, a] - flow[:, b]).T                      # (m, n)
        dist_cols = (dist[xp.ix_(p, rb)] - dist[xp.ix_(p, ra)]).T    # (m, n)
        col_sum = xp.einsum("ij,ij->i", flow_cols, dist_cols)

    # the k = a and k = b terms do not belong in the sums above ...
    f_aa, f_ab = flow[a, a], flow[a, b]
    f_ba, f_bb = flow[b, a], flow[b, b]
    d_aa, d_ab = dist[ra, ra], dist[ra, rb]
    d_ba, d_bb = dist[rb, ra], dist[rb, rb]
    row_sum -= (f_aa - f_ba) * (d_ba - d_aa) + (f_ab - f_bb) * (d_bb - d_ab)
    col_sum -= (f_aa - f_ab) * (d_ab - d_aa) + (f_ba - f_bb) * (d_bb - d_ba)
    # ... they enter exactly once as the four corner terms instead
    corners = (
        f_aa * (d_bb - d_aa)
        + f_bb * (d_aa - d_bb)
        + f_ab * (d_ba - d_ab)
        + f_ba * (d_ab - d_ba)
    )
    deltas = row_sum + col_sum + corners
    deltas[a == b] = 0.0
    return deltas


# ---------------------------------------------------------------------- #
# placement: batched HPWL deltas over the dense-incidence / CSR caches
# ---------------------------------------------------------------------- #
@dataclass
class HpwlArrays:
    """Backend-space view of one :class:`WirelengthState`'s cache arrays.

    Exactly one of ``incidence`` (dense boolean cell×net matrix) and
    ``csr_keys`` (sorted ``cell * num_nets + net`` incidence keys) is set,
    mirroring the state's shared-net detection mode.  On the CPU backend
    every field *is* the live host array; on cuda they are device mirrors
    the state re-syncs after committed swaps.
    """

    num_nets: int
    incidence: Optional[object]
    csr_keys: Optional[object]
    x_min: object
    x_max: object
    y_min: object
    y_max: object
    n_x_min: object
    n_x_max: object
    n_y_min: object
    n_y_max: object
    per_net: object
    net_weights: object


def _shrink_min(xp, cur, support, frm, to):
    """Fast-path new minimum after one pin moves ``frm → to`` (+ fallback mask)."""
    new = xp.minimum(cur, to)
    fallback = (frm == cur) & (support <= 1) & (to > cur)
    return new, fallback


def _shrink_max(xp, cur, support, frm, to):
    """Fast-path new maximum after one pin moves ``frm → to`` (+ fallback mask)."""
    new = xp.maximum(cur, to)
    fallback = (frm == cur) & (support <= 1) & (to < cur)
    return new, fallback


def _shared_net_mask_generic(xp, sorted_keys, query_keys):
    """Membership of each query key in a sorted key array (any backend).

    The same ``searchsorted`` + gather-and-compare pipeline as the NumPy
    twin in :mod:`repro.placement._kernels`; used under cupy, where the
    numba-jitted CPU variant cannot run.
    """
    pos = xp.searchsorted(sorted_keys, query_keys)
    xp.minimum(pos, sorted_keys.size - 1, out=pos)
    return sorted_keys[pos] == query_keys


def hpwl_batch_deltas(
    backend: ArrayBackend,
    arrays: HpwlArrays,
    *,
    num_pairs: int,
    pair: np.ndarray,
    net: np.ndarray,
    other: np.ndarray,
    moved: np.ndarray,
    from_x: np.ndarray,
    from_y: np.ndarray,
    to_x: np.ndarray,
    to_y: np.ndarray,
    active: np.ndarray,
    cts: np.ndarray,
    slot_x: np.ndarray,
    slot_y: np.ndarray,
    gather_members: Callable,
    shared_mask_cpu: Callable,
    bbox_reduce_cpu: Callable,
) -> np.ndarray:
    """Weighted-HPWL deltas of a flat-expanded candidate batch.

    The caller (``WirelengthState.deltas_for_swaps``) has already expanded
    the pairs to flat ``(pair, net)`` items on the host — those index
    arrays are the per-iteration host→device traffic.  Steps here:

    1. neutralise items whose swap partner shares the net (one dense
       incidence gather, or a binary search of the sorted CSR keys);
    2. O(1) bbox-edge updates from the cached edge multiplicities;
    3. host-side segment-reduce for the rare vacated-edge fallbacks
       (``reduceat`` has no cupy equivalent), scattered back;
    4. weighted per-item deltas folded per pair with ``bincount``.

    ``moved``, ``cts``, ``slot_x``, ``slot_y`` stay host-side (fallback
    only).  Returns a *host* float64 array of per-pair deltas.
    """
    xp = backend.xp
    out = np.zeros(num_pairs, dtype=np.float64)
    net_d = backend.to_device(net)
    active_d = backend.to_device(active)

    # --- shared-net / self-swap neutralisation ------------------------- #
    if arrays.incidence is not None:
        active_d &= ~arrays.incidence[backend.to_device(other), net_d]
    else:
        keys = other * np.int64(arrays.num_nets) + net
        if xp is np:
            active_d &= ~shared_mask_cpu(arrays.csr_keys, keys)
        else:  # pragma: no cover - cupy only
            keys_d = backend.to_device(keys)
            active_d &= ~_shared_net_mask_generic(xp, arrays.csr_keys, keys_d)
    if not bool(active_d.any()):
        return out

    from_x_d = backend.to_device(from_x)
    from_y_d = backend.to_device(from_y)
    to_x_d = backend.to_device(to_x)
    to_y_d = backend.to_device(to_y)

    # --- O(1) bbox-edge updates from the cache ------------------------- #
    new_x_min, fb_x_min = _shrink_min(
        xp, arrays.x_min[net_d], arrays.n_x_min[net_d], from_x_d, to_x_d
    )
    new_x_max, fb_x_max = _shrink_max(
        xp, arrays.x_max[net_d], arrays.n_x_max[net_d], from_x_d, to_x_d
    )
    new_y_min, fb_y_min = _shrink_min(
        xp, arrays.y_min[net_d], arrays.n_y_min[net_d], from_y_d, to_y_d
    )
    new_y_max, fb_y_max = _shrink_max(
        xp, arrays.y_max[net_d], arrays.n_y_max[net_d], from_y_d, to_y_d
    )

    # --- segment-reduce fallback for vacated edges --------------------- #
    # inactive items are excluded: their contribution is zeroed below, so
    # re-reducing their members would be pure waste
    fallback = (fb_x_min | fb_x_max | fb_y_min | fb_y_max) & active_d
    if bool(fallback.any()):
        idx = np.flatnonzero(backend.to_host(fallback))
        members, counts = gather_members(net[idx])
        fb_x_lo, fb_x_hi, fb_y_lo, fb_y_hi = bbox_reduce_cpu(
            members, counts, moved[idx], to_x[idx], to_y[idx], cts, slot_x, slot_y
        )
        if xp is np:
            new_x_min[idx] = fb_x_lo
            new_x_max[idx] = fb_x_hi
            new_y_min[idx] = fb_y_lo
            new_y_max[idx] = fb_y_hi
        else:  # pragma: no cover - cupy only
            idx_d = backend.to_device(idx)
            new_x_min[idx_d] = backend.to_device(fb_x_lo)
            new_x_max[idx_d] = backend.to_device(fb_x_hi)
            new_y_min[idx_d] = backend.to_device(fb_y_lo)
            new_y_max[idx_d] = backend.to_device(fb_y_hi)

    # --- weighted per-item deltas, folded per pair --------------------- #
    new_hpwl = (new_x_max - new_x_min) + (new_y_max - new_y_min)
    per_item = arrays.net_weights[net_d] * (new_hpwl - arrays.per_net[net_d])
    per_item *= active_d  # zero the contributions of masked items
    folded = xp.bincount(backend.to_device(pair), weights=per_item, minlength=num_pairs)
    out[:] = backend.to_host(folded)
    return out
