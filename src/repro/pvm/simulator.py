"""Deterministic discrete-event kernel for the simulated heterogeneous cluster.

The kernel plays the role PVM plays in the paper: it places processes on
machines, moves messages between them and — because machines have different
speeds and loads — decides *when* everything happens.  Unlike PVM it runs in
a single OS process and advances a virtual clock, which makes runs
deterministic and lets the experiments measure speedup without fighting the
GIL (see DESIGN.md for the substitution rationale).

Semantics
---------

* Every process has its own clock.  Computation (``Compute``) advances only
  that clock, by ``work_units * seconds_per_work_unit / machine.effective_rate``.
* Messages take ``latency + bytes/bandwidth`` of virtual time; a receive
  completes at ``max(receiver clock, message arrival time)``.
* All state changes are driven by a single global event queue processed in
  time order, so the simulation is causal and reproducible: with the same
  inputs the same schedule is produced every run.
* When the event queue drains while some process is still blocked in a
  receive, the kernel raises :class:`~repro.errors.SimulationError` — a
  deadlock in the master/TSW/CLW protocol is a bug, not something to ignore.

Failure injection
-----------------

A seeded :class:`~repro.pvm.faults.FaultPlan` turns the kernel into a
deterministic failure harness: scheduled node death (``KillWorker``, which
also takes down the victim's descendants and posts ``worker_down`` obituaries
to its parent and any registered death listener), slow-node throttling
(``ThrottleMachine``), and seeded message loss/reordering
(``MessageFaults``).  All faults are ordinary events on the one global queue,
so the same plan reproduces the same failure trajectory bit-for-bit.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ProcessError, SimulationError
from .cluster import ClusterSpec
from .faults import (
    WORKER_ADMIT_TAG,
    WORKER_DOWN_TAG,
    WORKER_DRAIN_TAG,
    AdmitWorkers,
    DrainWorker,
    FaultPlan,
    KillWorker,
    SpawnWorker,
    ThrottleMachine,
    WorkerDown,
)
from .message import Message, estimate_payload_bytes
from .process import (
    Compute,
    GetTime,
    ProcessContext,
    ProcessFunction,
    Receive,
    Send,
    Sleep,
    Spawn,
    Syscall,
)

__all__ = ["ProcessState", "ProcessInfo", "SimStats", "SimKernel"]


class ProcessState(enum.Enum):
    """Lifecycle of a simulated process."""

    READY = "ready"
    BLOCKED = "blocked"
    FINISHED = "finished"
    FAILED = "failed"
    KILLED = "killed"


@dataclass(slots=True)
class _ProcessRecord:
    pid: int
    name: str
    parent: Optional[int]
    machine_index: int
    generator: Any
    context: ProcessContext
    clock: float = 0.0
    state: ProcessState = ProcessState.READY
    mailbox: List[Message] = field(default_factory=list)
    pending_recv: Optional[Receive] = None
    recv_token: int = 0
    result: Any = None
    error: Optional[BaseException] = None
    busy_seconds: float = 0.0
    work_units: float = 0.0
    messages_sent: int = 0
    bytes_sent: int = 0
    finished_at: Optional[float] = None


@dataclass(frozen=True, slots=True)
class ProcessInfo:
    """Read-only view of a process exposed to callers of the kernel."""

    pid: int
    name: str
    parent: Optional[int]
    machine_index: int
    machine_name: str
    state: ProcessState
    clock: float
    busy_seconds: float
    work_units: float
    messages_sent: int
    bytes_sent: int
    result: Any
    finished_at: Optional[float]


@dataclass(frozen=True, slots=True)
class SimStats:
    """Aggregate statistics of one simulation run."""

    virtual_makespan: float
    total_events: int
    total_messages: int
    total_bytes: int
    total_work_units: float
    per_machine_busy: Tuple[float, ...]
    num_processes: int

    def machine_utilisation(self) -> Tuple[float, ...]:
        """Busy fraction of every machine over the makespan."""
        if self.virtual_makespan <= 0:
            return tuple(0.0 for _ in self.per_machine_busy)
        return tuple(b / self.virtual_makespan for b in self.per_machine_busy)


# event kinds, ordered deterministically by (time, sequence number)
_RESUME = "resume"
_DELIVER = "deliver"
_TIMEOUT = "timeout"
_FAULT = "fault"

#: States in which a process no longer runs or receives messages.
_DEAD_STATES = (ProcessState.FINISHED, ProcessState.FAILED, ProcessState.KILLED)


class SimKernel:
    """Discrete-event scheduler for processes on a :class:`ClusterSpec`."""

    def __init__(
        self,
        cluster: ClusterSpec,
        *,
        max_events: int = 20_000_000,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if max_events <= 0:
            raise SimulationError("max_events must be positive")
        self._cluster = cluster
        self._max_events = max_events
        self._events: List[Tuple[float, int, str, Any]] = []
        self._seq = itertools.count()
        self._procs: Dict[int, _ProcessRecord] = {}
        self._next_pid = itertools.count(1)
        self._next_machine = 0
        self._events_processed = 0
        self._now = 0.0
        self._fault_plan = fault_plan
        self._machine_scale: Dict[int, float] = {}
        self._death_listener: Optional[int] = None
        self._fault_rng: Optional[random.Random] = None
        if fault_plan is not None:
            if fault_plan.message_faults is not None:
                self._fault_rng = random.Random(fault_plan.seed)
            for kill in fault_plan.kills:
                self._schedule(kill.at, _FAULT, ("kill", kill))
            for throttle in fault_plan.throttles:
                self._schedule(throttle.at, _FAULT, ("throttle_on", throttle))
                if throttle.until is not None:
                    self._schedule(throttle.until, _FAULT, ("throttle_off", throttle))
            for spawn in fault_plan.spawns:
                self._schedule(spawn.at, _FAULT, ("admit", spawn))
            for drain in fault_plan.drains:
                self._schedule(drain.at, _FAULT, ("drain", drain))

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    @property
    def cluster(self) -> ClusterSpec:
        """The cluster this kernel simulates."""
        return self._cluster

    @property
    def now(self) -> float:
        """Time of the last processed event (the global virtual clock)."""
        return self._now

    def spawn(
        self,
        func: ProcessFunction,
        *args: Any,
        machine_index: Optional[int] = None,
        name: str = "",
        parent: Optional[int] = None,
        start_time: float = 0.0,
        **kwargs: Any,
    ) -> int:
        """Create a root process (before :meth:`run`) and return its pid."""
        return self._create_process(
            func, args, kwargs, machine_index=machine_index, name=name, parent=parent,
            start_time=start_time,
        )

    def run(
        self, *, until: Optional[float] = None, allow_blocked: bool = False
    ) -> SimStats:
        """Process events until completion (or until the virtual time limit).

        ``allow_blocked=True`` suppresses the deadlock check: processes left
        blocked in a receive when the event queue drains are treated as
        *idle*, not deadlocked.  A persistent worker pool uses this — its
        workers park in a blocking receive between runs, and a later
        :meth:`spawn` + :meth:`run` wakes them with new messages.

        Raises
        ------
        SimulationError
            If a deadlock is detected (event queue empty while processes are
            blocked, and ``allow_blocked`` is not set) or the event budget is
            exhausted.
        ProcessError
            If a process body raised; the original exception is chained.
        """
        while self._events:
            time, _, kind, data = heapq.heappop(self._events)
            if until is not None and time > until:
                # push back and stop: the caller asked for a bounded horizon
                heapq.heappush(self._events, (time, next(self._seq), kind, data))
                break
            self._events_processed += 1
            if self._events_processed > self._max_events:
                raise SimulationError(
                    f"event budget exhausted ({self._max_events} events); "
                    "suspected livelock in the process protocol"
                )
            self._now = max(self._now, time)
            if kind == _RESUME:
                pid, value = data
                self._step(pid, value, time)
            elif kind == _DELIVER:
                self._deliver(data, time)
            elif kind == _TIMEOUT:
                pid, token = data
                self._handle_timeout(pid, token, time)
            elif kind == _FAULT:
                self._apply_fault(data, time)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind {kind!r}")

        blocked = [rec for rec in self._procs.values() if rec.state is ProcessState.BLOCKED]
        if blocked and not allow_blocked and (until is None or not self._events):
            names = ", ".join(f"{rec.name or rec.pid}" for rec in blocked)
            raise SimulationError(
                f"deadlock: no more events but {len(blocked)} process(es) still blocked: {names}"
            )
        return self.stats()

    def process_info(self, pid: int) -> ProcessInfo:
        """Read-only view of one process."""
        rec = self._record(pid)
        return ProcessInfo(
            pid=rec.pid,
            name=rec.name,
            parent=rec.parent,
            machine_index=rec.machine_index,
            machine_name=self._cluster.machine(rec.machine_index).name,
            state=rec.state,
            clock=rec.clock,
            busy_seconds=rec.busy_seconds,
            work_units=rec.work_units,
            messages_sent=rec.messages_sent,
            bytes_sent=rec.bytes_sent,
            result=rec.result,
            finished_at=rec.finished_at,
        )

    def result_of(self, pid: int) -> Any:
        """Return value of a finished process."""
        rec = self._record(pid)
        if rec.state is ProcessState.FAILED:
            raise ProcessError(f"process {rec.name or pid} failed") from rec.error
        if rec.state is ProcessState.KILLED:
            raise ProcessError(f"process {rec.name or pid} was killed") from rec.error
        if rec.state is not ProcessState.FINISHED:
            raise ProcessError(f"process {rec.name or pid} has not finished (state={rec.state})")
        return rec.result

    def notify_deaths_to(self, pid: Optional[int]) -> None:
        """Register (or clear) the pid that receives ``worker_down`` notices.

        Obituaries always go to a killed process's parent; a death listener
        additionally hears about *every* kill — a pool master is not the
        parent of the persistent worker loops it drives, but still needs to
        know when one dies mid-run.
        """
        self._death_listener = pid

    def all_processes(self) -> List[ProcessInfo]:
        """Information about every process ever created."""
        return [self.process_info(pid) for pid in sorted(self._procs)]

    def stats(self) -> SimStats:
        """Aggregate statistics of the run so far."""
        per_machine = [0.0] * self._cluster.num_machines
        total_msgs = 0
        total_bytes = 0
        total_work = 0.0
        makespan = 0.0
        for rec in self._procs.values():
            per_machine[rec.machine_index % self._cluster.num_machines] += rec.busy_seconds
            total_msgs += rec.messages_sent
            total_bytes += rec.bytes_sent
            total_work += rec.work_units
            makespan = max(makespan, rec.clock)
        return SimStats(
            virtual_makespan=makespan,
            total_events=self._events_processed,
            total_messages=total_msgs,
            total_bytes=total_bytes,
            total_work_units=total_work,
            per_machine_busy=tuple(per_machine),
            num_processes=len(self._procs),
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _record(self, pid: int) -> _ProcessRecord:
        try:
            return self._procs[pid]
        except KeyError:
            raise ProcessError(f"unknown process id {pid}") from None

    def _schedule(self, time: float, kind: str, data: Any) -> None:
        heapq.heappush(self._events, (time, next(self._seq), kind, data))

    def _assign_machine(self, requested: Optional[int]) -> int:
        if requested is not None:
            if requested < 0:
                raise ProcessError(f"machine_index must be non-negative, got {requested}")
            return requested % self._cluster.num_machines
        index = self._next_machine
        self._next_machine = (self._next_machine + 1) % self._cluster.num_machines
        return index

    def _create_process(
        self,
        func: ProcessFunction,
        args: Tuple[Any, ...],
        kwargs: Dict[str, Any],
        *,
        machine_index: Optional[int],
        name: str,
        parent: Optional[int],
        start_time: float,
    ) -> int:
        pid = next(self._next_pid)
        machine_idx = self._assign_machine(machine_index)
        context = ProcessContext(
            pid=pid,
            parent=parent,
            name=name or f"proc{pid}",
            machine_index=machine_idx,
            machine=self._cluster.machine(machine_idx),
        )
        generator = func(context, *args, **kwargs)
        if not hasattr(generator, "send"):
            raise ProcessError(
                f"process function {getattr(func, '__name__', func)!r} must be a generator "
                "function (its body must use `yield`)"
            )
        rec = _ProcessRecord(
            pid=pid,
            name=context.name,
            parent=parent,
            machine_index=machine_idx,
            generator=generator,
            context=context,
            clock=start_time,
        )
        self._procs[pid] = rec
        self._schedule(start_time, _RESUME, (pid, None))
        return pid

    def _finish(self, rec: _ProcessRecord, result: Any) -> None:
        rec.state = ProcessState.FINISHED
        rec.result = result
        rec.finished_at = rec.clock

    def _fail(self, rec: _ProcessRecord, error: BaseException) -> None:
        rec.state = ProcessState.FAILED
        rec.error = error
        rec.finished_at = rec.clock
        raise ProcessError(
            f"process {rec.name!r} (pid {rec.pid}) raised {type(error).__name__}: {error}"
        ) from error

    def _step(self, pid: int, send_value: Any, at_time: float) -> None:
        """Resume a process and interpret its syscalls until it blocks/ends."""
        rec = self._record(pid)
        if rec.state in _DEAD_STATES:
            return
        rec.state = ProcessState.READY
        rec.clock = max(rec.clock, at_time)
        value = send_value
        while True:
            try:
                syscall = rec.generator.send(value)
            except StopIteration as stop:
                self._finish(rec, stop.value)
                return
            except Exception as error:  # noqa: BLE001 - surfaced as ProcessError
                self._fail(rec, error)
                return
            if not isinstance(syscall, Syscall):
                self._fail(
                    rec,
                    ProcessError(
                        f"process {rec.name!r} yielded {type(syscall).__name__}, expected a Syscall"
                    ),
                )
                return

            if isinstance(syscall, Compute):
                seconds = self._cluster.compute_seconds(rec.machine_index, syscall.work_units)
                scale = self._machine_scale.get(rec.machine_index % self._cluster.num_machines)
                if scale is not None:
                    seconds /= scale
                rec.busy_seconds += seconds
                rec.work_units += syscall.work_units
                rec.clock += seconds
                self._schedule(rec.clock, _RESUME, (pid, None))
                return
            if isinstance(syscall, Sleep):
                rec.clock += syscall.seconds
                self._schedule(rec.clock, _RESUME, (pid, None))
                return
            if isinstance(syscall, GetTime):
                value = rec.clock
                continue
            if isinstance(syscall, Send):
                value = self._do_send(rec, syscall)
                continue
            if isinstance(syscall, Spawn):
                value = self._create_process(
                    syscall.func,
                    syscall.args,
                    syscall.kwargs,
                    machine_index=syscall.machine_index,
                    name=syscall.name,
                    parent=rec.pid,
                    start_time=rec.clock + self._cluster.spawn_overhead,
                )
                continue
            if isinstance(syscall, Receive):
                outcome = self._do_receive(rec, syscall)
                if outcome is _BLOCKED:
                    return
                value = outcome
                continue
            # unreachable for known syscalls
            self._fail(rec, ProcessError(f"unsupported syscall {syscall!r}"))  # pragma: no cover
            return

    # -- send / receive -------------------------------------------------- #
    def _do_send(self, rec: _ProcessRecord, syscall: Send) -> None:
        dst = self._record(syscall.dst)
        if dst.state in _DEAD_STATES:
            # Late messages to finished processes are dropped, mirroring PVM's
            # behaviour of messages to exited tasks.
            return None
        size = estimate_payload_bytes(syscall.payload)
        arrival = rec.clock + self._cluster.transfer_seconds(size)
        faults = self._fault_plan.message_faults if self._fault_plan else None
        if faults is not None and faults.active_at(rec.clock) and syscall.tag not in faults.protect_tags:
            # draws happen in send order, which the single-threaded kernel
            # replays identically: loss/jitter patterns are seed-reproducible
            if faults.loss_probability > 0 and self._fault_rng.random() < faults.loss_probability:
                rec.messages_sent += 1
                rec.bytes_sent += size
                return None
            if faults.delay_jitter > 0:
                arrival += self._fault_rng.random() * faults.delay_jitter
        message = Message(
            src=rec.pid,
            dst=syscall.dst,
            tag=syscall.tag,
            payload=syscall.payload,
            size_bytes=size,
            send_time=rec.clock,
            arrival_time=arrival,
        )
        rec.messages_sent += 1
        rec.bytes_sent += size
        self._schedule(arrival, _DELIVER, message)
        return None

    def _match_mailbox(self, rec: _ProcessRecord, recv: Receive) -> Optional[Message]:
        best_index = -1
        best_arrival = float("inf")
        for index, message in enumerate(rec.mailbox):
            if message.matches(tag=recv.tag, src=recv.src) and message.arrival_time < best_arrival:
                best_index = index
                best_arrival = message.arrival_time
        if best_index < 0:
            return None
        return rec.mailbox.pop(best_index)

    def _do_receive(self, rec: _ProcessRecord, recv: Receive):
        message = self._match_mailbox(rec, recv)
        if message is not None:
            rec.clock = max(rec.clock, message.arrival_time)
            return message
        if not recv.blocking:
            return None
        # block
        rec.state = ProcessState.BLOCKED
        rec.pending_recv = recv
        rec.recv_token += 1
        if recv.timeout is not None:
            self._schedule(rec.clock + recv.timeout, _TIMEOUT, (rec.pid, rec.recv_token))
        return _BLOCKED

    def _deliver(self, message: Message, at_time: float) -> None:
        try:
            dst = self._record(message.dst)
        except ProcessError:
            return  # receiver vanished; drop
        if dst.state in _DEAD_STATES:
            return
        dst.mailbox.append(message)
        if dst.state is ProcessState.BLOCKED and dst.pending_recv is not None:
            if message.matches(tag=dst.pending_recv.tag, src=dst.pending_recv.src):
                recv = dst.pending_recv
                dst.pending_recv = None
                dst.recv_token += 1  # invalidate any pending timeout
                dst.state = ProcessState.READY
                matched = self._match_mailbox(dst, recv)
                resume_at = max(dst.clock, matched.arrival_time if matched else at_time)
                self._schedule(resume_at, _RESUME, (dst.pid, matched))

    def _handle_timeout(self, pid: int, token: int, at_time: float) -> None:
        rec = self._record(pid)
        if rec.state is not ProcessState.BLOCKED or rec.recv_token != token:
            return  # already woken by a message (or finished)
        rec.pending_recv = None
        rec.state = ProcessState.READY
        self._schedule(max(rec.clock, at_time), _RESUME, (pid, None))

    # -- fault injection -------------------------------------------------- #
    def _apply_fault(self, data: Tuple[str, Any], at_time: float) -> None:
        action, spec = data
        if action == "kill":
            self._apply_kill(spec, at_time)
        elif action == "throttle_on":
            machine = spec.machine % self._cluster.num_machines
            self._machine_scale[machine] = spec.factor
        elif action == "throttle_off":
            self._machine_scale.pop(spec.machine % self._cluster.num_machines, None)
        elif action == "admit":
            payload = AdmitWorkers(
                count=spec.count, machine=spec.machine, speed_hint=spec.speed_hint
            )
            self._post_to_listener(WORKER_ADMIT_TAG, payload, at_time)
        elif action == "drain":
            self._post_to_listener(WORKER_DRAIN_TAG, spec, at_time)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown fault action {action!r}")

    def _apply_kill(self, spec: KillWorker, at_time: float) -> None:
        victims = [
            rec
            for rec in self._procs.values()
            if rec.state not in _DEAD_STATES
            and (spec.name is None or rec.name == spec.name)
            and (
                spec.machine is None
                or rec.machine_index == spec.machine % self._cluster.num_machines
            )
        ]
        killed: List[_ProcessRecord] = []
        for rec in victims:
            self._kill_record(rec, at_time, f"killed by fault plan at t={at_time:g}", killed)
            if spec.kill_children:
                for child in self._live_descendants(rec.pid):
                    self._kill_record(
                        child, at_time, f"parent {rec.name!r} killed at t={at_time:g}", killed
                    )
        dead_pids = {rec.pid for rec in killed}
        for rec in killed:
            self._post_obituary(rec, at_time, dead_pids)

    def _live_descendants(self, pid: int) -> List[_ProcessRecord]:
        out: List[_ProcessRecord] = []
        frontier = [pid]
        while frontier:
            parent = frontier.pop()
            for rec in self._procs.values():
                if rec.parent == parent and rec.state not in _DEAD_STATES:
                    out.append(rec)
                    frontier.append(rec.pid)
        return out

    def _kill_record(
        self,
        rec: _ProcessRecord,
        at_time: float,
        reason: str,
        killed: List[_ProcessRecord],
    ) -> None:
        if rec.state in _DEAD_STATES:
            return
        rec.state = ProcessState.KILLED
        rec.error = ProcessError(f"process {rec.name!r} (pid {rec.pid}) {reason}")
        rec.clock = max(rec.clock, at_time)
        rec.finished_at = rec.clock
        rec.mailbox.clear()
        rec.pending_recv = None
        rec.recv_token += 1  # invalidate any pending receive timeout
        killed.append(rec)

    def _post_to_listener(self, tag: str, payload: Any, at_time: float) -> None:
        """Deliver a fault-plan lifecycle request to the death listener.

        Admission and drain requests have no victim process to route from, so
        they only make sense with a registered listener (the fault-tolerant
        master); without one — or once it has exited — they are dropped.
        """
        target = self._death_listener
        if target is None or target not in self._procs:
            return
        if self._procs[target].state in _DEAD_STATES:
            return
        arrival = at_time + self._cluster.message_latency
        self._schedule(
            arrival,
            _DELIVER,
            Message(
                src=0,
                dst=target,
                tag=tag,
                payload=payload,
                size_bytes=estimate_payload_bytes(payload),
                send_time=at_time,
                arrival_time=arrival,
            ),
        )

    def _post_obituary(self, rec: _ProcessRecord, at_time: float, dead_pids: set) -> None:
        targets = []
        if rec.parent is not None:
            targets.append(rec.parent)
        if self._death_listener is not None and self._death_listener not in targets:
            targets.append(self._death_listener)
        payload = WorkerDown(pid=rec.pid, name=rec.name, reason="killed by fault plan")
        for target in targets:
            if target in dead_pids or target not in self._procs:
                continue
            if self._procs[target].state in _DEAD_STATES:
                continue
            size = estimate_payload_bytes(payload)
            arrival = at_time + self._cluster.message_latency
            self._schedule(
                arrival,
                _DELIVER,
                Message(
                    src=rec.pid,
                    dst=target,
                    tag=WORKER_DOWN_TAG,
                    payload=payload,
                    size_bytes=size,
                    send_time=at_time,
                    arrival_time=arrival,
                ),
            )


#: Sentinel returned by ``_do_receive`` when the caller must stop stepping.
_BLOCKED = object()
