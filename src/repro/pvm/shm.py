"""Shared-memory shipment of large immutable objects to worker processes.

The multiprocessing backend originally pickled the whole shared problem
description (e.g. the placement domain's
:class:`~repro.problems.placement.PlacementProblem`) into every spawned
worker — hundreds of kilobytes of netlist CSR structure, coordinate tables
and Python cell/net objects per process, twice per worker-initiated spawn
(once through the router queue, once into the child).  The problem data is
immutable, so this module ships it once instead:

* :class:`SharedArrayPack` copies a set of named NumPy arrays into one
  ``multiprocessing.shared_memory`` block (created by the kernel process,
  unlinked at kernel shutdown);
* :class:`SharedObjectRef` is the picklable stand-in that crosses the process
  boundary: the block name, the array directory, a small ``meta`` payload and
  a module-level ``restore`` function that rebuilds the object *around* the
  attached arrays (zero-copy: the rebuilt object's hot arrays are views into
  the shared block);
* :func:`resolve_shared_refs` swaps refs back into live objects on the worker
  side, caching per block so a TSW and the CLWs it spawns inside the same
  process tree attach at most once per process.

Objects opt in by implementing ``__shm_export__() -> (arrays, meta,
restore)``; anything else passes through spawn untouched.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "SharedArrayPack",
    "SharedObjectRef",
    "export_shared",
    "resolve_shared_refs",
    "substitute_shared_refs",
]


def _attach_block(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without resource-tracker ownership.

    The creator (kernel process) owns the block and unlinks it at shutdown;
    attaching workers must not register it with their own resource tracker or
    the tracker double-unlinks and warns at worker exit.  Python 3.13 grew a
    ``track`` parameter; earlier versions need the unregister workaround.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        # Pre-3.13: attaching registers the block with the resource tracker,
        # which would unlink it again (plus warn) when this worker exits.
        # Suppress the registration for the duration of the attach.
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register

        def _no_register(name_: str, rtype: str) -> None:
            if rtype != "shared_memory":  # pragma: no cover - other resources
                original_register(name_, rtype)

        resource_tracker.register = _no_register
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


@dataclass(frozen=True)
class _ArrayEntry:
    """Directory entry of one array inside a shared block."""

    name: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int


class SharedArrayPack:
    """A set of named immutable NumPy arrays in one shared-memory block."""

    def __init__(self, arrays: Dict[str, np.ndarray]) -> None:
        entries: List[_ArrayEntry] = []
        offset = 0
        prepared: List[Tuple[_ArrayEntry, np.ndarray]] = []
        for name, array in arrays.items():
            contiguous = np.ascontiguousarray(array)
            # 64-byte alignment keeps every view cacheline-aligned
            offset = (offset + 63) // 64 * 64
            entry = _ArrayEntry(
                name=name,
                dtype=contiguous.dtype.str,
                shape=tuple(contiguous.shape),
                offset=offset,
            )
            entries.append(entry)
            prepared.append((entry, contiguous))
            offset += contiguous.nbytes
        self._shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for entry, contiguous in prepared:
            target = np.ndarray(
                contiguous.shape,
                dtype=contiguous.dtype,
                buffer=self._shm.buf,
                offset=entry.offset,
            )
            target[...] = contiguous
        self._entries = tuple(entries)

    @property
    def block_name(self) -> str:
        """OS-level name of the shared block (the wire handle)."""
        return self._shm.name

    @property
    def total_bytes(self) -> int:
        """Size of the shared block in bytes (all arrays + alignment pad).

        The large-instance audit uses this to confirm big problems ship as
        one shared block instead of being pickled per worker.
        """
        return self._shm.size

    @property
    def entries(self) -> Tuple[_ArrayEntry, ...]:
        """Directory of the packed arrays."""
        return self._entries

    def close(self) -> None:
        """Drop this process's mapping (the block itself stays)."""
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the block (creator side, after all workers exited)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


def attach_arrays(
    block_name: str, entries: Tuple[_ArrayEntry, ...]
) -> Tuple[Dict[str, np.ndarray], shared_memory.SharedMemory]:
    """Attach a block and materialise read-only views of its arrays.

    The returned :class:`SharedMemory` object must stay referenced as long as
    the views are in use (the views hold a reference to its buffer, but the
    mapping must be closed explicitly at process exit).
    """
    block = _attach_block(block_name)
    arrays: Dict[str, np.ndarray] = {}
    for entry in entries:
        view = np.ndarray(
            entry.shape, dtype=np.dtype(entry.dtype), buffer=block.buf, offset=entry.offset
        )
        view.flags.writeable = False
        arrays[entry.name] = view
    return arrays, block


@dataclass(frozen=True)
class SharedObjectRef:
    """Picklable stand-in for a shared-memory-backed object.

    ``restore`` names a module-level ``f(arrays, meta) -> object`` by
    ``"module:qualname"`` so the ref itself stays tiny and importable on the
    worker side.
    """

    block_name: str
    entries: Tuple[_ArrayEntry, ...]
    meta: Any
    restore: str


def export_shared(obj: Any) -> Optional[Tuple[SharedObjectRef, SharedArrayPack]]:
    """Export an object to shared memory if it opts in via ``__shm_export__``.

    Returns ``None`` for objects that do not participate.  The caller owns
    the returned pack (it must be unlinked when the workers are gone).
    """
    exporter = getattr(obj, "__shm_export__", None)
    if exporter is None:
        return None
    arrays, meta, restore = exporter()
    pack = SharedArrayPack(arrays)
    ref = SharedObjectRef(
        block_name=pack.block_name, entries=pack.entries, meta=meta, restore=restore
    )
    return ref, pack


# ------------------------------------------------------------------ #
# worker side
# ------------------------------------------------------------------ #
#: Per-process cache: block name → (restored object, attached block).  A TSW
#: worker resolving the problem and then spawning CLWs reuses one attachment.
_RESOLVED: Dict[str, Tuple[Any, shared_memory.SharedMemory]] = {}
#: Reverse map for worker-initiated spawns: id(object) → its ref, so the
#: object is substituted back to the tiny ref instead of re-pickled.
_REVERSE: Dict[int, SharedObjectRef] = {}


def _restore_callable(spec: str):
    module_name, _, qualname = spec.partition(":")
    target = importlib.import_module(module_name)
    for part in qualname.split("."):
        target = getattr(target, part)
    return target


def resolve_shared_refs(values: Tuple[Any, ...]) -> Tuple[Any, ...]:
    """Replace every :class:`SharedObjectRef` in ``values`` with its object."""
    resolved = []
    for value in values:
        if isinstance(value, SharedObjectRef):
            cached = _RESOLVED.get(value.block_name)
            if cached is None:
                arrays, block = attach_arrays(value.block_name, value.entries)
                obj = _restore_callable(value.restore)(arrays, value.meta)
                _RESOLVED[value.block_name] = (obj, block)
                _REVERSE[id(obj)] = value
                cached = (obj, block)
            resolved.append(cached[0])
        else:
            resolved.append(value)
    return tuple(resolved)


def substitute_shared_refs(values: Tuple[Any, ...]) -> Tuple[Any, ...]:
    """Replace known shared objects with their refs (worker-initiated spawns)."""
    return tuple(_REVERSE.get(id(value), value) for value in values)


def close_attachments() -> None:
    """Close every block this process attached (worker exit)."""
    while _RESOLVED:
        _name, (obj, block) = _RESOLVED.popitem()
        _REVERSE.pop(id(obj), None)
        try:
            block.close()
        except Exception:  # noqa: BLE001 - exit-path cleanup is best-effort
            pass
