"""Shared plumbing of the real-execution kernels (threads and processes).

The discrete-event :class:`~repro.pvm.simulator.SimKernel` owns its own event
loop and needs none of this; the two *real* backends —
:class:`~repro.pvm.threads_backend.ThreadKernel` and
:class:`~repro.pvm.process_backend.ProcessKernel` — share everything that is
not "how a worker actually executes": pid allocation, round-robin machine
placement, the record table, result retrieval, and the join semantics.

``join_all`` is written once here because getting it right matters for both
backends: a naive snapshot of the record table misses workers that are
spawned *while* joining (the master spawns TSWs, each TSW spawns CLWs — all
after ``join_all`` was entered), so the loop re-scans until no unfinished
record remains.  The ``timeout`` is one overall deadline for the whole join,
not a per-worker allowance.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..errors import ProcessError
from .cluster import ClusterSpec

__all__ = ["WorkerRecord", "RealKernelBase"]


@dataclass
class WorkerRecord:
    """Book-keeping shared by both real backends for one worker."""

    pid: int
    name: str
    parent: Optional[int]
    machine_index: int
    result: Any = None
    error: Optional[BaseException] = None
    finished: bool = False


class RealKernelBase:
    """Record table, placement, join and result semantics of a real kernel.

    Subclasses implement :meth:`spawn` (how a worker starts) and
    :meth:`_wait_record` (how to wait for one worker, honouring a timeout).
    """

    def __init__(self, cluster: ClusterSpec, *, failure_grace: float = 10.0) -> None:
        if failure_grace < 0:
            raise ProcessError(f"failure_grace must be >= 0, got {failure_grace}")
        self._cluster = cluster
        self._records: Dict[int, WorkerRecord] = {}
        self._next_pid = itertools.count(1)
        self._next_machine = 0
        self._lock = threading.Lock()
        #: Once any worker has finished with an error, how long join_all keeps
        #: waiting for the rest before aborting — a dead worker usually means
        #: the survivors are blocked on messages that will never arrive, and
        #: burning the whole deadline (an hour by default in the runner) just
        #: delays the real diagnosis.
        self.failure_grace = failure_grace
        self._death_listener: Optional[int] = None

    # ------------------------------------------------------------------ #
    # identity / placement
    # ------------------------------------------------------------------ #
    @property
    def cluster(self) -> ClusterSpec:
        """The cluster description this kernel was built for."""
        return self._cluster

    def _allocate(self, machine_index: Optional[int]) -> Tuple[int, int]:
        """Reserve a pid and resolve the machine index (round-robin default)."""
        with self._lock:
            pid = next(self._next_pid)
            if machine_index is None:
                machine_index = self._next_machine
                self._next_machine = (self._next_machine + 1) % self._cluster.num_machines
            machine_index %= self._cluster.num_machines
        return pid, machine_index

    def _register(self, record: WorkerRecord) -> None:
        """Publish a fully-built record (its execution vehicle must be ready)."""
        with self._lock:
            self._records[record.pid] = record

    def _register_and_start(self, record: WorkerRecord, start) -> None:
        """Publish the record, then launch its execution vehicle.

        Registration comes first because the new worker (and its descendants)
        may address this pid — children send to ``ctx.parent`` the moment
        they run.  On launch failure the record is marked finished-with-error
        so join_all never waits on a worker that will never run.
        """
        self._register(record)
        try:
            start()
        except BaseException as error:
            record.error = error
            record.finished = True
            self._mark_unrunnable(record)
            raise

    def _mark_unrunnable(self, record: WorkerRecord) -> None:
        """Backend hook: release waiters attached to a never-started worker."""

    def _record(self, pid: int) -> WorkerRecord:
        try:
            return self._records[pid]
        except KeyError:
            raise ProcessError(f"unknown process id {pid}") from None

    # ------------------------------------------------------------------ #
    # join / results
    # ------------------------------------------------------------------ #
    def _wait_record(self, record: WorkerRecord, timeout: Optional[float]) -> bool:
        """Wait for one worker to finish; return ``False`` on timeout."""
        raise NotImplementedError

    def join(self, pid: int, timeout: Optional[float] = None) -> None:
        """Wait for a process to finish."""
        record = self._record(pid)
        if not self._wait_record(record, timeout):
            raise ProcessError(f"process {record.name!r} did not finish within {timeout} s")

    def notify_deaths_to(self, pid: Optional[int]) -> None:
        """Register (or clear) the pid that receives ``worker_down`` notices.

        The base implementation only records the listener; each backend
        decides how deaths are detected (thread crash, OS process exit).
        """
        with self._lock:
            self._death_listener = pid

    def worker_dead(self, pid: int) -> bool:
        """Whether a worker's execution vehicle is gone (finished or crashed).

        Used by pool repair to find persistent loops that need respawning;
        backends with out-of-band liveness (OS exit codes) override this to
        report hard deaths before any join observes them.
        """
        return self._record(pid).finished

    def child_pids(self, pid: int) -> list:
        """Pids of the direct children of ``pid`` in the spawn tree.

        Pool repair uses this to find the orphaned CLW loops of a dead
        persistent TSW loop (their parent edge survives the parent's death).
        """
        with self._lock:
            return [r.pid for r in self._records.values() if r.parent == pid]

    def join_all(self, timeout: Optional[float] = None) -> None:
        """Wait for every spawned process — including ones spawned meanwhile.

        Workers spawn other workers (master → TSWs → CLWs), so the record
        table grows while we join; the loop re-scans until a pass finds no
        unfinished record.  ``timeout`` is one overall deadline for the whole
        operation, not a per-worker allowance.  If a worker has *failed* and
        the others do not wind down within :attr:`failure_grace` seconds, the
        join aborts with that worker's error instead of waiting out the
        deadline.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        failed: Optional[WorkerRecord] = None
        failure_deadline: Optional[float] = None
        while True:
            with self._lock:
                records = list(self._records.values())
            unfinished = [record for record in records if not record.finished]
            if not unfinished:
                return
            if failed is None:
                failed = next(
                    (r for r in records if r.finished and r.error is not None), None
                )
                if failed is not None:
                    failure_deadline = time.monotonic() + self.failure_grace
            now = time.monotonic()
            if deadline is not None and now >= deadline:
                shown = [f"{r.name!r} (pid {r.pid})" for r in unfinished[:8]]
                if len(unfinished) > len(shown):
                    shown.append(f"+{len(unfinished) - len(shown)} more")
                raise ProcessError(
                    f"join_all deadline of {timeout} s elapsed with "
                    f"{len(unfinished)} process(es) still running: "
                    f"{', '.join(shown)}"
                )
            if failure_deadline is not None and now >= failure_deadline:
                assert failed is not None
                raise ProcessError(
                    f"process {failed.name!r} failed while {len(unfinished)} "
                    f"process(es) were still running; aborting the join"
                ) from failed.error
            # Wait in short slices so newly-failed workers are noticed
            # promptly even while blocked on a long-running one, and poll
            # every other unfinished record so a silently-died worker is
            # detected no matter where it sits in the table.
            slice_end = now + 0.5
            for candidate in (deadline, failure_deadline):
                if candidate is not None:
                    slice_end = min(slice_end, candidate)
            self._wait_record(unfinished[0], max(0.0, slice_end - now))
            for record in unfinished[1:]:
                self._wait_record(record, 0.0)

    def result_of(self, pid: int) -> Any:
        """Return value of a finished process."""
        record = self._record(pid)
        if record.error is not None:
            raise ProcessError(f"process {record.name!r} failed") from record.error
        if not record.finished:
            raise ProcessError(f"process {record.name!r} has not finished")
        return record.result

    def shutdown(self) -> None:
        """Release backend resources (no-op by default; processes override)."""

    def __enter__(self) -> "RealKernelBase":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.shutdown()
