"""Cluster specification: the parallel virtual machine.

A :class:`ClusterSpec` bundles the machines plus the communication and
work-to-time conversion parameters the discrete-event kernel needs.  Helper
constructors build the configurations used by the experiments:

* :func:`paper_cluster` — the testbed of Section 5.4: twelve machines, seven
  high-speed, three medium-speed, two low-speed, with a little per-machine
  background load;
* :func:`homogeneous_cluster` — ``n`` identical machines (the control
  configuration);
* :func:`heterogeneous_cluster` — arbitrary class mix.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence, Tuple

from .._rng import make_rng
from ..errors import ClusterError
from .machine import MachineSpec, SpeedClass

__all__ = [
    "ClusterSpec",
    "paper_cluster",
    "homogeneous_cluster",
    "heterogeneous_cluster",
]


@dataclass(frozen=True, slots=True)
class ClusterSpec:
    """The simulated parallel virtual machine.

    Attributes
    ----------
    machines:
        The workstations enrolled in the virtual machine.
    seconds_per_work_unit:
        Virtual seconds one *work unit* (one swap evaluation) takes on a
        reference machine with ``effective_rate == 1``.
    message_latency:
        Fixed per-message latency in virtual seconds (LAN round-trip half).
    bytes_per_second:
        Network bandwidth used to convert payload sizes to transfer time.
    spawn_overhead:
        Virtual seconds needed to start a child process (PVM ``pvm_spawn``).
    """

    machines: Tuple[MachineSpec, ...]
    seconds_per_work_unit: float = 2e-4
    message_latency: float = 2e-3
    bytes_per_second: float = 1.25e6  # ~10 Mbit/s LAN of the early 2000s
    spawn_overhead: float = 5e-2

    def __post_init__(self) -> None:
        if not self.machines:
            raise ClusterError("a cluster needs at least one machine")
        names = [m.name for m in self.machines]
        if len(set(names)) != len(names):
            raise ClusterError(f"duplicate machine names in cluster: {names}")
        for machine in self.machines:
            rate = machine.effective_rate
            if not math.isfinite(rate) or rate <= 0:
                # A zero/denormal rate would flow into work-unit sizing and
                # produce empty or inverted candidate ranges downstream.
                raise ClusterError(
                    f"machine {machine.name!r}: effective rate must be finite and "
                    f"positive, got {rate} (speed_factor={machine.speed_factor}, "
                    f"load={machine.load})"
                )
        if self.seconds_per_work_unit <= 0:
            raise ClusterError("seconds_per_work_unit must be positive")
        if self.message_latency < 0:
            raise ClusterError("message_latency must be non-negative")
        if self.bytes_per_second <= 0:
            raise ClusterError("bytes_per_second must be positive")
        if self.spawn_overhead < 0:
            raise ClusterError("spawn_overhead must be non-negative")

    @property
    def num_machines(self) -> int:
        """Number of enrolled machines."""
        return len(self.machines)

    def machine(self, index: int) -> MachineSpec:
        """Machine at ``index`` (wraps around, mirroring PVM's round-robin)."""
        return self.machines[index % len(self.machines)]

    def compute_seconds(self, machine_index: int, work_units: float) -> float:
        """Virtual seconds ``work_units`` of computation take on a machine."""
        machine = self.machine(machine_index)
        return work_units * self.seconds_per_work_unit / machine.effective_rate

    def transfer_seconds(self, payload_bytes: int) -> float:
        """Virtual seconds needed to move ``payload_bytes`` across the LAN."""
        return self.message_latency + payload_bytes / self.bytes_per_second

    def speed_summary(self) -> dict:
        """Counts of machines per speed class (for reports)."""
        summary = {cls.value: 0 for cls in SpeedClass}
        for machine in self.machines:
            summary[machine.speed_class.value] += 1
        return summary


def paper_cluster(*, seed: int = 2003, load_jitter: float = 0.15) -> ClusterSpec:
    """The twelve-machine testbed of the paper (7 high / 3 medium / 2 low).

    ``load_jitter`` adds a deterministic pseudo-random background load in
    ``[0, load_jitter]`` to every machine so that even machines of the same
    class differ slightly — the "load heterogeneity" of a real LAN.
    """
    return heterogeneous_cluster(
        num_high=7, num_medium=3, num_low=2, seed=seed, load_jitter=load_jitter
    )


def homogeneous_cluster(
    num_machines: int, *, speed_class: SpeedClass = SpeedClass.HIGH, load: float = 0.0
) -> ClusterSpec:
    """``num_machines`` identical machines (no speed or load heterogeneity)."""
    if num_machines < 1:
        raise ClusterError(f"num_machines must be >= 1, got {num_machines}")
    machines = tuple(
        MachineSpec.of_class(f"{speed_class.value}{i:02d}", speed_class, load=load)
        for i in range(num_machines)
    )
    return ClusterSpec(machines=machines)


def heterogeneous_cluster(
    *,
    num_high: int,
    num_medium: int,
    num_low: int,
    seed: int = 2003,
    load_jitter: float = 0.0,
) -> ClusterSpec:
    """A cluster with the given number of machines per speed class."""
    if num_high < 0 or num_medium < 0 or num_low < 0:
        raise ClusterError("machine counts must be non-negative")
    if num_high + num_medium + num_low < 1:
        raise ClusterError("cluster must contain at least one machine")
    rng = make_rng(seed, "cluster-load")
    machines = []
    for cls, count in (
        (SpeedClass.HIGH, num_high),
        (SpeedClass.MEDIUM, num_medium),
        (SpeedClass.LOW, num_low),
    ):
        for i in range(count):
            load = float(rng.uniform(0.0, load_jitter)) if load_jitter > 0 else 0.0
            machines.append(MachineSpec.of_class(f"{cls.value}{i:02d}", cls, load=load))
    return ClusterSpec(machines=tuple(machines))
