"""Process-side API of the simulated PVM: syscalls and the process context.

Simulated processes are written as Python *generator functions*::

    def worker(ctx: ProcessContext, param):
        yield ctx.compute(120.0)                    # burn 120 work units
        yield ctx.send(ctx.parent, "result", 42)    # asynchronous send
        msg = yield ctx.recv(tag="new_best")        # blocking receive
        return msg.payload                          # process exit value

Every interaction with the outside world is expressed by *yielding a syscall
object* built by the :class:`ProcessContext`; the kernel interprets the
syscall and resumes the generator with the result.  This mirrors how a PVM
program calls ``pvm_send`` / ``pvm_recv``, but lets a deterministic
discrete-event kernel (or a real-thread kernel) supply the semantics.

The context also exposes the process id, the parent id and the machine the
process landed on — the pieces of ``pvm_mytid`` / ``pvm_parent`` the paper's
processes need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from ..errors import ProcessError
from .machine import MachineSpec

__all__ = [
    "Syscall",
    "Compute",
    "Send",
    "Receive",
    "Spawn",
    "GetTime",
    "Sleep",
    "ProcessContext",
    "ProcessFunction",
]

#: Signature of a simulated process body.
ProcessFunction = Callable[..., Any]


class Syscall:
    """Marker base class for everything a process may yield to the kernel."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Compute(Syscall):
    """Consume CPU: advance the process's clock by ``work_units`` of computation.

    One work unit corresponds to one swap evaluation of the tabu search; the
    cluster spec converts it to virtual seconds according to the speed and
    load of the machine the process runs on.
    """

    work_units: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.work_units < 0:
            raise ProcessError(f"work_units must be non-negative, got {self.work_units}")


@dataclass(frozen=True, slots=True)
class Send(Syscall):
    """Asynchronous message send (``pvm_send``)."""

    dst: int
    tag: str
    payload: Any = None


@dataclass(frozen=True, slots=True)
class Receive(Syscall):
    """Receive a message (``pvm_recv`` / ``pvm_nrecv`` / ``pvm_trecv``).

    ``blocking=False`` turns the call into a probe that immediately returns
    ``None`` when no matching message is waiting.  ``timeout`` (virtual
    seconds) makes a blocking receive give up and return ``None``.
    """

    tag: Optional[str] = None
    src: Optional[int] = None
    blocking: bool = True
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout < 0:
            raise ProcessError(f"timeout must be non-negative, got {self.timeout}")


@dataclass(frozen=True, slots=True)
class Spawn(Syscall):
    """Start a child process (``pvm_spawn``); yields the child's process id."""

    func: ProcessFunction
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    machine_index: Optional[int] = None
    name: str = ""


@dataclass(frozen=True, slots=True)
class GetTime(Syscall):
    """Read the process's current virtual time."""


@dataclass(frozen=True, slots=True)
class Sleep(Syscall):
    """Advance the process's clock without doing work (pure waiting)."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ProcessError(f"seconds must be non-negative, got {self.seconds}")


class ProcessContext:
    """Handle given to every simulated process.

    It carries the process identity (pid, parent, machine) and provides
    convenience constructors for all syscalls, so process code reads like a
    message-passing program rather than a pile of dataclass instantiations.
    """

    __slots__ = ("_pid", "_parent", "_name", "_machine_index", "_machine")

    def __init__(
        self,
        pid: int,
        parent: Optional[int],
        name: str,
        machine_index: int,
        machine: MachineSpec,
    ) -> None:
        self._pid = pid
        self._parent = parent
        self._name = name
        self._machine_index = machine_index
        self._machine = machine

    # -- identity ------------------------------------------------------- #
    @property
    def pid(self) -> int:
        """This process's id (``pvm_mytid``)."""
        return self._pid

    @property
    def parent(self) -> Optional[int]:
        """Parent process id (``pvm_parent``), ``None`` for root processes."""
        return self._parent

    @property
    def name(self) -> str:
        """Human-readable process name, e.g. ``"tsw2"``."""
        return self._name

    @property
    def machine_index(self) -> int:
        """Index of the machine this process was placed on."""
        return self._machine_index

    @property
    def machine(self) -> MachineSpec:
        """Specification of the machine this process runs on."""
        return self._machine

    # -- syscall constructors ------------------------------------------- #
    def compute(self, work_units: float, label: str = "") -> Compute:
        """Burn CPU for ``work_units`` of computation."""
        return Compute(work_units=work_units, label=label)

    def send(self, dst: int, tag: str, payload: Any = None) -> Send:
        """Send ``payload`` to process ``dst`` with ``tag`` (asynchronous)."""
        return Send(dst=dst, tag=tag, payload=payload)

    def recv(self, tag: Optional[str] = None, src: Optional[int] = None) -> Receive:
        """Blocking receive of the next message matching ``tag`` / ``src``."""
        return Receive(tag=tag, src=src, blocking=True)

    def recv_timeout(
        self, timeout: float, tag: Optional[str] = None, src: Optional[int] = None
    ) -> Receive:
        """Blocking receive that gives up (returns ``None``) after ``timeout``."""
        return Receive(tag=tag, src=src, blocking=True, timeout=timeout)

    def probe(self, tag: Optional[str] = None, src: Optional[int] = None) -> Receive:
        """Non-blocking receive: returns a message or ``None`` immediately."""
        return Receive(tag=tag, src=src, blocking=False)

    def spawn(
        self,
        func: ProcessFunction,
        *args: Any,
        machine_index: Optional[int] = None,
        name: str = "",
        **kwargs: Any,
    ) -> Spawn:
        """Start a child process running ``func(ctx, *args, **kwargs)``."""
        return Spawn(
            func=func, args=args, kwargs=dict(kwargs), machine_index=machine_index, name=name
        )

    def now(self) -> GetTime:
        """Current virtual time of this process."""
        return GetTime()

    def sleep(self, seconds: float) -> Sleep:
        """Idle for ``seconds`` of virtual time."""
        return Sleep(seconds=seconds)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ProcessContext(pid={self._pid}, name={self._name!r}, "
            f"machine={self._machine.name!r})"
        )
