"""Messages exchanged between simulated processes.

The PVM-style API is tag-based: a receiver can wait for a specific tag (and
optionally a specific sender) or for any message.  Payloads are ordinary
Python objects; their *size* — which determines the simulated transfer time —
is estimated from the payload structure (NumPy arrays dominate in this
application, so the estimate concentrates on them).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

__all__ = ["Message", "estimate_payload_bytes"]


def estimate_payload_bytes(payload: Any) -> int:
    """Rough size, in bytes, of a message payload.

    NumPy arrays count their buffer size; containers are visited recursively;
    everything else contributes a small constant.  The goal is a *consistent*
    cost model for the simulated network, not an exact wire format.
    """
    if payload is None:
        return 8
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes) + 64
    if isinstance(payload, (bytes, bytearray)):
        return len(payload) + 16
    if isinstance(payload, str):
        return len(payload.encode("utf-8")) + 16
    if isinstance(payload, (int, float, bool)):
        return 16
    if isinstance(payload, dict):
        return 32 + sum(
            estimate_payload_bytes(k) + estimate_payload_bytes(v) for k, v in payload.items()
        )
    if isinstance(payload, (list, tuple, set, frozenset)):
        return 32 + sum(estimate_payload_bytes(item) for item in payload)
    # dataclass-like objects: walk their __dict__ / __slots__ when available
    if hasattr(payload, "__dict__"):
        return 32 + sum(estimate_payload_bytes(v) for v in vars(payload).values())
    return max(int(sys.getsizeof(payload)), 32)


@dataclass(frozen=True, slots=True)
class Message:
    """A message in flight or delivered to a mailbox.

    Attributes
    ----------
    src / dst:
        Process ids of the sender and the receiver.
    tag:
        Application-level tag (string), e.g. ``"clw_result"``.
    payload:
        Arbitrary Python object.
    size_bytes:
        Estimated payload size used for the transfer-time model.
    send_time / arrival_time:
        Virtual times at which the message left the sender and becomes
        visible to the receiver.
    """

    src: int
    dst: int
    tag: str
    payload: Any
    size_bytes: int
    send_time: float
    arrival_time: float

    def matches(self, *, tag: Optional[str] = None, src: Optional[int] = None) -> bool:
        """Whether the message satisfies a receive filter."""
        if tag is not None and self.tag != tag:
            return False
        if src is not None and self.src != src:
            return False
        return True
