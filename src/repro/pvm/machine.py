"""Machines of the heterogeneous parallel virtual machine.

The paper runs on a LAN of twelve workstations of three speed classes
(seven fast, three medium, two slow).  A :class:`MachineSpec` captures what
matters to the simulation: a *speed factor* (work units per virtual second,
relative to a reference machine) and a *background load* factor that further
scales the effective rate, modelling the "load heterogeneity" the paper talks
about (other users' jobs on a shared workstation).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..errors import ClusterError

__all__ = ["SpeedClass", "MachineSpec"]


class SpeedClass(enum.Enum):
    """Coarse speed classes used in the paper's testbed description."""

    HIGH = "high"
    MEDIUM = "medium"
    LOW = "low"

    @property
    def default_speed(self) -> float:
        """Default relative speed factor of the class."""
        return {"high": 1.0, "medium": 0.6, "low": 0.35}[self.value]


@dataclass(frozen=True, slots=True)
class MachineSpec:
    """One workstation of the virtual machine.

    Attributes
    ----------
    name:
        Host name, e.g. ``"ws03"``.
    speed_class:
        Coarse class (high / medium / low).
    speed_factor:
        Relative CPU speed; 1.0 is the reference (fast) machine.
    load:
        Background load in ``[0, ∞)``; the effective rate is
        ``speed_factor / (1 + load)``.
    """

    name: str
    speed_class: SpeedClass = SpeedClass.HIGH
    speed_factor: float = 1.0
    load: float = 0.0

    def __post_init__(self) -> None:
        # `not (x > 0)` instead of `x <= 0`: NaN fails both comparisons and
        # must be rejected, not waved through into work-unit sizing.
        if not (self.speed_factor > 0) or not math.isfinite(self.speed_factor):
            raise ClusterError(
                f"machine {self.name!r}: speed_factor must be finite and positive, "
                f"got {self.speed_factor}"
            )
        if not (self.load >= 0) or not math.isfinite(self.load):
            raise ClusterError(
                f"machine {self.name!r}: load must be finite and non-negative, got {self.load}"
            )

    @property
    def effective_rate(self) -> float:
        """Work units per virtual second this machine actually delivers."""
        return self.speed_factor / (1.0 + self.load)

    @classmethod
    def of_class(cls, name: str, speed_class: SpeedClass, *, load: float = 0.0) -> "MachineSpec":
        """Build a machine with the default speed of its class."""
        return cls(
            name=name,
            speed_class=speed_class,
            speed_factor=speed_class.default_speed,
            load=load,
        )
