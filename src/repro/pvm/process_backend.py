"""Real-OS-process execution backend: true multi-core parallelism.

The :class:`ProcessKernel` runs the *same* generator-based master/TSW/CLW
process code as the simulator and the thread backend, but on real OS
processes created with the ``multiprocessing`` *spawn* context — so the
batched numpy work inside every worker runs on its own core, outside the
GIL.  This is the backend that turns the paper's claim into measurable
wall-clock speedup (see ``benchmarks/bench_wallclock_parallel.py``).

Execution model
---------------

* The kernel lives in the launching process.  Every worker is one OS
  process; it receives its immutable start-up state (identity, machine spec,
  process function and arguments — including the shared, immutable
  :class:`~repro.core.protocols.SearchProblem` instance) when it is spawned and
  never again: steady-state messages carry only solutions.  (A
  worker-initiated spawn serialises the arguments twice — once through the
  router queue, once into the child — which is negligible next to the
  child's interpreter boot.)
* Each worker owns one ``multiprocessing`` inbox queue.  ``Receive`` pops
  from it with the same tag/src filtering as the other backends (messages
  that do not match are buffered locally, preserving arrival order).
* ``Send``, ``Spawn`` and process exit are *requests* shipped to a single
  router queue that a thread in the kernel process drains: sends are
  delivered to the destination inbox, spawns create a new OS process and the
  child pid is returned to the requester over a private pipe, exits record
  the worker's result.
* ``Compute`` throttles: the driver measures the real time the process body
  spent computing since it was last resumed and sleeps it longer by the
  machine's slowdown factor ``1 / effective_rate - 1`` from the
  :class:`~repro.pvm.cluster.ClusterSpec` — a machine of speed 0.5 takes
  twice the reference wall-clock time, emulating the paper's heterogeneous
  LAN on homogeneous hardware.  On the reference machines (rate 1.0, e.g.
  every machine of ``homogeneous_cluster``) it is a no-op.
* ``GetTime`` returns wall-clock seconds since the kernel was created,
  measured against a ``time.time()`` epoch shared with every worker (the
  monotonic clock is not guaranteed comparable across processes).

Everything that crosses a process boundary — :class:`Message` envelopes,
protocol payloads, syscalls, process functions (by module reference),
results — must pickle; ``tests/parallel/test_backend_parity.py`` locks this
in for the whole protocol.
"""

from __future__ import annotations

import inspect
import pickle
import queue as queue_module
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

import multiprocessing
from multiprocessing.connection import Connection

from ..errors import ProcessError
from .cluster import ClusterSpec
from .faults import WORKER_DOWN_TAG, WorkerDown
from .kernel_base import RealKernelBase, WorkerRecord
from .machine import MachineSpec
from .message import Message, estimate_payload_bytes
from .process import (
    Compute,
    GetTime,
    ProcessContext,
    ProcessFunction,
    Receive,
    Send,
    Sleep,
    Spawn,
    Syscall,
)
from .shm import (
    SharedArrayPack,
    SharedObjectRef,
    close_attachments,
    export_shared,
    resolve_shared_refs,
    substitute_shared_refs,
)

__all__ = ["ProcessKernel"]


# --------------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _WorkerBootstrap:
    """Everything a worker process needs, pickled once at spawn time."""

    pid: int
    name: str
    parent: Optional[int]
    machine_index: int
    machine: MachineSpec
    epoch: float
    func: ProcessFunction
    args: Tuple[Any, ...]
    kwargs: Dict[str, Any]
    #: The parent's inbox queue, inherited at spawn so child→parent messages
    #: (the per-iteration CLW results and TSW reports) skip the router hop
    #: entirely and land in the parent's mailbox with one queue operation.
    parent_inbox: Any = None


class _QueueMailbox:
    """Tag/source-filtered view of one worker's multiprocessing inbox.

    Messages popped from the queue that do not match the current filter are
    buffered locally in arrival order and served to later receives, mirroring
    the mailbox semantics of the simulator and the thread backend.
    """

    def __init__(self, inbox: Any) -> None:
        self._inbox = inbox
        self._buffer: List[Message] = []

    def _scan(self, tag: Optional[str], src: Optional[int]) -> Optional[Message]:
        for index, message in enumerate(self._buffer):
            if message.matches(tag=tag, src=src):
                return self._buffer.pop(index)
        return None

    def _drain_nowait(self) -> None:
        while True:
            try:
                self._buffer.append(self._inbox.get_nowait())
            except queue_module.Empty:
                return

    def get(
        self, *, tag: Optional[str], src: Optional[int], blocking: bool, timeout: Optional[float]
    ) -> Optional[Message]:
        found = self._scan(tag, src)
        if found is not None:
            return found
        if not blocking:
            self._drain_nowait()
            return self._scan(tag, src)
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            wait_for = 1.0
            if deadline is not None:
                wait_for = deadline - time.monotonic()
                if wait_for <= 0:
                    return None
                wait_for = min(wait_for, 1.0)
            try:
                self._buffer.append(self._inbox.get(timeout=wait_for))
            except queue_module.Empty:
                continue
            found = self._scan(tag, src)
            if found is not None:
                return found


def _ensure_picklable(value: Any) -> Tuple[Any, Optional[BaseException]]:
    """Pass ``value`` through if it pickles, else substitute a ProcessError."""
    try:
        pickle.dumps(value)
        return value, None
    except Exception:  # noqa: BLE001 - any pickling failure degrades the same way
        return None, ProcessError(f"unpicklable value could not cross processes: {value!r}")


class _WorkerRuntime:
    """Syscall interpreter running inside one worker OS process."""

    def __init__(
        self, bootstrap: _WorkerBootstrap, router: Any, inbox: Any, control: Connection
    ) -> None:
        self._bootstrap = bootstrap
        self._router = router
        self._mailbox = _QueueMailbox(inbox)
        self._control = control
        # extra wall-clock seconds slept per second of real compute
        self._slowdown = max(0.0, 1.0 / bootstrap.machine.effective_rate - 1.0)

    @property
    def _now(self) -> float:
        return time.time() - self._bootstrap.epoch

    def run(self) -> None:
        bootstrap = self._bootstrap
        context = ProcessContext(
            pid=bootstrap.pid,
            parent=bootstrap.parent,
            name=bootstrap.name,
            machine_index=bootstrap.machine_index,
            machine=bootstrap.machine,
        )
        result: Any = None
        error: Optional[BaseException] = None
        try:
            # shared-memory handles arrive in place of large immutable
            # arguments (e.g. the shared SearchProblem); attach and rebuild
            args = resolve_shared_refs(bootstrap.args)
            generator = bootstrap.func(context, *args, **bootstrap.kwargs)
            if not hasattr(generator, "send"):
                raise ProcessError(
                    f"process function {getattr(bootstrap.func, '__name__', bootstrap.func)!r} "
                    "must be a generator function"
                )
            value: Any = None
            resumed_at = time.perf_counter()
            while True:
                try:
                    syscall = generator.send(value)
                except StopIteration as stop:
                    result = stop.value
                    break
                computed = time.perf_counter() - resumed_at
                value = self._handle(syscall, computed)
                resumed_at = time.perf_counter()
        except BaseException as exc:  # noqa: BLE001 - shipped to the kernel process
            error = exc
        if error is None:
            result, error = _ensure_picklable(result)
        else:
            error, degraded = _ensure_picklable(error)
            error = error if degraded is None else degraded
        self._router.put(("exit", bootstrap.pid, result, error))
        close_attachments()

    def _handle(self, syscall: Syscall, computed_seconds: float) -> Any:
        if isinstance(syscall, Compute):
            # The real computation already ran at full host speed; emulate the
            # assigned machine by sleeping the slowdown surplus.
            if self._slowdown > 0.0 and computed_seconds > 0.0:
                time.sleep(computed_seconds * self._slowdown)
            return None
        if isinstance(syscall, Sleep):
            time.sleep(syscall.seconds)
            return None
        if isinstance(syscall, GetTime):
            return self._now
        if isinstance(syscall, Send):
            now = self._now
            message = Message(
                src=self._bootstrap.pid,
                dst=syscall.dst,
                tag=syscall.tag,
                payload=syscall.payload,
                size_bytes=estimate_payload_bytes(syscall.payload),
                send_time=now,
                arrival_time=now,
            )
            if (
                self._bootstrap.parent_inbox is not None
                and syscall.dst == self._bootstrap.parent
            ):
                # fast path: the hot upward messages go straight into the
                # parent's mailbox (one queue hop instead of two + a router
                # thread wake-up)
                self._bootstrap.parent_inbox.put(message)
            else:
                self._router.put(("send", message))
            return None
        if isinstance(syscall, Receive):
            return self._mailbox.get(
                tag=syscall.tag,
                src=syscall.src,
                blocking=syscall.blocking,
                timeout=syscall.timeout,
            )
        if isinstance(syscall, Spawn):
            # a shared-memory-backed argument (the problem a TSW hands its
            # CLWs) goes back on the wire as its tiny ref, not a re-pickle
            syscall = replace(syscall, args=substitute_shared_refs(syscall.args))
            self._router.put(("spawn", self._bootstrap.pid, syscall))
            kind, payload = self._control.recv()
            if kind != "spawned":
                raise ProcessError(f"spawn failed in kernel process: {payload}")
            return payload
        raise ProcessError(f"unsupported syscall {syscall!r}")


def _worker_main(
    bootstrap: _WorkerBootstrap, router: Any, inbox: Any, control: Connection
) -> None:
    """Entry point of every worker OS process."""
    _WorkerRuntime(bootstrap, router, inbox, control).run()


# --------------------------------------------------------------------------- #
# kernel side
# --------------------------------------------------------------------------- #
@dataclass
class _ProcessRecord(WorkerRecord):
    process: Optional[multiprocessing.process.BaseProcess] = None
    inbox: Any = None
    control: Optional[Connection] = None  # kernel-side end of the spawn-reply pipe
    done: threading.Event = field(default_factory=threading.Event)
    #: When a hard death (process exited, no exit message) was first seen.
    #: Persists across _wait_record calls so the report grace accumulates
    #: even under join_all's short wait slices.
    death_detected_at: Optional[float] = None


class ProcessKernel(RealKernelBase):
    """Run generator-based processes on real OS processes (wall-clock time).

    Shares spawn/join/result semantics with
    :class:`~repro.pvm.threads_backend.ThreadKernel` through
    :class:`~repro.pvm.kernel_base.RealKernelBase`.  Call :meth:`shutdown`
    (or use the kernel as a context manager) when done so the router thread
    and any straggler processes are reaped.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        *,
        start_method: str = "spawn",
        failure_grace: float = 10.0,
        death_report_grace: float = 10.0,
        death_notify_grace: float = 0.5,
    ) -> None:
        super().__init__(cluster, failure_grace=failure_grace)
        #: How long a dead (exited) process gets to have its final exit
        #: message drained by the router before being declared
        #: dead-without-reporting.  The clock persists on the record, so
        #: short join_all wait slices still accumulate toward it.
        self.death_report_grace = death_report_grace
        #: How long the death monitor waits after spotting an exit code
        #: before posting a ``worker_down`` notice — long enough for the
        #: router to drain a *clean* exit message, short enough that the
        #: master learns of a crash well before any round deadline.
        self.death_notify_grace = death_notify_grace
        self._mp = multiprocessing.get_context(start_method)
        self._epoch = time.time()
        self._router_queue = self._mp.Queue()
        self._closed = False
        self._monitor_thread: Optional[threading.Thread] = None
        # shared-memory exports: id(object) -> (object, ref) — the object is
        # kept referenced so its id cannot be recycled — plus packs to unlink
        self._shm_refs: Dict[int, Tuple[Any, SharedObjectRef]] = {}
        self._shm_packs: List[SharedArrayPack] = []
        self._router_thread = threading.Thread(
            target=self._route, name="pvm-router", daemon=True
        )
        self._router_thread.start()

    @property
    def now(self) -> float:
        """Wall-clock seconds since the kernel was created."""
        return time.time() - self._epoch

    # ------------------------------------------------------------------ #
    def spawn(
        self,
        func: ProcessFunction,
        *args: Any,
        machine_index: Optional[int] = None,
        name: str = "",
        parent: Optional[int] = None,
        **kwargs: Any,
    ) -> int:
        """Start a process in its own OS process and return its pid."""
        if self._closed:
            raise ProcessError("kernel has been shut down")
        if not inspect.isgeneratorfunction(func):
            raise ProcessError(
                f"process function {getattr(func, '__name__', func)!r} must be a generator function"
            )
        pid, machine_index = self._allocate(machine_index)
        args = self._share_large_args(args)
        record = _ProcessRecord(
            pid=pid, name=name or f"proc{pid}", parent=parent, machine_index=machine_index
        )
        record.inbox = self._mp.Queue()
        kernel_conn, worker_conn = self._mp.Pipe()
        record.control = kernel_conn
        parent_inbox = None
        if parent is not None:
            try:
                parent_record = self._record(parent)
            except ProcessError:
                parent_record = None
            if isinstance(parent_record, _ProcessRecord):
                parent_inbox = parent_record.inbox
        bootstrap = _WorkerBootstrap(
            pid=pid,
            name=record.name,
            parent=parent,
            machine_index=machine_index,
            machine=self._cluster.machine(machine_index),
            epoch=self._epoch,
            func=func,
            args=args,
            kwargs=dict(kwargs),
            parent_inbox=parent_inbox,
        )
        process = self._mp.Process(
            target=_worker_main,
            args=(bootstrap, self._router_queue, record.inbox, worker_conn),
            name=record.name,
            daemon=True,
        )
        record.process = process
        # _wait_record distinguishes the registered-but-not-started window
        # from a hard death via Process.exitcode (None until the process has
        # started and exited).
        self._register_and_start(record, process.start)
        worker_conn.close()  # the worker holds its own handle now
        return pid

    def post(self, dst: int, tag: str, payload: Any = None) -> None:
        """Inject a message into a worker's inbox from outside any process.

        The driver-side control channel of the session layer: a cancel
        request reaches a running master exactly like a peer's send would
        (``src=0`` — no real process ever holds pid 0).  Messages to a
        finished worker are dropped, mirroring send semantics.
        """
        record = self._record(dst)
        assert isinstance(record, _ProcessRecord)
        if record.finished or record.inbox is None:
            return
        now = self.now
        record.inbox.put(
            Message(
                src=0,
                dst=dst,
                tag=tag,
                payload=payload,
                size_bytes=estimate_payload_bytes(payload),
                send_time=now,
                arrival_time=now,
            )
        )

    def _share_large_args(self, args: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """Replace shm-exportable arguments with shared-memory refs.

        Each distinct object is exported once per kernel; every spawn after
        the first ships the same tiny handle.  Worker-initiated spawns arrive
        with refs already substituted by the worker runtime and pass through
        untouched.
        """
        shared = []
        for value in args:
            if isinstance(value, SharedObjectRef) or not hasattr(value, "__shm_export__"):
                shared.append(value)
                continue
            # check-then-export under the lock: the user thread and the
            # router thread (worker-initiated spawns) may race on the same
            # object, and a double export would duplicate the shared block
            with self._lock:
                entry = self._shm_refs.get(id(value))
                if entry is None:
                    exported = export_shared(value)
                    if exported is None:  # pragma: no cover - checked above
                        shared.append(value)
                        continue
                    ref, pack = exported
                    self._shm_refs[id(value)] = (value, ref)
                    self._shm_packs.append(pack)
                else:
                    ref = entry[1]
            shared.append(ref)
        return tuple(shared)

    def _mark_unrunnable(self, record: WorkerRecord) -> None:
        assert isinstance(record, _ProcessRecord)
        record.done.set()

    def worker_dead(self, pid: int) -> bool:
        """Finished, or the OS process has an exit code (hard death)."""
        record = self._record(pid)
        assert isinstance(record, _ProcessRecord)
        if record.finished:
            return True
        process = record.process
        return process is not None and not process.is_alive() and process.exitcode is not None

    def terminate_worker(self, pid: int) -> bool:
        """Hard-kill one worker OS process (failure injection for tests).

        Returns whether a live process was actually signalled.  The death
        monitor / deadline tracking then observe the death exactly as they
        would a real crash.
        """
        record = self._record(pid)
        assert isinstance(record, _ProcessRecord)
        process = record.process
        if process is None or not process.is_alive():
            return False
        process.terminate()
        return True

    def reap_worker(self, pid: int) -> bool:
        """Finalize the record of a worker whose OS process already exited.

        A hard-dead worker never ships an exit message, so its record would
        otherwise stay unfinished forever and wedge ``join_all`` (e.g. a
        pool ``close`` after a repair).  Returns whether the record is now
        finished.  A genuine exit message that was merely slow through the
        router still overrides the synthesized error.
        """
        record = self._record(pid)
        assert isinstance(record, _ProcessRecord)
        if record.finished:
            return True
        process = record.process
        if process is None or process.is_alive() or process.exitcode is None:
            return False
        process.join(timeout=5.0)
        if record.death_detected_at is None:
            record.death_detected_at = time.monotonic()
        record.error = ProcessError(
            f"process {record.name!r} died without reporting "
            f"(exitcode {process.exitcode})"
        )
        record.finished = True
        record.done.set()
        return True

    def notify_deaths_to(self, pid: Optional[int]) -> None:
        """Register a death listener and start the exit-code monitor."""
        super().notify_deaths_to(pid)
        if pid is not None and self._monitor_thread is None and not self._closed:
            self._monitor_thread = threading.Thread(
                target=self._monitor_deaths, name="pvm-death-monitor", daemon=True
            )
            self._monitor_thread.start()

    def _monitor_deaths(self) -> None:
        """Poll worker exit codes; post ``worker_down`` for hard deaths.

        A clean exit ships an exit message through the router, which marks
        the record finished; the notify grace gives that message time to
        land so normal completions never produce obituaries.
        """
        notified: set = set()
        suspect_since: Dict[int, float] = {}
        while not self._closed:
            with self._lock:
                records = list(self._records.values())
                listener = self._death_listener
            for record in records:
                assert isinstance(record, _ProcessRecord)
                pid = record.pid
                if pid in notified or record.finished:
                    suspect_since.pop(pid, None)
                    continue
                process = record.process
                if process is None or process.is_alive() or process.exitcode is None:
                    suspect_since.pop(pid, None)
                    continue
                now = time.monotonic()
                first_seen = suspect_since.setdefault(pid, now)
                if now - first_seen < self.death_notify_grace:
                    continue
                if record.finished:  # exit message landed during the grace
                    continue
                notified.add(pid)
                payload = WorkerDown(
                    pid=pid,
                    name=record.name,
                    reason=f"process exited (exitcode {process.exitcode})",
                )
                for target in {record.parent, listener}:
                    if target is None or target == pid:
                        continue
                    try:
                        self.post(target, WORKER_DOWN_TAG, payload)
                    except Exception:  # noqa: BLE001 - a closed inbox must not kill the monitor
                        continue
            time.sleep(0.05)

    def _wait_record(self, record: WorkerRecord, timeout: Optional[float]) -> bool:
        assert isinstance(record, _ProcessRecord) and record.process is not None
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if deadline is None:
                wait_for = 0.05
            else:
                # honour a zero/exhausted budget: poll without blocking
                wait_for = min(0.05, max(0.0, deadline - time.monotonic()))
            if record.done.wait(wait_for):
                # Reap the OS process — unless it never started (spawn
                # failure), where join() would assert.
                if record.process.is_alive() or record.process.exitcode is not None:
                    record.process.join(timeout=5.0)
                return True
            if not record.process.is_alive() and record.process.exitcode is not None:
                # Started and exited (exitcode None would mean the spawn is
                # still mid-flight): give the router time to drain a final
                # exit message — on a loaded machine it can lag well behind
                # the worker's death — then record the hard death.
                now = time.monotonic()
                if record.death_detected_at is None:
                    record.death_detected_at = now
                elif now - record.death_detected_at >= self.death_report_grace:
                    record.error = ProcessError(
                        f"process {record.name!r} died without reporting "
                        f"(exitcode {record.process.exitcode})"
                    )
                    record.finished = True
                    record.done.set()
                    return True
            if deadline is not None and time.monotonic() >= deadline:
                return False

    # ------------------------------------------------------------------ #
    def _route(self) -> None:
        """Drain worker requests: deliver sends, perform spawns, record exits."""
        while True:
            try:
                item = self._router_queue.get(timeout=1.0)
            except queue_module.Empty:
                if self._closed:
                    return
                continue
            except (EOFError, OSError):
                return
            except Exception:  # noqa: BLE001 - e.g. a payload that fails to *un*pickle
                if self._closed:
                    return
                continue
            if item is None:
                return
            try:
                self._dispatch(item)
            except Exception:  # noqa: BLE001 - one dead worker must not stop routing
                # e.g. BrokenPipeError replying to a requester that was
                # killed: drop the request, keep serving the other workers.
                continue

    def _dispatch(self, item: Tuple[Any, ...]) -> None:
        kind = item[0]
        if kind == "send":
            _, message = item
            try:
                dst = self._record(message.dst)
            except ProcessError:
                return  # message to a pid this kernel never spawned: drop
            assert isinstance(dst, _ProcessRecord)
            dst.inbox.put(replace(message, arrival_time=self.now))
        elif kind == "spawn":
            _, requester_pid, syscall = item
            requester = self._record(requester_pid)
            assert isinstance(requester, _ProcessRecord) and requester.control is not None
            try:
                child = self.spawn(
                    syscall.func,
                    *syscall.args,
                    machine_index=syscall.machine_index,
                    name=syscall.name,
                    parent=requester_pid,
                    **syscall.kwargs,
                )
                requester.control.send(("spawned", child))
            except Exception as error:  # noqa: BLE001 - reported to the requester
                requester.control.send(("spawn-error", repr(error)))
        elif kind == "exit":
            _, pid, result, error = item
            record = self._record(pid)
            assert isinstance(record, _ProcessRecord)
            if record.finished and record.death_detected_at is None:
                # Already marked by something other than hard-death detection
                # (e.g. a spawn failure): keep the first outcome.
                return
            # A genuine exit message overrides a *synthesized*
            # died-without-reporting error — the router was merely slow to
            # drain it, and the worker's real result is strictly better.
            record.result = result
            record.error = error
            record.finished = True
            record.done.set()

    # ------------------------------------------------------------------ #
    def shutdown(self) -> None:
        """Stop the router thread and reap every worker process."""
        if self._closed:
            return
        self._closed = True
        self._router_queue.put(None)
        self._router_thread.join(timeout=10.0)
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=5.0)
            self._monitor_thread = None
        with self._lock:
            records = list(self._records.values())
        for record in records:
            assert isinstance(record, _ProcessRecord)
            if record.process is not None and record.process.is_alive():
                record.process.terminate()
                record.process.join(timeout=5.0)
            if record.control is not None:
                record.control.close()
            if record.inbox is not None:
                record.inbox.cancel_join_thread()
                record.inbox.close()
        self._router_queue.cancel_join_thread()
        self._router_queue.close()
        for pack in self._shm_packs:
            pack.close()
            pack.unlink()
        self._shm_packs.clear()
        self._shm_refs.clear()
