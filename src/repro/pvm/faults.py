"""Deterministic fault-injection plans for the simulated cluster.

A :class:`FaultPlan` is a *seeded, declarative schedule* of failures — node
death, slow-node throttling, message loss/jitter — that the
:class:`~repro.pvm.simulator.SimKernel` replays as ordinary discrete events.
Because the simulator is single-threaded and every random draw comes from the
plan's own seeded generator, the same plan produces bit-identical failure
trajectories run after run: recovery policies become testable in CI at
cluster scales (and failure rates) the CI box could never host for real.

This module sits in the ``pvm`` layer, below ``repro.parallel``: the payload
of a death notice (:class:`WorkerDown`) and its tag live here so kernels can
emit obituaries without importing the search protocol.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..errors import SimulationError

__all__ = [
    "WORKER_DOWN_TAG",
    "WorkerDown",
    "KillWorker",
    "ThrottleMachine",
    "MessageFaults",
    "FaultPlan",
]

#: Tag of a death notice.  ``repro.parallel.messages.Tags.WORKER_DOWN`` uses
#: the same literal so the two layers agree without importing each other.
WORKER_DOWN_TAG = "worker_down"

#: Tags that message-level faults never touch by default: dropping lifecycle
#: or obituary traffic does not model a lossy network, it wedges the harness.
DEFAULT_PROTECTED_TAGS: Tuple[str, ...] = (
    "stop",
    "pool_shutdown",
    "setup",
    "setup_ack",
    "state_request",
    "state_reply",
    WORKER_DOWN_TAG,
)


@dataclass(frozen=True)
class WorkerDown:
    """Payload of a death notice delivered to a parent or death listener."""

    pid: int
    name: str
    reason: str = ""


def _require_time(label: str, value: float) -> float:
    value = float(value)
    if not math.isfinite(value) or value < 0:
        raise SimulationError(f"{label} must be a finite non-negative time, got {value}")
    return value


@dataclass(frozen=True)
class KillWorker:
    """Kill every live process matching ``name`` / ``machine`` at time ``at``.

    Matching is by exact process name, by machine index, or both; at least
    one selector is required.  ``kill_children`` (default) also kills the
    victim's live descendants — a dead TSW takes its CLWs down with it, the
    way a dead PVM host takes every task it placed.
    """

    at: float
    name: Optional[str] = None
    machine: Optional[int] = None
    kill_children: bool = True

    def __post_init__(self) -> None:
        _require_time("KillWorker.at", self.at)
        if self.name is None and self.machine is None:
            raise SimulationError("KillWorker needs a name and/or machine selector")
        if self.machine is not None and self.machine < 0:
            raise SimulationError(f"KillWorker.machine must be >= 0, got {self.machine}")


@dataclass(frozen=True)
class ThrottleMachine:
    """Scale one machine's effective speed by ``factor`` from ``at`` on.

    ``factor`` multiplies the machine's speed: ``0.25`` makes every compute on
    it take 4x longer (a limplocked node); ``until`` (optional) restores full
    speed at that time.
    """

    at: float
    machine: int
    factor: float
    until: Optional[float] = None

    def __post_init__(self) -> None:
        _require_time("ThrottleMachine.at", self.at)
        if self.machine < 0:
            raise SimulationError(f"ThrottleMachine.machine must be >= 0, got {self.machine}")
        if not math.isfinite(self.factor) or self.factor <= 0:
            raise SimulationError(
                f"ThrottleMachine.factor must be finite and positive, got {self.factor}"
            )
        if self.until is not None:
            _require_time("ThrottleMachine.until", self.until)
            if self.until <= self.at:
                raise SimulationError("ThrottleMachine.until must be after .at")


@dataclass(frozen=True)
class MessageFaults:
    """Seeded message-level faults: independent loss and delivery jitter.

    Applies to sends whose clock falls in ``[start, stop)`` and whose tag is
    not protected.  ``loss_probability`` drops the message outright;
    ``delay_jitter`` adds a uniform ``[0, delay_jitter)`` delay to delivery,
    which reorders messages relative to their send order.
    """

    loss_probability: float = 0.0
    delay_jitter: float = 0.0
    start: float = 0.0
    stop: Optional[float] = None
    protect_tags: Tuple[str, ...] = DEFAULT_PROTECTED_TAGS

    def __post_init__(self) -> None:
        if not (0.0 <= self.loss_probability < 1.0):
            raise SimulationError(
                f"loss_probability must be in [0, 1), got {self.loss_probability}"
            )
        if not math.isfinite(self.delay_jitter) or self.delay_jitter < 0:
            raise SimulationError(f"delay_jitter must be >= 0, got {self.delay_jitter}")
        _require_time("MessageFaults.start", self.start)
        if self.stop is not None:
            _require_time("MessageFaults.stop", self.stop)
            if self.stop <= self.start:
                raise SimulationError("MessageFaults.stop must be after .start")
        object.__setattr__(self, "protect_tags", tuple(self.protect_tags))

    def active_at(self, time: float) -> bool:
        if time < self.start:
            return False
        return self.stop is None or time < self.stop


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded failure schedule for one simulated run."""

    seed: int = 0
    kills: Tuple[KillWorker, ...] = ()
    throttles: Tuple[ThrottleMachine, ...] = ()
    message_faults: Optional[MessageFaults] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "kills", tuple(self.kills))
        object.__setattr__(self, "throttles", tuple(self.throttles))

    @property
    def empty(self) -> bool:
        return not self.kills and not self.throttles and self.message_faults is None

    # -- JSON loading (CLI surface) ------------------------------------- #
    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise SimulationError(f"fault plan must be a JSON object, got {type(data).__name__}")
        known = {"seed", "kills", "throttles", "message_faults"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SimulationError(f"unknown fault-plan keys: {', '.join(unknown)}")
        try:
            kills = tuple(KillWorker(**k) for k in data.get("kills", ()))
            throttles = tuple(ThrottleMachine(**t) for t in data.get("throttles", ()))
            mf = data.get("message_faults")
            message_faults = MessageFaults(**mf) if mf is not None else None
        except TypeError as error:
            raise SimulationError(f"malformed fault plan: {error}") from error
        return cls(
            seed=int(data.get("seed", 0)),
            kills=kills,
            throttles=throttles,
            message_faults=message_faults,
        )

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise SimulationError(f"cannot load fault plan from {path!r}: {error}") from error
        return cls.from_dict(data)
