"""Deterministic fault-injection plans for the simulated cluster.

A :class:`FaultPlan` is a *seeded, declarative schedule* of failures — node
death, slow-node throttling, message loss/jitter — that the
:class:`~repro.pvm.simulator.SimKernel` replays as ordinary discrete events.
Because the simulator is single-threaded and every random draw comes from the
plan's own seeded generator, the same plan produces bit-identical failure
trajectories run after run: recovery policies become testable in CI at
cluster scales (and failure rates) the CI box could never host for real.

This module sits in the ``pvm`` layer, below ``repro.parallel``: the payload
of a death notice (:class:`WorkerDown`) and its tag live here so kernels can
emit obituaries without importing the search protocol.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..errors import SimulationError

__all__ = [
    "WORKER_DOWN_TAG",
    "WORKER_ADMIT_TAG",
    "WORKER_DRAIN_TAG",
    "WorkerDown",
    "AdmitWorkers",
    "KillWorker",
    "SpawnWorker",
    "DrainWorker",
    "ThrottleMachine",
    "MessageFaults",
    "FaultPlan",
]

#: Tag of a death notice.  ``repro.parallel.messages.Tags.WORKER_DOWN`` uses
#: the same literal so the two layers agree without importing each other.
WORKER_DOWN_TAG = "worker_down"

#: Tag of a mid-run admission request (``Tags.ADMIT`` uses the same literal):
#: the kernel (replaying a :class:`SpawnWorker` plan entry) or a driver-side
#: ``WorkerPool.grow`` asks the running master to fold new TSWs into the run.
WORKER_ADMIT_TAG = "worker_admit"

#: Tag of a graceful drain request (``Tags.DRAIN`` uses the same literal):
#: the named worker finishes its current range, then retires without a strike.
WORKER_DRAIN_TAG = "worker_drain"

#: Tags that message-level faults never touch by default: dropping lifecycle
#: or obituary traffic does not model a lossy network, it wedges the harness.
DEFAULT_PROTECTED_TAGS: Tuple[str, ...] = (
    "stop",
    "pool_shutdown",
    "setup",
    "setup_ack",
    "state_request",
    "state_reply",
    WORKER_DOWN_TAG,
    WORKER_ADMIT_TAG,
    WORKER_DRAIN_TAG,
)


@dataclass(frozen=True)
class WorkerDown:
    """Payload of a death notice delivered to a parent or death listener."""

    pid: int
    name: str
    reason: str = ""


@dataclass(frozen=True)
class AdmitWorkers:
    """Payload of a ``worker_admit`` request delivered to a running master.

    Two shapes, by origin:

    * **count-based** (simulated :class:`SpawnWorker` plan entries): the
      master spawns ``count`` fresh TSW subtrees itself, optionally pinned to
      ``machine``, with ``speed_hint`` fed to the health ledger;
    * **pid-based** (``WorkerPool.grow`` on the real backends): the pool
      already spawned persistent worker loops — ``pids`` names them and the
      master SETUP/SETUP_ACK-handshakes them into the run.  ``speed_hints``
      aligns with ``pids`` (``None`` entries mean no hint).
    """

    count: int = 1
    machine: Optional[int] = None
    speed_hint: Optional[float] = None
    pids: Tuple[int, ...] = ()
    speed_hints: Tuple[Optional[float], ...] = ()


def _require_time(label: str, value: float) -> float:
    value = float(value)
    if not math.isfinite(value) or value < 0:
        raise SimulationError(f"{label} must be a finite non-negative time, got {value}")
    return value


@dataclass(frozen=True)
class KillWorker:
    """Kill every live process matching ``name`` / ``machine`` at time ``at``.

    Matching is by exact process name, by machine index, or both; at least
    one selector is required.  ``kill_children`` (default) also kills the
    victim's live descendants — a dead TSW takes its CLWs down with it, the
    way a dead PVM host takes every task it placed.
    """

    at: float
    name: Optional[str] = None
    machine: Optional[int] = None
    kill_children: bool = True

    def __post_init__(self) -> None:
        _require_time("KillWorker.at", self.at)
        if self.name is None and self.machine is None:
            raise SimulationError("KillWorker needs a name and/or machine selector")
        if self.machine is not None and self.machine < 0:
            raise SimulationError(f"KillWorker.machine must be >= 0, got {self.machine}")


@dataclass(frozen=True)
class SpawnWorker:
    """Admit ``count`` fresh TSW workers into the running search at ``at``.

    The kernel delivers a :class:`AdmitWorkers` request to the registered
    fault listener (the fault-tolerant master); the master spawns the new
    subtrees itself, registers them in its health ledger (with
    ``speed_hint``, if given) and folds them into the next range
    re-partition.  Because the request is an ordinary event on the one
    global queue, the grown topology replays bit-identically.
    """

    at: float
    count: int = 1
    machine: Optional[int] = None
    speed_hint: Optional[float] = None

    def __post_init__(self) -> None:
        _require_time("SpawnWorker.at", self.at)
        if int(self.count) < 1:
            raise SimulationError(f"SpawnWorker.count must be >= 1, got {self.count}")
        if self.machine is not None and self.machine < 0:
            raise SimulationError(
                f"SpawnWorker.machine must be >= 0, got {self.machine}"
            )
        if self.speed_hint is not None:
            hint = float(self.speed_hint)
            if not math.isfinite(hint) or hint <= 0:
                raise SimulationError(
                    f"SpawnWorker.speed_hint must be finite and positive, got {self.speed_hint}"
                )


@dataclass(frozen=True)
class DrainWorker:
    """Gracefully retire the worker named ``name`` at time ``at``.

    The master lets the worker finish its current range (it drains at the
    next global-iteration boundary, after the worker's report was folded
    in), re-partitions its range over the remaining workers and stops it —
    without a strike: a drained worker is not a dead worker.
    """

    at: float
    name: str = ""

    def __post_init__(self) -> None:
        _require_time("DrainWorker.at", self.at)
        if not isinstance(self.name, str) or not self.name:
            raise SimulationError("DrainWorker.name must be a non-empty worker name")


@dataclass(frozen=True)
class ThrottleMachine:
    """Scale one machine's effective speed by ``factor`` from ``at`` on.

    ``factor`` multiplies the machine's speed: ``0.25`` makes every compute on
    it take 4x longer (a limplocked node); ``until`` (optional) restores full
    speed at that time.
    """

    at: float
    machine: int
    factor: float
    until: Optional[float] = None

    def __post_init__(self) -> None:
        _require_time("ThrottleMachine.at", self.at)
        if self.machine < 0:
            raise SimulationError(f"ThrottleMachine.machine must be >= 0, got {self.machine}")
        if not math.isfinite(self.factor) or self.factor <= 0:
            raise SimulationError(
                f"ThrottleMachine.factor must be finite and positive, got {self.factor}"
            )
        if self.until is not None:
            _require_time("ThrottleMachine.until", self.until)
            if self.until <= self.at:
                raise SimulationError("ThrottleMachine.until must be after .at")


@dataclass(frozen=True)
class MessageFaults:
    """Seeded message-level faults: independent loss and delivery jitter.

    Applies to sends whose clock falls in ``[start, stop)`` and whose tag is
    not protected.  ``loss_probability`` drops the message outright;
    ``delay_jitter`` adds a uniform ``[0, delay_jitter)`` delay to delivery,
    which reorders messages relative to their send order.
    """

    loss_probability: float = 0.0
    delay_jitter: float = 0.0
    start: float = 0.0
    stop: Optional[float] = None
    protect_tags: Tuple[str, ...] = DEFAULT_PROTECTED_TAGS

    def __post_init__(self) -> None:
        if not (0.0 <= self.loss_probability < 1.0):
            raise SimulationError(
                f"loss_probability must be in [0, 1), got {self.loss_probability}"
            )
        if not math.isfinite(self.delay_jitter) or self.delay_jitter < 0:
            raise SimulationError(f"delay_jitter must be >= 0, got {self.delay_jitter}")
        _require_time("MessageFaults.start", self.start)
        if self.stop is not None:
            _require_time("MessageFaults.stop", self.stop)
            if self.stop <= self.start:
                raise SimulationError("MessageFaults.stop must be after .start")
        object.__setattr__(self, "protect_tags", tuple(self.protect_tags))

    def active_at(self, time: float) -> bool:
        if time < self.start:
            return False
        return self.stop is None or time < self.stop


def _load_entry(label: str, raw: Any, kind: type) -> Any:
    """Construct one plan entry, localizing errors to ``label`` and field."""
    if not isinstance(raw, dict):
        raise SimulationError(
            f"malformed fault plan: {label} must be a JSON object, got {type(raw).__name__}"
        )
    valid = set(getattr(kind, "__dataclass_fields__", {}))
    bogus = sorted(set(raw) - valid)
    if bogus:
        raise SimulationError(
            f"malformed fault plan: {label}: unknown field(s) {', '.join(bogus)} "
            f"(valid: {', '.join(sorted(valid))})"
        )
    try:
        return kind(**raw)
    except (TypeError, SimulationError) as error:
        raise SimulationError(f"malformed fault plan: {label}: {error}") from error


def _load_entries(label: str, raw: Any, kind: type) -> Tuple[Any, ...]:
    if not isinstance(raw, (list, tuple)):
        raise SimulationError(
            f"malformed fault plan: {label} must be a list, got {type(raw).__name__}"
        )
    return tuple(
        _load_entry(f"{label}[{index}]", entry, kind) for index, entry in enumerate(raw)
    )


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded failure schedule for one simulated run."""

    seed: int = 0
    kills: Tuple[KillWorker, ...] = ()
    throttles: Tuple[ThrottleMachine, ...] = ()
    message_faults: Optional[MessageFaults] = None
    spawns: Tuple[SpawnWorker, ...] = ()
    drains: Tuple[DrainWorker, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "kills", tuple(self.kills))
        object.__setattr__(self, "throttles", tuple(self.throttles))
        object.__setattr__(self, "spawns", tuple(self.spawns))
        object.__setattr__(self, "drains", tuple(self.drains))

    @property
    def empty(self) -> bool:
        return (
            not self.kills
            and not self.throttles
            and self.message_faults is None
            and not self.spawns
            and not self.drains
        )

    # -- JSON loading (CLI surface) ------------------------------------- #
    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise SimulationError(f"fault plan must be a JSON object, got {type(data).__name__}")
        known = {"seed", "kills", "throttles", "message_faults", "spawns", "drains"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SimulationError(f"unknown fault-plan keys: {', '.join(unknown)}")
        kills = _load_entries("kills", data.get("kills", ()), KillWorker)
        throttles = _load_entries("throttles", data.get("throttles", ()), ThrottleMachine)
        spawns = _load_entries("spawns", data.get("spawns", ()), SpawnWorker)
        drains = _load_entries("drains", data.get("drains", ()), DrainWorker)
        mf = data.get("message_faults")
        if mf is None:
            message_faults = None
        else:
            message_faults = _load_entry("message_faults", mf, MessageFaults)
        return cls(
            seed=int(data.get("seed", 0)),
            kills=kills,
            throttles=throttles,
            message_faults=message_faults,
            spawns=spawns,
            drains=drains,
        )

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise SimulationError(f"cannot load fault plan from {path!r}: {error}") from error
        return cls.from_dict(data)
