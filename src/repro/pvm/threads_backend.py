"""Real-thread execution backend for the same process code.

The discrete-event kernel (:mod:`repro.pvm.simulator`) is the default backend
for all experiments because it is deterministic and measures virtual time on
a heterogeneous cluster.  The :class:`ThreadKernel` in this module runs the
*same* generator-based process code on real OS threads with real queues and
wall-clock time:

* ``Compute`` / ``Sleep`` are no-ops (the real computation already happened
  inside the process body between yields);
* ``Send`` / ``Receive`` use thread-safe mailboxes;
* ``GetTime`` returns wall-clock seconds since the kernel started.

This backend demonstrates that the parallel-tabu-search protocol is not tied
to the simulator.  Because of the CPython GIL the wall-clock speedups it
produces are *not* meaningful measurements (the repro band for this paper
explicitly flags this) — for true multi-core speedups use the
:class:`~repro.pvm.process_backend.ProcessKernel`, which runs the identical
process code on real OS processes.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, List, Optional

from ..errors import ProcessError
from .cluster import ClusterSpec
from .faults import WORKER_DOWN_TAG, WorkerDown
from .kernel_base import RealKernelBase, WorkerRecord
from .message import Message, estimate_payload_bytes
from .process import (
    Compute,
    GetTime,
    ProcessContext,
    ProcessFunction,
    Receive,
    Send,
    Sleep,
    Spawn,
    Syscall,
)

__all__ = ["ThreadKernel"]


class _Mailbox:
    """Thread-safe tag/source-filtered mailbox."""

    def __init__(self) -> None:
        self._messages: List[Message] = []
        self._condition = threading.Condition()

    def put(self, message: Message) -> None:
        with self._condition:
            self._messages.append(message)
            self._condition.notify_all()

    def get(
        self, *, tag: Optional[str], src: Optional[int], blocking: bool, timeout: Optional[float]
    ) -> Optional[Message]:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            while True:
                for index, message in enumerate(self._messages):
                    if message.matches(tag=tag, src=src):
                        return self._messages.pop(index)
                if not blocking:
                    return None
                wait_for = None
                if deadline is not None:
                    wait_for = deadline - time.monotonic()
                    if wait_for <= 0:
                        return None
                self._condition.wait(wait_for if wait_for is not None else 1.0)


@dataclass
class _ThreadRecord(WorkerRecord):
    thread: Optional[threading.Thread] = None
    mailbox: _Mailbox = field(default_factory=_Mailbox)


class ThreadKernel(RealKernelBase):
    """Run generator-based processes on real threads (wall-clock time)."""

    def __init__(self, cluster: ClusterSpec, *, failure_grace: float = 10.0) -> None:
        super().__init__(cluster, failure_grace=failure_grace)
        self._start_time = time.monotonic()

    @property
    def now(self) -> float:
        """Wall-clock seconds since the kernel was created."""
        return time.monotonic() - self._start_time

    # ------------------------------------------------------------------ #
    def spawn(
        self,
        func: ProcessFunction,
        *args: Any,
        machine_index: Optional[int] = None,
        name: str = "",
        parent: Optional[int] = None,
        **kwargs: Any,
    ) -> int:
        """Start a process in its own thread and return its pid."""
        pid, machine_index = self._allocate(machine_index)
        record = _ThreadRecord(
            pid=pid, name=name or f"proc{pid}", parent=parent, machine_index=machine_index
        )
        context = ProcessContext(
            pid=pid,
            parent=parent,
            name=record.name,
            machine_index=machine_index,
            machine=self._cluster.machine(machine_index),
        )
        generator = func(context, *args, **kwargs)
        if not hasattr(generator, "send"):
            raise ProcessError(
                f"process function {getattr(func, '__name__', func)!r} must be a generator function"
            )
        thread = threading.Thread(
            target=self._drive, args=(record, generator), name=record.name, daemon=True
        )
        record.thread = thread
        # _wait_record tolerates the tiny registered-but-not-started window.
        self._register_and_start(record, thread.start)
        return pid

    def post(self, dst: int, tag: str, payload: Any = None) -> None:
        """Inject a message into a worker's mailbox from outside any process.

        The driver-side control channel of the session layer: a cancel
        request reaches a running master exactly like a peer's send would
        (``src=0`` — no real process ever holds pid 0).  Messages to a
        finished worker are dropped, mirroring send semantics.
        """
        record = self._record(dst)
        assert isinstance(record, _ThreadRecord)
        if record.finished:
            return
        now = self.now
        record.mailbox.put(
            Message(
                src=0,
                dst=dst,
                tag=tag,
                payload=payload,
                size_bytes=estimate_payload_bytes(payload),
                send_time=now,
                arrival_time=now,
            )
        )

    def _wait_record(self, record: WorkerRecord, timeout: Optional[float]) -> bool:
        assert isinstance(record, _ThreadRecord) and record.thread is not None
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            try:
                record.thread.join(remaining)
            except RuntimeError:
                # Registered but not yet started (spawn is mid-flight): a
                # not-started thread cannot be joined — wait the window out.
                if deadline is not None and time.monotonic() >= deadline:
                    return False
                time.sleep(0.005)
                continue
            return not record.thread.is_alive()

    # ------------------------------------------------------------------ #
    def _drive(self, record: _ThreadRecord, generator: Any) -> None:
        value: Any = None
        try:
            while True:
                syscall = generator.send(value)
                value = self._handle(record, syscall)
        except StopIteration as stop:
            record.result = stop.value
            record.finished = True
        except BaseException as error:  # noqa: BLE001 - stored and re-raised on result_of
            record.error = error
            record.finished = True
            self._announce_death(record, f"{type(error).__name__}: {error}")

    def _announce_death(self, record: _ThreadRecord, reason: str) -> None:
        """Post a ``worker_down`` notice to the parent and the death listener.

        Threads cannot die silently — any crash lands in :meth:`_drive`'s
        ``except`` — so the obituary covers everything but a wedged (still
        alive, never progressing) worker; deadline tracking in the master
        covers that case on every backend.
        """
        payload = WorkerDown(pid=record.pid, name=record.name, reason=reason)
        with self._lock:
            listener = self._death_listener
        for target in {record.parent, listener}:
            if target is None:
                continue
            try:
                self.post(target, WORKER_DOWN_TAG, payload)
            except ProcessError:
                continue

    def _handle(self, record: _ThreadRecord, syscall: Syscall) -> Any:
        if isinstance(syscall, (Compute, Sleep)):
            # real computation already happened inside the process body
            return None
        if isinstance(syscall, GetTime):
            return self.now
        if isinstance(syscall, Send):
            dst = self._record(syscall.dst)
            assert isinstance(dst, _ThreadRecord)
            now = self.now
            message = Message(
                src=record.pid,
                dst=syscall.dst,
                tag=syscall.tag,
                payload=syscall.payload,
                size_bytes=estimate_payload_bytes(syscall.payload),
                send_time=now,
                arrival_time=now,
            )
            dst.mailbox.put(message)
            return None
        if isinstance(syscall, Receive):
            return record.mailbox.get(
                tag=syscall.tag,
                src=syscall.src,
                blocking=syscall.blocking,
                timeout=syscall.timeout,
            )
        if isinstance(syscall, Spawn):
            return self.spawn(
                syscall.func,
                *syscall.args,
                machine_index=syscall.machine_index,
                name=syscall.name,
                parent=record.pid,
                **syscall.kwargs,
            )
        raise ProcessError(f"unsupported syscall {syscall!r}")
