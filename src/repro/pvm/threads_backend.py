"""Real-thread execution backend for the same process code.

The discrete-event kernel (:mod:`repro.pvm.simulator`) is the default backend
for all experiments because it is deterministic and measures virtual time on
a heterogeneous cluster.  The :class:`ThreadKernel` in this module runs the
*same* generator-based process code on real OS threads with real queues and
wall-clock time:

* ``Compute`` / ``Sleep`` are no-ops (the real computation already happened
  inside the process body between yields);
* ``Send`` / ``Receive`` use thread-safe mailboxes;
* ``GetTime`` returns wall-clock seconds since the kernel started.

This backend demonstrates that the parallel-tabu-search protocol is not tied
to the simulator.  Because of the CPython GIL the wall-clock speedups it
produces are *not* meaningful measurements (the repro band for this paper
explicitly flags this), which is why every figure benchmark uses the
simulated backend.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import ProcessError
from .cluster import ClusterSpec
from .message import Message, estimate_payload_bytes
from .process import (
    Compute,
    GetTime,
    ProcessContext,
    ProcessFunction,
    Receive,
    Send,
    Sleep,
    Spawn,
    Syscall,
)

__all__ = ["ThreadKernel"]


class _Mailbox:
    """Thread-safe tag/source-filtered mailbox."""

    def __init__(self) -> None:
        self._messages: List[Message] = []
        self._condition = threading.Condition()

    def put(self, message: Message) -> None:
        with self._condition:
            self._messages.append(message)
            self._condition.notify_all()

    def get(
        self, *, tag: Optional[str], src: Optional[int], blocking: bool, timeout: Optional[float]
    ) -> Optional[Message]:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            while True:
                for index, message in enumerate(self._messages):
                    if message.matches(tag=tag, src=src):
                        return self._messages.pop(index)
                if not blocking:
                    return None
                wait_for = None
                if deadline is not None:
                    wait_for = deadline - time.monotonic()
                    if wait_for <= 0:
                        return None
                self._condition.wait(wait_for if wait_for is not None else 1.0)


@dataclass(slots=True)
class _ThreadRecord:
    pid: int
    name: str
    parent: Optional[int]
    machine_index: int
    thread: Optional[threading.Thread] = None
    mailbox: _Mailbox = field(default_factory=_Mailbox)
    result: Any = None
    error: Optional[BaseException] = None
    finished: bool = False


class ThreadKernel:
    """Run generator-based processes on real threads (wall-clock time)."""

    def __init__(self, cluster: ClusterSpec) -> None:
        self._cluster = cluster
        self._records: Dict[int, _ThreadRecord] = {}
        self._next_pid = itertools.count(1)
        self._next_machine = 0
        self._lock = threading.Lock()
        self._start_time = time.monotonic()

    @property
    def cluster(self) -> ClusterSpec:
        """The cluster description (machine speeds are ignored by this backend)."""
        return self._cluster

    @property
    def now(self) -> float:
        """Wall-clock seconds since the kernel was created."""
        return time.monotonic() - self._start_time

    # ------------------------------------------------------------------ #
    def spawn(
        self,
        func: ProcessFunction,
        *args: Any,
        machine_index: Optional[int] = None,
        name: str = "",
        parent: Optional[int] = None,
        **kwargs: Any,
    ) -> int:
        """Start a process in its own thread and return its pid."""
        with self._lock:
            pid = next(self._next_pid)
            if machine_index is None:
                machine_index = self._next_machine
                self._next_machine = (self._next_machine + 1) % self._cluster.num_machines
            machine_index %= self._cluster.num_machines
            record = _ThreadRecord(
                pid=pid, name=name or f"proc{pid}", parent=parent, machine_index=machine_index
            )
            self._records[pid] = record
        context = ProcessContext(
            pid=pid,
            parent=parent,
            name=record.name,
            machine_index=machine_index,
            machine=self._cluster.machine(machine_index),
        )
        generator = func(context, *args, **kwargs)
        if not hasattr(generator, "send"):
            raise ProcessError(
                f"process function {getattr(func, '__name__', func)!r} must be a generator function"
            )
        thread = threading.Thread(
            target=self._drive, args=(record, generator), name=record.name, daemon=True
        )
        record.thread = thread
        thread.start()
        return pid

    def join(self, pid: int, timeout: Optional[float] = None) -> None:
        """Wait for a process to finish."""
        record = self._record(pid)
        assert record.thread is not None
        record.thread.join(timeout)
        if record.thread.is_alive():
            raise ProcessError(f"process {record.name!r} did not finish within {timeout} s")

    def join_all(self, timeout: Optional[float] = None) -> None:
        """Wait for every spawned process to finish."""
        for pid in list(self._records):
            self.join(pid, timeout)

    def result_of(self, pid: int) -> Any:
        """Return value of a finished process."""
        record = self._record(pid)
        if record.error is not None:
            raise ProcessError(f"process {record.name!r} failed") from record.error
        if not record.finished:
            raise ProcessError(f"process {record.name!r} has not finished")
        return record.result

    # ------------------------------------------------------------------ #
    def _record(self, pid: int) -> _ThreadRecord:
        try:
            return self._records[pid]
        except KeyError:
            raise ProcessError(f"unknown process id {pid}") from None

    def _drive(self, record: _ThreadRecord, generator: Any) -> None:
        value: Any = None
        try:
            while True:
                syscall = generator.send(value)
                value = self._handle(record, syscall)
        except StopIteration as stop:
            record.result = stop.value
            record.finished = True
        except BaseException as error:  # noqa: BLE001 - stored and re-raised on result_of
            record.error = error
            record.finished = True

    def _handle(self, record: _ThreadRecord, syscall: Syscall) -> Any:
        if isinstance(syscall, (Compute, Sleep)):
            # real computation already happened inside the process body
            return None
        if isinstance(syscall, GetTime):
            return self.now
        if isinstance(syscall, Send):
            dst = self._record(syscall.dst)
            now = self.now
            message = Message(
                src=record.pid,
                dst=syscall.dst,
                tag=syscall.tag,
                payload=syscall.payload,
                size_bytes=estimate_payload_bytes(syscall.payload),
                send_time=now,
                arrival_time=now,
            )
            dst.mailbox.put(message)
            return None
        if isinstance(syscall, Receive):
            return record.mailbox.get(
                tag=syscall.tag,
                src=syscall.src,
                blocking=syscall.blocking,
                timeout=syscall.timeout,
            )
        if isinstance(syscall, Spawn):
            return self.spawn(
                syscall.func,
                *syscall.args,
                machine_index=syscall.machine_index,
                name=syscall.name,
                parent=record.pid,
                **syscall.kwargs,
            )
        raise ProcessError(f"unsupported syscall {syscall!r}")
