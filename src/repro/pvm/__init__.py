"""PVM-like substrate: heterogeneous cluster, message passing and three kernels.

The default kernel is the deterministic discrete-event simulator
(:class:`~repro.pvm.simulator.SimKernel`); a real-thread kernel
(:class:`~repro.pvm.threads_backend.ThreadKernel`) runs the same process code
on OS threads (GIL-bound, demonstration only), and a real-process kernel
(:class:`~repro.pvm.process_backend.ProcessKernel`) runs it on OS processes
for true multi-core wall-clock speedups.
"""

from .cluster import ClusterSpec, heterogeneous_cluster, homogeneous_cluster, paper_cluster
from .faults import (
    WORKER_ADMIT_TAG,
    WORKER_DOWN_TAG,
    WORKER_DRAIN_TAG,
    AdmitWorkers,
    DrainWorker,
    FaultPlan,
    KillWorker,
    MessageFaults,
    SpawnWorker,
    ThrottleMachine,
    WorkerDown,
)
from .machine import MachineSpec, SpeedClass
from .message import Message, estimate_payload_bytes
from .process import (
    Compute,
    GetTime,
    ProcessContext,
    ProcessFunction,
    Receive,
    Send,
    Sleep,
    Spawn,
    Syscall,
)
from .process_backend import ProcessKernel
from .simulator import ProcessInfo, ProcessState, SimKernel, SimStats
from .threads_backend import ThreadKernel

__all__ = [
    "ClusterSpec",
    "heterogeneous_cluster",
    "homogeneous_cluster",
    "paper_cluster",
    "MachineSpec",
    "SpeedClass",
    "Message",
    "estimate_payload_bytes",
    "Syscall",
    "Compute",
    "Send",
    "Receive",
    "Spawn",
    "GetTime",
    "Sleep",
    "ProcessContext",
    "ProcessFunction",
    "ProcessInfo",
    "ProcessState",
    "SimKernel",
    "SimStats",
    "ThreadKernel",
    "ProcessKernel",
    "WORKER_DOWN_TAG",
    "WORKER_ADMIT_TAG",
    "WORKER_DRAIN_TAG",
    "FaultPlan",
    "KillWorker",
    "SpawnWorker",
    "DrainWorker",
    "AdmitWorkers",
    "ThrottleMachine",
    "MessageFaults",
    "WorkerDown",
]
