"""Resumable search sessions: submit / status / cancel over the master loop.

A :class:`SearchSession` owns one run of the parallel tabu search as a
sequence of *epochs* — master invocations that each execute some (or all)
remaining global iterations and pause at an iteration boundary.  Between
epochs the full run state lives in a serializable
:class:`~repro.parallel.master.MasterRunState`, so a session can be

* run to completion synchronously (:meth:`SearchSession.run` — exactly the
  classic :func:`~repro.parallel.runner.run_parallel_search` behaviour),
* advanced a few global iterations at a time (:meth:`SearchSession.step`),
* driven in the background with streaming progress events
  (:meth:`SearchSession.submit` / :meth:`SearchSession.status` /
  :meth:`SearchSession.cancel` / :meth:`SearchSession.result`),
* checkpointed to a byte-stable artifact and restored later — on the same
  or another backend — with a bit-identical continued trajectory
  (:meth:`SearchSession.checkpoint` / :meth:`SearchSession.restore`), and
* pointed at a warm :class:`~repro.session.WorkerPool` so consecutive runs
  and resumed epochs reuse live worker processes instead of respawning.

Determinism scope: with ``sync_mode="homogeneous"`` every decision of the
search is timing-independent, so interrupted-and-resumed trajectories match
the uninterrupted run bit for bit.  The paper's ``"heterogeneous"`` mode
makes timing-dependent interrupt decisions; sessions still checkpoint and
resume it, but only the homogeneous mode carries the bit-identity guarantee.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple, Union

from ..core.protocols import SearchProblem, ensure_search_problem
from ..errors import SessionError
from ..parallel.config import ParallelSearchParams
from ..parallel.master import MasterResult, MasterRunState, master_process
from ..parallel.messages import Tags
from ..pvm.cluster import ClusterSpec
from ..pvm.faults import FaultPlan
from ..pvm.simulator import ProcessInfo, SimStats
from .pool import WorkerPool, make_kernel
from .state import SessionState

__all__ = ["ProgressEvent", "SessionStatus", "SearchSession", "TOPOLOGY_KINDS"]

#: Fault-event kinds that change the worker roster — the session accumulates
#: these across epochs into the topology history that checkpoints carry and
#: ``sessions inspect`` reports.
TOPOLOGY_KINDS = (
    "worker-admitted",
    "worker-dead",
    "worker-drained",
    "worker-respawned",
)


@dataclass(frozen=True)
class ProgressEvent:
    """Streamed to the ``on_event`` callback after every finished epoch."""

    epoch: int
    rounds_done: int
    total_rounds: int
    best_cost: float
    complete: bool
    virtual_time: float


@dataclass(frozen=True)
class SessionStatus:
    """Snapshot of a session's lifecycle state."""

    #: ``"idle"``, ``"running"``, ``"paused"``, ``"cancelled"``,
    #: ``"complete"`` or ``"failed"``.
    state: str
    rounds_done: int
    total_rounds: int
    best_cost: Optional[float]
    epochs: int
    wall_clock_seconds: float

    @property
    def progress(self) -> float:
        """Fraction of global iterations finished."""
        if self.total_rounds <= 0:
            return 1.0
        return min(1.0, self.rounds_done / self.total_rounds)


def _resolve_problem(netlist: Any, problem: Optional[SearchProblem], params) -> SearchProblem:
    """Accept a SearchProblem, or wrap a bare netlist via the placement domain."""
    if problem is None:
        if netlist is None:
            raise SessionError(
                "SearchSession needs an instance: pass a netlist or problem="
            )
        if hasattr(netlist, "make_evaluator"):
            problem = netlist
        else:
            from ..core.registry import get_domain

            problem = get_domain("placement").build_problem(
                netlist, cost_params=params.cost, reference_seed=params.seed
            )
    ensure_search_problem(problem)
    return problem


class SearchSession:
    """One resumable parallel-tabu-search run (see module docstring)."""

    def __init__(
        self,
        netlist: Any = None,
        params: Optional[ParallelSearchParams] = None,
        *,
        problem: Optional[SearchProblem] = None,
        backend: str = "simulated",
        cluster: Optional[ClusterSpec] = None,
        pool: Optional[WorkerPool] = None,
        master_machine: int = 0,
        join_timeout: float = 3600.0,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.params = params or ParallelSearchParams()
        self.problem = _resolve_problem(netlist, problem, self.params)
        self.pool = pool
        self.backend = pool.backend if pool is not None else backend
        self.cluster = pool.cluster if pool is not None else cluster
        self.master_machine = master_machine
        self.join_timeout = join_timeout
        if fault_plan is not None:
            if pool is not None:
                raise SessionError(
                    "pass the fault plan to the WorkerPool, not the session — "
                    "the pool owns the kernel"
                )
            if self.backend != "simulated":
                raise SessionError(
                    f"fault plans are a simulated-backend feature, not {self.backend!r}"
                )
        self.fault_plan = fault_plan

        self._lock = threading.RLock()
        self._run_state: Optional[MasterRunState] = None
        self._master_result: Optional[MasterResult] = None
        self._complete = False
        self._cancel_requested = False
        self._epochs = 0
        self._wall_seconds = 0.0
        self._virtual_runtime = 0.0
        self._sim_stats: Optional[SimStats] = None
        self._process_infos: List[ProcessInfo] = []
        self._fault_events: List[Any] = []
        self._topology_events: List[Any] = []
        self._driver: Optional[threading.Thread] = None
        self._driver_error: Optional[BaseException] = None
        self._active: Optional[Tuple[Any, int]] = None  # (kernel, master pid)

    # ------------------------------------------------------------------ #
    # lifecycle queries
    # ------------------------------------------------------------------ #
    @property
    def complete(self) -> bool:
        return self._complete

    @property
    def rounds_done(self) -> int:
        with self._lock:
            if self._complete:
                return int(self.params.global_iterations)
            if self._run_state is not None:
                return int(self._run_state.next_iteration)
            return 0

    @property
    def best_cost(self) -> Optional[float]:
        with self._lock:
            if self._master_result is not None:
                return float(self._master_result.best_cost)
            if self._run_state is not None:
                return float(self._run_state.best_cost)
            return None

    def status(self) -> SessionStatus:
        """Thread-safe lifecycle snapshot (the ``status`` of submit/status/cancel)."""
        with self._lock:
            if self._driver is not None and self._driver.is_alive():
                state = "running"
            elif self._driver_error is not None:
                state = "failed"
            elif self._complete:
                state = "complete"
            elif self._cancel_requested and self._epochs > 0:
                state = "cancelled"
            elif self._epochs > 0:
                state = "paused"
            else:
                state = "idle"
            return SessionStatus(
                state=state,
                rounds_done=self.rounds_done,
                total_rounds=int(self.params.global_iterations),
                best_cost=self.best_cost,
                epochs=self._epochs,
                wall_clock_seconds=self._wall_seconds,
            )

    # ------------------------------------------------------------------ #
    # epoch execution
    # ------------------------------------------------------------------ #
    def _run_epoch(self, max_rounds: Optional[int]) -> MasterResult:
        """Run one master invocation (this thread) and fold in its result."""
        with self._lock:
            if self._complete:
                raise SessionError("session already ran to completion")
            resume_state = self._run_state
        wall_start = time.perf_counter()

        if self.pool is not None:
            master_result, stats, kernel_time = self.pool.run_master(
                self.problem,
                self.params,
                resume_state=resume_state,
                max_rounds=max_rounds,
                master_machine=self.master_machine,
                join_timeout=self.join_timeout,
            )
            process_infos = (
                self.pool.kernel.all_processes() if self.pool.is_simulated else []
            )
        elif self.backend == "simulated":
            fault_mode = self.params.fault_enabled or self.fault_plan is not None
            kernel = make_kernel("simulated", self.cluster, fault_plan=self.fault_plan)
            pid = kernel.spawn(
                master_process,
                self.problem,
                self.params,
                name="master",
                machine_index=self.master_machine,
                resume_state=resume_state,
                max_rounds=max_rounds,
            )
            if fault_mode:
                # obituaries route to the master; killed/declared-dead
                # workers may leave parked processes behind, which is the
                # expected end state of a degraded run
                kernel.notify_deaths_to(pid)
                stats = kernel.run(allow_blocked=True)
            else:
                stats = kernel.run()
            master_result = kernel.result_of(pid)
            kernel_time = stats.virtual_makespan
            process_infos = kernel.all_processes()
        else:
            kernel = make_kernel(self.backend, self.cluster)
            try:
                pid = kernel.spawn(
                    master_process,
                    self.problem,
                    self.params,
                    name="master",
                    machine_index=self.master_machine,
                    resume_state=resume_state,
                    max_rounds=max_rounds,
                )
                with self._lock:
                    self._active = (kernel, pid)
                if self.params.fault_enabled:
                    # a dead worker must not abort the epoch: route its
                    # obituary to the master and wait for the master alone
                    # (join_all would abort on the crashed worker's error)
                    kernel.notify_deaths_to(pid)
                    kernel.join(pid, timeout=self.join_timeout)
                else:
                    kernel.join_all(timeout=self.join_timeout)
                master_result = kernel.result_of(pid)
                kernel_time = kernel.now
            finally:
                with self._lock:
                    self._active = None
                kernel.shutdown()
            stats = None
            process_infos = []

        wall = time.perf_counter() - wall_start
        with self._lock:
            self._epochs += 1
            self._wall_seconds += wall
            self._master_result = master_result
            self._run_state = master_result.run_state
            self._complete = master_result.complete
            self._sim_stats = stats
            self._process_infos = process_infos
            epoch_events = getattr(master_result, "fault_events", ()) or ()
            self._fault_events.extend(epoch_events)
            self._topology_events.extend(
                event for event in epoch_events if event.kind in TOPOLOGY_KINDS
            )
            # the master stitches resumed trace points onto the session
            # timeline, so the trace end bounds the session's virtual span
            session_end = (
                master_result.trace[-1][0] if master_result.trace else kernel_time
            )
            self._virtual_runtime = max(float(kernel_time), float(session_end))
        return master_result

    def _ensure_not_running(self) -> None:
        with self._lock:
            if self._driver is not None and self._driver.is_alive():
                raise SessionError("session is running in the background")
            if self._driver_error is not None:
                raise self._driver_error

    # ------------------------------------------------------------------ #
    # synchronous API
    # ------------------------------------------------------------------ #
    def run(self):
        """Run all remaining global iterations and return the packaged result."""
        self._ensure_not_running()
        while not self._complete:
            before = self.rounds_done
            self._run_epoch(None)
            if self._cancel_requested:
                break
            if not self._complete and self.rounds_done <= before:
                # an epoch that neither finished, advanced, nor was cancelled
                # would loop forever (e.g. a paused run whose workers all
                # died before the first report)
                raise SessionError(
                    "epoch finished incomplete without advancing any global "
                    "iteration; aborting instead of looping"
                )
        return self._package()

    def step(self, rounds: int = 1) -> SessionStatus:
        """Advance up to ``rounds`` global iterations, then pause."""
        if rounds < 1:
            raise SessionError(f"step needs at least one round, got {rounds}")
        self._ensure_not_running()
        if not self._complete:
            self._run_epoch(rounds)
        return self.status()

    # ------------------------------------------------------------------ #
    # asynchronous API
    # ------------------------------------------------------------------ #
    def submit(
        self,
        *,
        chunk_rounds: Optional[int] = None,
        on_event: Optional[Callable[[ProgressEvent], None]] = None,
    ) -> None:
        """Start (or continue) the run on a background driver thread.

        ``chunk_rounds`` caps the global iterations per epoch; between
        epochs the driver checks for :meth:`cancel` and streams a
        :class:`ProgressEvent` (whose callback may itself call ``cancel`` —
        that is the cooperative-cancellation point on the simulated
        backend, which cannot be interrupted mid-epoch).
        """
        with self._lock:
            self._ensure_not_running()
            if self._complete:
                raise SessionError("session already ran to completion")
            self._cancel_requested = False
            self._driver_error = None

        def _drive() -> None:
            try:
                while True:
                    with self._lock:
                        if self._complete or self._cancel_requested:
                            break
                    result = self._run_epoch(chunk_rounds)
                    if on_event is not None:
                        on_event(
                            ProgressEvent(
                                epoch=self._epochs,
                                rounds_done=self.rounds_done,
                                total_rounds=int(self.params.global_iterations),
                                best_cost=float(result.best_cost),
                                complete=result.complete,
                                virtual_time=self._virtual_runtime,
                            )
                        )
            except BaseException as error:  # noqa: BLE001 - surfaced via result()
                with self._lock:
                    self._driver_error = error

        thread = threading.Thread(target=_drive, name="session-driver", daemon=True)
        with self._lock:
            self._driver = thread
        thread.start()

    def cancel(self) -> None:
        """Request a pause at the next global-iteration boundary.

        On the real backends the request is injected into the running
        master's mailbox immediately; on the simulated backend it takes
        effect at the next epoch boundary (use ``chunk_rounds`` to bound
        the wait).
        """
        with self._lock:
            self._cancel_requested = True
            active = self._active
        if self.pool is not None:
            self.pool.post_cancel()
        elif active is not None:
            kernel, pid = active
            if hasattr(kernel, "post"):
                kernel.post(pid, Tags.CANCEL)

    def result(self, timeout: Optional[float] = None):
        """Wait for the background driver and return the packaged result."""
        with self._lock:
            driver = self._driver
        if driver is not None:
            driver.join(timeout)
            if driver.is_alive():
                raise SessionError(f"session still running after {timeout}s")
        with self._lock:
            if self._driver_error is not None:
                raise self._driver_error
        return self._package()

    # ------------------------------------------------------------------ #
    # checkpoint / restore
    # ------------------------------------------------------------------ #
    def checkpoint(self, path: Optional[Any] = None) -> SessionState:
        """Freeze the paused run state into a byte-stable artifact."""
        self._ensure_not_running()
        with self._lock:
            state = SessionState(
                problem=self.problem,
                params=self.params,
                backend=self.backend,
                run_state=self._run_state,
                complete=self._complete,
                topology_events=tuple(self._topology_events),
            )
        if path is not None:
            state.save(path)
        return state

    @classmethod
    def restore(
        cls,
        source: Union[SessionState, str, Any],
        *,
        problem: Optional[SearchProblem] = None,
        backend: Optional[str] = None,
        cluster: Optional[ClusterSpec] = None,
        pool: Optional[WorkerPool] = None,
        master_machine: int = 0,
        join_timeout: float = 3600.0,
        fault_plan: Optional[FaultPlan] = None,
    ) -> "SearchSession":
        """Rebuild a session from a checkpoint (state object or file path).

        The continued trajectory is bit-identical to the uninterrupted run
        under ``sync_mode="homogeneous"`` — on any backend, warm or cold.
        A resumed grown/drained topology is restored exactly (roster, range
        assignment, ledger state).  ``fault_plan`` arms the resumed epochs
        with a (simulated-backend) failure schedule — its times are on the
        *fresh kernel's* clock, which restarts at zero on resume.
        """
        state = source if isinstance(source, SessionState) else SessionState.load(source)
        session = cls(
            params=state.params,
            problem=problem if problem is not None else state.problem,
            backend=backend if backend is not None else state.backend,
            cluster=cluster,
            pool=pool,
            master_machine=master_machine,
            join_timeout=join_timeout,
            fault_plan=fault_plan,
        )
        session._run_state = state.run_state
        session._complete = state.complete
        session._topology_events = list(state.topology_events)
        return session

    # ------------------------------------------------------------------ #
    # result packaging
    # ------------------------------------------------------------------ #
    def _package(self):
        from ..parallel.runner import ParallelSearchResult

        with self._lock:
            master_result = self._master_result
            if master_result is None:
                raise SessionError("no epoch has run yet")
            return ParallelSearchResult(
                instance=self.problem.name,
                params=self.params,
                best_cost=master_result.best_cost,
                initial_cost=master_result.initial_cost,
                best_objectives=master_result.best_objectives,
                best_solution=master_result.best_solution,
                trace=master_result.trace,
                global_records=master_result.global_records,
                virtual_runtime=self._virtual_runtime,
                sim_stats=self._sim_stats,
                process_infos=self._process_infos,
                wall_clock_seconds=self._wall_seconds,
                complete=master_result.complete,
                fault_events=list(self._fault_events),
            )

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Cancel any background work (the pool, if any, stays open — the
        caller that created it owns its lifetime)."""
        self.cancel()
        with self._lock:
            driver = self._driver
        if driver is not None and driver.is_alive():
            driver.join(self.join_timeout)

    def __enter__(self) -> "SearchSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
