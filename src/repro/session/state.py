"""Serializable search-session state: the checkpoint artifact.

A :class:`SessionState` freezes everything a :class:`~repro.session.SearchSession`
needs to continue a run bit-identically — the problem object, the parameters,
and the harvested :class:`~repro.parallel.master.MasterRunState` of the whole
master/TSW/CLW tree (solutions, exact evaluator blobs, tabu lists, frequency
memories, RNG bit-generator states, delta-protocol residents, counters and
traces).

The on-disk codec is a 4-byte magic, a little-endian ``u32`` schema version,
and a protocol-4 pickle of the state.  The artifact is deliberately free of
timestamps or other ambient inputs so that checkpointing the same state twice
produces identical bytes (tested by
``tests/session/test_checkpoint_state.py``).

This module also exposes the *serial* state surface: helpers to export and
restore a plain :class:`~repro.tabu.search.TabuSearch` (with its evaluator)
outside the parallel stack.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Union

import numpy as np

from ..errors import SessionError
from ..parallel.config import ParallelSearchParams
from ..parallel.master import MasterRunState
from ..tabu.search import TabuSearch, TabuSearchState

__all__ = [
    "MAGIC",
    "SCHEMA_VERSION",
    "SessionState",
    "SerialSearchState",
    "export_serial_state",
    "restore_serial_search",
]

#: First bytes of every checkpoint artifact ("Repro Tabu Session State").
MAGIC = b"RTSS"
#: Bumped whenever the pickled payload layout changes incompatibly.
SCHEMA_VERSION = 1

_HEADER = struct.Struct("<4sI")


@dataclass
class SessionState:
    """Frozen run state of one search session (one checkpoint)."""

    #: The shared problem object.  Problems are immutable, so the checkpoint
    #: carries the object itself — a restore needs no side-channel files.
    problem: Any
    params: ParallelSearchParams
    backend: str
    #: ``None`` when checkpointed before the first epoch (a fresh session).
    run_state: Optional[MasterRunState]
    complete: bool = False
    #: Topology history of the session so far: the worker-admitted /
    #: worker-dead / worker-drained / worker-respawned
    #: :class:`~repro.metrics.trace.FaultEvent` tuples accumulated across
    #: epochs, so ``sessions inspect`` can report who joined and left (and
    #: when) from the artifact alone.
    topology_events: tuple = ()

    @property
    def rounds_done(self) -> int:
        """Global iterations already finished at checkpoint time."""
        if self.run_state is not None:
            return int(self.run_state.next_iteration)
        return int(self.params.global_iterations) if self.complete else 0

    @property
    def best_cost(self) -> Optional[float]:
        """Incumbent best cost at checkpoint time (``None`` before epoch 1)."""
        if self.run_state is None:
            return None
        return float(self.run_state.best_cost)

    # ------------------------------------------------------------------ #
    def to_bytes(self) -> bytes:
        """Encode as a byte-stable artifact (magic + version + pickle)."""
        payload = {
            "problem": self.problem,
            "params": self.params,
            "backend": self.backend,
            "run_state": self.run_state,
            "complete": self.complete,
            "topology_events": tuple(self.topology_events),
        }
        return _HEADER.pack(MAGIC, SCHEMA_VERSION) + pickle.dumps(payload, protocol=4)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "SessionState":
        """Decode an artifact produced by :meth:`to_bytes`."""
        if len(blob) < _HEADER.size:
            raise SessionError("checkpoint artifact is truncated")
        magic, version = _HEADER.unpack_from(blob)
        if magic != MAGIC:
            raise SessionError(
                f"not a session checkpoint (magic {magic!r}, expected {MAGIC!r})"
            )
        if version != SCHEMA_VERSION:
            raise SessionError(
                f"unsupported checkpoint schema version {version} "
                f"(this build reads version {SCHEMA_VERSION})"
            )
        payload = pickle.loads(blob[_HEADER.size :])
        return cls(
            problem=payload["problem"],
            params=payload["params"],
            backend=payload["backend"],
            run_state=payload["run_state"],
            complete=bool(payload["complete"]),
            # absent on pre-elasticity artifacts (same schema version)
            topology_events=tuple(payload.get("topology_events", ())),
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Write the artifact to ``path`` and return it."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(self.to_bytes())
        return target

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SessionState":
        """Read an artifact written by :meth:`save`."""
        return cls.from_bytes(Path(path).read_bytes())


# --------------------------------------------------------------------------- #
# Serial state surface
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class SerialSearchState:
    """Checkpointed state of a serial :class:`~repro.tabu.search.TabuSearch`."""

    assignment: np.ndarray
    evaluator_state: bytes
    evaluations: int
    search_state: TabuSearchState


def export_serial_state(search: TabuSearch) -> SerialSearchState:
    """Export a serial search (and its evaluator) for a later exact resume."""
    evaluator = search.evaluator
    return SerialSearchState(
        assignment=evaluator.snapshot(),
        evaluator_state=pickle.dumps(evaluator.save_state(), protocol=4),
        evaluations=int(evaluator.evaluations),
        search_state=search.export_state(),
    )


def restore_serial_search(
    problem: Any,
    params: Any,
    state: SerialSearchState,
    *,
    cell_range: Any = None,
    seed: int = 0,
) -> TabuSearch:
    """Rebuild a serial search that continues ``state`` bit-identically.

    ``params``, ``cell_range`` and ``seed`` must match the original
    construction — they shape the search's configuration; the RNG stream
    position itself is overwritten by the installed state.
    """
    evaluator = problem.make_evaluator(np.asarray(state.assignment, dtype=np.int64))
    evaluator.restore_state(pickle.loads(state.evaluator_state))
    evaluator.evaluations = int(state.evaluations)
    search = TabuSearch(evaluator, params, cell_range=cell_range, seed=seed)
    search.install_state(state.search_state)
    return search
