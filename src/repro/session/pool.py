"""Warm worker pools: keep the PVM worker tree alive across searches.

Worker lifecycle and run lifecycle are split: a :class:`WorkerPool` owns one
kernel (any backend) plus one persistent
:func:`~repro.parallel.worker_loop.tsw_worker_loop` process per TSW — each
owning its CLW loops — and serves any number of consecutive master runs
against them.  A warm run ships the problem and parameters in ``SETUP``
messages instead of respawning processes, which on the real processes
backend skips OS-process startup entirely and reuses the kernel's
shared-memory exports (the kernel dedupes exports by object identity, so a
repeated problem object ships as a tiny handle).
"""

from __future__ import annotations

import threading
import time
from typing import Any, List, Optional, Tuple

from ..errors import SessionError
from ..metrics.trace import FaultEvent
from ..parallel.config import ParallelSearchParams
from ..parallel.master import MasterResult, MasterRunState, master_process
from ..parallel.messages import Tags
from ..parallel.worker_loop import tsw_worker_loop
from ..pvm.cluster import ClusterSpec, paper_cluster
from ..pvm.faults import AdmitWorkers, DrainWorker, FaultPlan
from ..pvm.process_backend import ProcessKernel
from ..pvm.simulator import ProcessState, SimKernel, SimStats
from ..pvm.threads_backend import ThreadKernel

__all__ = ["make_kernel", "WorkerPool"]

#: Simulator states from which a worker loop never serves traffic again.
_SIM_DEAD_STATES = (ProcessState.FINISHED, ProcessState.FAILED, ProcessState.KILLED)


def make_kernel(
    backend: str,
    cluster: Optional[ClusterSpec] = None,
    *,
    fault_plan: Optional[FaultPlan] = None,
):
    """Build a PVM kernel for ``backend`` (shared by runner, pool, session).

    ``fault_plan`` injects deterministic failures and is supported by the
    simulated backend only — the real backends experience *real* failures.
    """
    cluster = cluster or paper_cluster()
    if backend == "simulated":
        return SimKernel(cluster, fault_plan=fault_plan)
    if fault_plan is not None:
        raise SessionError(
            f"fault plans are a simulated-backend feature, not {backend!r}"
        )
    if backend == "threads":
        return ThreadKernel(cluster)
    if backend == "processes":
        return ProcessKernel(cluster)
    raise SessionError(f"unknown backend {backend!r}")


def _pool_shutdown_process(ctx, pids):
    """One-shot process that tells every persistent worker loop to exit."""
    for pid in pids:
        yield ctx.send(pid, Tags.POOL_SHUTDOWN)


class WorkerPool:
    """A persistent TSW/CLW worker tree serving consecutive master runs."""

    def __init__(
        self,
        num_tsws: int = 4,
        clws_per_tsw: int = 1,
        *,
        backend: str = "simulated",
        cluster: Optional[ClusterSpec] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.backend = backend
        self.num_tsws = int(num_tsws)
        self.clws_per_tsw = int(clws_per_tsw)
        self.cluster = cluster or paper_cluster()
        self.fault_plan = fault_plan
        self.kernel = make_kernel(backend, self.cluster, fault_plan=fault_plan)
        self._closed = False
        self._lock = threading.Lock()
        self._active_master_pid: Optional[int] = None
        self._runs_served = 0
        self._next_worker_index = self.num_tsws
        self._pending_repair_events: List[FaultEvent] = []
        self._tsw_pids: List[int] = [
            self.kernel.spawn(tsw_worker_loop, self.clws_per_tsw, name=f"tsw{i}")
            for i in range(self.num_tsws)
        ]
        if self.is_simulated:
            # let the loops spawn their CLW loops and park in their receives
            self.kernel.run(allow_blocked=True)

    # ------------------------------------------------------------------ #
    @property
    def is_simulated(self) -> bool:
        return isinstance(self.kernel, SimKernel)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def tsw_pids(self) -> Tuple[int, ...]:
        """Pids of the persistent TSW loops (stable across runs)."""
        return tuple(self._tsw_pids)

    @property
    def runs_served(self) -> int:
        """How many master runs this pool has completed."""
        return self._runs_served

    # ------------------------------------------------------------------ #
    def worker_dead(self, index: int) -> bool:
        """Whether the persistent TSW loop ``index`` is no longer serving."""
        pid = self._tsw_pids[index]
        if self.is_simulated:
            return self.kernel.process_info(pid).state in _SIM_DEAD_STATES
        return self.kernel.worker_dead(pid)

    def repair(self) -> List[int]:
        """Respawn dead persistent TSW loops in-slot.

        Returns the indices that were respawned.  A respawned loop starts
        cold (its CLW loops included) and is re-``SETUP`` by the next warm
        master run — resident-solution state is recovered through the
        delta/NACK path.  Each respawn is stamped into the pool's repair
        history, which the *next* ``run_master`` (fault mode or not) folds
        into its result's ``fault_events`` as ``worker-respawned`` — so a
        manual repair between runs stays visible to operators.
        """
        if self._closed:
            raise SessionError("worker pool is closed")
        respawned: List[int] = []
        reap = getattr(self.kernel, "reap_worker", None)
        terminate = getattr(self.kernel, "terminate_worker", None)
        for index in range(len(self._tsw_pids)):
            if not self.worker_dead(index):
                continue
            dead_pid = self._tsw_pids[index]
            if reap is not None:
                # take the orphaned CLW-loop subtree down with the dead loop,
                # then finalize every record so join_all will not wait on them
                doomed = [dead_pid]
                frontier = list(self.kernel.child_pids(dead_pid))
                while frontier:
                    child = frontier.pop()
                    doomed.append(child)
                    frontier.extend(self.kernel.child_pids(child))
                if terminate is not None:
                    for pid in doomed[1:]:
                        terminate(pid)
                deadline = time.monotonic() + 5.0
                remaining = list(doomed)
                while remaining and time.monotonic() < deadline:
                    remaining = [pid for pid in remaining if not reap(pid)]
                    if remaining:
                        time.sleep(0.05)
            self._tsw_pids[index] = self.kernel.spawn(
                tsw_worker_loop, self.clws_per_tsw, name=f"tsw{index}"
            )
            respawned.append(index)
            self._pending_repair_events.append(
                FaultEvent(
                    time=float(self.kernel.now),
                    kind="worker-respawned",
                    worker=f"tsw{index}",
                    detail="pool loop respawned in-slot",
                )
            )
        if respawned and self.is_simulated:
            # let the fresh loops spawn their CLW loops and park
            self.kernel.run(allow_blocked=True)
        return respawned

    # ------------------------------------------------------------------ #
    def grow(
        self,
        count: int = 1,
        *,
        machines: Optional[List[Optional[int]]] = None,
        speed_hints: Optional[List[Optional[float]]] = None,
    ) -> List[int]:
        """Spawn ``count`` additional persistent TSW loops into the pool.

        If a master run is in flight on a real backend, the new loops are
        handed to it immediately (``ADMIT``): the master SETUP-handshakes
        them, full-provisions their resident state through the delta path,
        registers them in its health ledger (with ``speed_hints``) and folds
        them into the next boundary's range re-partition.  Otherwise the
        loops idle until the next (fresh or resumed) run admits them.  On
        the simulated backend mid-run admission is driven by seeded
        ``SpawnWorker`` plan entries instead — a single-threaded kernel has
        no outside to call :meth:`grow` from while a run is stepping.

        Returns the new loops' pids (also appended to :attr:`tsw_pids`).
        """
        if self._closed:
            raise SessionError("worker pool is closed")
        count = int(count)
        if count < 1:
            raise SessionError(f"grow needs count >= 1, got {count}")
        machine_list = list(machines) if machines is not None else [None] * count
        hint_list = list(speed_hints) if speed_hints is not None else [None] * count
        if len(machine_list) != count:
            raise SessionError(
                f"grow got {len(machine_list)} machine pins for {count} workers"
            )
        if len(hint_list) != count:
            raise SessionError(
                f"grow got {len(hint_list)} speed hints for {count} workers"
            )
        new_pids: List[int] = []
        for machine, _hint in zip(machine_list, hint_list):
            index = self._next_worker_index
            self._next_worker_index += 1
            kwargs = {"name": f"tsw{index}", "machine_index": machine}
            if self.is_simulated:
                kwargs["start_time"] = self.kernel.now
            pid = self.kernel.spawn(tsw_worker_loop, self.clws_per_tsw, **kwargs)
            self._tsw_pids.append(pid)
            new_pids.append(pid)
        if self.is_simulated:
            # let the new loops spawn their CLW loops and park in their recv
            self.kernel.run(allow_blocked=True)
        with self._lock:
            master = self._active_master_pid
        if master is not None and hasattr(self.kernel, "post"):
            self.kernel.post(
                master,
                Tags.ADMIT,
                AdmitWorkers(pids=tuple(new_pids), speed_hints=tuple(hint_list)),
            )
        return new_pids

    def drain(self, index: int) -> bool:
        """Ask the in-flight master to gracefully retire TSW ``index``.

        The worker finishes its current range, its last report is folded in
        at the global-iteration boundary, its range is re-partitioned over
        the remaining workers, and it retires without a strike (its loop
        parks idle, reusable by a later run or admission).  Returns whether
        a running master was signalled — on the simulated backend (or with
        no run in flight) use a seeded ``DrainWorker`` plan entry instead.
        """
        index = int(index)
        if not 0 <= index < len(self._tsw_pids):
            raise SessionError(f"drain: no TSW loop with index {index}")
        with self._lock:
            master = self._active_master_pid
        if master is None or not hasattr(self.kernel, "post"):
            return False
        self.kernel.post(master, Tags.DRAIN, DrainWorker(at=0.0, name=f"tsw{index}"))
        return True

    # ------------------------------------------------------------------ #
    def run_master(
        self,
        problem: Any,
        params: ParallelSearchParams,
        *,
        resume_state: Optional[MasterRunState] = None,
        max_rounds: Optional[int] = None,
        master_machine: int = 0,
        join_timeout: float = 3600.0,
    ) -> Tuple[MasterResult, Optional[SimStats], float]:
        """Run one master epoch against the warm workers.

        Returns ``(master_result, sim_stats_or_None, kernel_time_at_end)``.
        """
        if self._closed:
            raise SessionError("worker pool is closed")
        if params.num_tsws != self.num_tsws or params.clws_per_tsw != self.clws_per_tsw:
            raise SessionError(
                f"pool topology ({self.num_tsws} TSWs x {self.clws_per_tsw} CLWs) "
                f"does not match params ({params.num_tsws} x {params.clws_per_tsw})"
            )
        if params.fault_enabled:
            # dead loops (killed by a fault plan, crashed, or OS-terminated)
            # are respawned and re-SETUP before any run traffic; repair()
            # stamps the respawns into the pool's pending repair history
            self.repair()
        # repair history (this repair and any earlier manual repair()) is
        # surfaced through this run's fault events
        repair_events = list(self._pending_repair_events)
        self._pending_repair_events.clear()
        fault_listening = params.fault_enabled or self.fault_plan is not None
        if self.is_simulated:
            pid = self.kernel.spawn(
                master_process,
                problem,
                params,
                name="master",
                machine_index=master_machine,
                start_time=self.kernel.now,
                resume_state=resume_state,
                max_rounds=max_rounds,
                pool_pids=list(self._tsw_pids),
            )
            if fault_listening:
                # the listener also receives seeded admit/drain requests, so
                # arm it whenever a plan is loaded, not only in fault mode
                self.kernel.notify_deaths_to(pid)
            stats = self.kernel.run(allow_blocked=True)
            if fault_listening:
                self.kernel.notify_deaths_to(None)
            self._runs_served += 1
            result = self.kernel.result_of(pid)
            result.fault_events[:0] = repair_events
            return result, stats, self.kernel.now
        pid = self.kernel.spawn(
            master_process,
            problem,
            params,
            name="master",
            machine_index=master_machine,
            resume_state=resume_state,
            max_rounds=max_rounds,
            pool_pids=list(self._tsw_pids),
        )
        if fault_listening:
            self.kernel.notify_deaths_to(pid)
        with self._lock:
            self._active_master_pid = pid
        try:
            # raises ProcessError if the master misses the deadline
            self.kernel.join(pid, timeout=join_timeout)
        finally:
            with self._lock:
                self._active_master_pid = None
            if fault_listening:
                self.kernel.notify_deaths_to(None)
        self._runs_served += 1
        result = self.kernel.result_of(pid)
        result.fault_events[:0] = repair_events
        return result, None, self.kernel.now

    def post_cancel(self) -> bool:
        """Ask the currently-running pooled master (if any) to pause.

        Only meaningful on the real backends — the simulated kernel runs on
        the caller's own thread, so there is no concurrent master to signal.
        """
        with self._lock:
            pid = self._active_master_pid
        if pid is None or not hasattr(self.kernel, "post"):
            return False
        self.kernel.post(pid, Tags.CANCEL)
        return True

    # ------------------------------------------------------------------ #
    def close(self, join_timeout: float = 60.0) -> None:
        """Shut the persistent worker loops down and release the kernel."""
        if self._closed:
            return
        self._closed = True
        if self.is_simulated:
            self.kernel.spawn(
                _pool_shutdown_process,
                list(self._tsw_pids),
                name="pool-shutdown",
                start_time=self.kernel.now,
            )
            self.kernel.run(allow_blocked=True)
        else:
            self.kernel.spawn(
                _pool_shutdown_process, list(self._tsw_pids), name="pool-shutdown"
            )
            self.kernel.join_all(timeout=join_timeout)
            self.kernel.shutdown()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
