"""Warm worker pools: keep the PVM worker tree alive across searches.

Worker lifecycle and run lifecycle are split: a :class:`WorkerPool` owns one
kernel (any backend) plus one persistent
:func:`~repro.parallel.worker_loop.tsw_worker_loop` process per TSW — each
owning its CLW loops — and serves any number of consecutive master runs
against them.  A warm run ships the problem and parameters in ``SETUP``
messages instead of respawning processes, which on the real processes
backend skips OS-process startup entirely and reuses the kernel's
shared-memory exports (the kernel dedupes exports by object identity, so a
repeated problem object ships as a tiny handle).
"""

from __future__ import annotations

import threading
import time
from typing import Any, List, Optional, Tuple

from ..errors import SessionError
from ..metrics.trace import FaultEvent
from ..parallel.config import ParallelSearchParams
from ..parallel.master import MasterResult, MasterRunState, master_process
from ..parallel.messages import Tags
from ..parallel.worker_loop import tsw_worker_loop
from ..pvm.cluster import ClusterSpec, paper_cluster
from ..pvm.faults import FaultPlan
from ..pvm.process_backend import ProcessKernel
from ..pvm.simulator import ProcessState, SimKernel, SimStats
from ..pvm.threads_backend import ThreadKernel

__all__ = ["make_kernel", "WorkerPool"]

#: Simulator states from which a worker loop never serves traffic again.
_SIM_DEAD_STATES = (ProcessState.FINISHED, ProcessState.FAILED, ProcessState.KILLED)


def make_kernel(
    backend: str,
    cluster: Optional[ClusterSpec] = None,
    *,
    fault_plan: Optional[FaultPlan] = None,
):
    """Build a PVM kernel for ``backend`` (shared by runner, pool, session).

    ``fault_plan`` injects deterministic failures and is supported by the
    simulated backend only — the real backends experience *real* failures.
    """
    cluster = cluster or paper_cluster()
    if backend == "simulated":
        return SimKernel(cluster, fault_plan=fault_plan)
    if fault_plan is not None:
        raise SessionError(
            f"fault plans are a simulated-backend feature, not {backend!r}"
        )
    if backend == "threads":
        return ThreadKernel(cluster)
    if backend == "processes":
        return ProcessKernel(cluster)
    raise SessionError(f"unknown backend {backend!r}")


def _pool_shutdown_process(ctx, pids):
    """One-shot process that tells every persistent worker loop to exit."""
    for pid in pids:
        yield ctx.send(pid, Tags.POOL_SHUTDOWN)


class WorkerPool:
    """A persistent TSW/CLW worker tree serving consecutive master runs."""

    def __init__(
        self,
        num_tsws: int = 4,
        clws_per_tsw: int = 1,
        *,
        backend: str = "simulated",
        cluster: Optional[ClusterSpec] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.backend = backend
        self.num_tsws = int(num_tsws)
        self.clws_per_tsw = int(clws_per_tsw)
        self.cluster = cluster or paper_cluster()
        self.kernel = make_kernel(backend, self.cluster, fault_plan=fault_plan)
        self._closed = False
        self._lock = threading.Lock()
        self._active_master_pid: Optional[int] = None
        self._runs_served = 0
        self._tsw_pids: List[int] = [
            self.kernel.spawn(tsw_worker_loop, self.clws_per_tsw, name=f"tsw{i}")
            for i in range(self.num_tsws)
        ]
        if self.is_simulated:
            # let the loops spawn their CLW loops and park in their receives
            self.kernel.run(allow_blocked=True)

    # ------------------------------------------------------------------ #
    @property
    def is_simulated(self) -> bool:
        return isinstance(self.kernel, SimKernel)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def tsw_pids(self) -> Tuple[int, ...]:
        """Pids of the persistent TSW loops (stable across runs)."""
        return tuple(self._tsw_pids)

    @property
    def runs_served(self) -> int:
        """How many master runs this pool has completed."""
        return self._runs_served

    # ------------------------------------------------------------------ #
    def worker_dead(self, index: int) -> bool:
        """Whether the persistent TSW loop ``index`` is no longer serving."""
        pid = self._tsw_pids[index]
        if self.is_simulated:
            return self.kernel.process_info(pid).state in _SIM_DEAD_STATES
        return self.kernel.worker_dead(pid)

    def repair(self) -> List[int]:
        """Respawn dead persistent TSW loops in-slot.

        Returns the indices that were respawned.  A respawned loop starts
        cold (its CLW loops included) and is re-``SETUP`` by the next warm
        master run — resident-solution state is recovered through the
        delta/NACK path.
        """
        if self._closed:
            raise SessionError("worker pool is closed")
        respawned: List[int] = []
        reap = getattr(self.kernel, "reap_worker", None)
        terminate = getattr(self.kernel, "terminate_worker", None)
        for index in range(self.num_tsws):
            if not self.worker_dead(index):
                continue
            dead_pid = self._tsw_pids[index]
            if reap is not None:
                # take the orphaned CLW-loop subtree down with the dead loop,
                # then finalize every record so join_all will not wait on them
                doomed = [dead_pid]
                frontier = list(self.kernel.child_pids(dead_pid))
                while frontier:
                    child = frontier.pop()
                    doomed.append(child)
                    frontier.extend(self.kernel.child_pids(child))
                if terminate is not None:
                    for pid in doomed[1:]:
                        terminate(pid)
                deadline = time.monotonic() + 5.0
                remaining = list(doomed)
                while remaining and time.monotonic() < deadline:
                    remaining = [pid for pid in remaining if not reap(pid)]
                    if remaining:
                        time.sleep(0.05)
            self._tsw_pids[index] = self.kernel.spawn(
                tsw_worker_loop, self.clws_per_tsw, name=f"tsw{index}"
            )
            respawned.append(index)
        if respawned and self.is_simulated:
            # let the fresh loops spawn their CLW loops and park
            self.kernel.run(allow_blocked=True)
        return respawned

    # ------------------------------------------------------------------ #
    def run_master(
        self,
        problem: Any,
        params: ParallelSearchParams,
        *,
        resume_state: Optional[MasterRunState] = None,
        max_rounds: Optional[int] = None,
        master_machine: int = 0,
        join_timeout: float = 3600.0,
    ) -> Tuple[MasterResult, Optional[SimStats], float]:
        """Run one master epoch against the warm workers.

        Returns ``(master_result, sim_stats_or_None, kernel_time_at_end)``.
        """
        if self._closed:
            raise SessionError("worker pool is closed")
        if params.num_tsws != self.num_tsws or params.clws_per_tsw != self.clws_per_tsw:
            raise SessionError(
                f"pool topology ({self.num_tsws} TSWs x {self.clws_per_tsw} CLWs) "
                f"does not match params ({params.num_tsws} x {params.clws_per_tsw})"
            )
        repair_events: List[FaultEvent] = []
        if params.fault_enabled:
            # dead loops (killed by a fault plan, crashed, or OS-terminated)
            # are respawned and re-SETUP before any run traffic
            for index in self.repair():
                repair_events.append(
                    FaultEvent(
                        time=float(self.kernel.now),
                        kind="worker-respawned",
                        worker=f"tsw{index}",
                        detail="pool loop respawned before warm run",
                    )
                )
        if self.is_simulated:
            pid = self.kernel.spawn(
                master_process,
                problem,
                params,
                name="master",
                machine_index=master_machine,
                start_time=self.kernel.now,
                resume_state=resume_state,
                max_rounds=max_rounds,
                pool_pids=list(self._tsw_pids),
            )
            if params.fault_enabled:
                self.kernel.notify_deaths_to(pid)
            stats = self.kernel.run(allow_blocked=True)
            if params.fault_enabled:
                self.kernel.notify_deaths_to(None)
            self._runs_served += 1
            result = self.kernel.result_of(pid)
            result.fault_events[:0] = repair_events
            return result, stats, self.kernel.now
        pid = self.kernel.spawn(
            master_process,
            problem,
            params,
            name="master",
            machine_index=master_machine,
            resume_state=resume_state,
            max_rounds=max_rounds,
            pool_pids=list(self._tsw_pids),
        )
        if params.fault_enabled:
            self.kernel.notify_deaths_to(pid)
        with self._lock:
            self._active_master_pid = pid
        try:
            # raises ProcessError if the master misses the deadline
            self.kernel.join(pid, timeout=join_timeout)
        finally:
            with self._lock:
                self._active_master_pid = None
            if params.fault_enabled:
                self.kernel.notify_deaths_to(None)
        self._runs_served += 1
        result = self.kernel.result_of(pid)
        result.fault_events[:0] = repair_events
        return result, None, self.kernel.now

    def post_cancel(self) -> bool:
        """Ask the currently-running pooled master (if any) to pause.

        Only meaningful on the real backends — the simulated kernel runs on
        the caller's own thread, so there is no concurrent master to signal.
        """
        with self._lock:
            pid = self._active_master_pid
        if pid is None or not hasattr(self.kernel, "post"):
            return False
        self.kernel.post(pid, Tags.CANCEL)
        return True

    # ------------------------------------------------------------------ #
    def close(self, join_timeout: float = 60.0) -> None:
        """Shut the persistent worker loops down and release the kernel."""
        if self._closed:
            return
        self._closed = True
        if self.is_simulated:
            self.kernel.spawn(
                _pool_shutdown_process,
                list(self._tsw_pids),
                name="pool-shutdown",
                start_time=self.kernel.now,
            )
            self.kernel.run(allow_blocked=True)
        else:
            self.kernel.spawn(
                _pool_shutdown_process, list(self._tsw_pids), name="pool-shutdown"
            )
            self.kernel.join_all(timeout=join_timeout)
            self.kernel.shutdown()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
