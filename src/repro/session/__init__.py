"""Resumable search sessions, serializable run state, and warm worker pools.

The session layer splits *worker lifecycle* from *run lifecycle*:

* :class:`SearchSession` — one resumable run with a submit/status/cancel
  lifecycle, epoch stepping, and byte-stable checkpoints;
* :class:`SessionState` — the versioned checkpoint artifact;
* :class:`WorkerPool` — persistent TSW/CLW worker loops serving consecutive
  runs without respawning (warm start).
"""

from .pool import WorkerPool, make_kernel
from .session import ProgressEvent, SearchSession, SessionStatus
from .state import (
    SCHEMA_VERSION,
    SerialSearchState,
    SessionState,
    export_serial_state,
    restore_serial_search,
)

__all__ = [
    "WorkerPool",
    "make_kernel",
    "ProgressEvent",
    "SearchSession",
    "SessionStatus",
    "SessionState",
    "SerialSearchState",
    "SCHEMA_VERSION",
    "export_serial_state",
    "restore_serial_search",
]
