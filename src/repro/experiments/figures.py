"""Regeneration of every figure of the paper's evaluation (Figures 5–11).

Each ``figN_*`` function runs the corresponding experiment on the simulated
heterogeneous cluster and returns a :class:`FigureResult` holding both the raw
data and a formatted text rendition of the series the paper plots.  The
benchmark harness (``benchmarks/``) calls these functions — one per figure —
and prints their output; EXPERIMENTS.md records representative results next to
the paper's qualitative findings.

All functions accept an :class:`~repro.experiments.harness.ExperimentScale`
(defaulting to the scale selected by ``REPRO_EXPERIMENT_SCALE``) and a seed so
the runs are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ExperimentError
from ..metrics.report import format_table
from ..metrics.speedup import SpeedupPoint, common_quality_threshold, speedup_curve
from ..metrics.trace import CostTrace
from ..parallel.runner import ParallelSearchResult
from ..pvm.cluster import paper_cluster
from .harness import (
    ExperimentScale,
    circuits_for_scale,
    current_scale,
    params_for_circuit,
    run_configuration,
    trace_of,
)

__all__ = [
    "FigureResult",
    "fig5_clw_quality",
    "fig6_clw_speedup",
    "fig7_tsw_quality",
    "fig8_tsw_speedup",
    "fig9_diversification",
    "fig10_local_vs_global",
    "fig11_heterogeneity",
    "ALL_FIGURES",
]


@dataclass
class FigureResult:
    """Raw data plus formatted text for one reproduced figure."""

    figure_id: str
    title: str
    scale: str
    data: Dict[str, object] = field(default_factory=dict)
    tables: Dict[str, str] = field(default_factory=dict)

    def format(self) -> str:
        """Human-readable rendition of every panel of the figure."""
        header = f"=== {self.figure_id}: {self.title} (scale: {self.scale}) ==="
        parts = [header]
        for name in sorted(self.tables):
            parts.append(self.tables[name])
        return "\n\n".join(parts)


# --------------------------------------------------------------------------- #
# Figure 5 — effect of the number of CLWs on solution quality
# --------------------------------------------------------------------------- #
def fig5_clw_quality(
    *,
    scale: Optional[ExperimentScale] = None,
    circuits: Optional[Sequence[str]] = None,
    clw_counts: Sequence[int] = (1, 2, 3, 4),
    num_tsws: int = 4,
    seed: int = 2003,
) -> FigureResult:
    """Best solution quality versus the number of CLWs (Figure 5).

    The paper fixes 4 TSWs, sweeps 1–4 CLWs per TSW on all four circuits and
    reports the best cost of each run.
    """
    scale = scale or current_scale()
    names = circuits_for_scale(scale, circuits)
    result = FigureResult(
        figure_id="fig5", title="Effect of number of CLWs on solution quality", scale=scale.name
    )
    quality: Dict[str, Dict[int, float]] = {}
    for circuit in names:
        per_circuit: Dict[int, float] = {}
        for clws in clw_counts:
            params = params_for_circuit(
                circuit, scale, num_tsws=num_tsws, clws_per_tsw=clws, seed=seed
            )
            run = run_configuration(circuit, params)
            per_circuit[int(clws)] = run.best_cost
        quality[circuit] = per_circuit
        result.tables[circuit] = format_table(
            ["CLWs per TSW", "best cost"],
            sorted(per_circuit.items()),
            title=f"{circuit}: best cost vs number of CLWs (TSWs={num_tsws})",
        )
    result.data["quality"] = quality
    result.data["clw_counts"] = tuple(int(c) for c in clw_counts)
    return result


# --------------------------------------------------------------------------- #
# Figure 6 — speedup to a quality target versus the number of CLWs
# --------------------------------------------------------------------------- #
def fig6_clw_speedup(
    *,
    scale: Optional[ExperimentScale] = None,
    circuits: Optional[Sequence[str]] = None,
    clw_counts: Sequence[int] = (1, 2, 3, 4),
    num_tsws: int = 4,
    seed: int = 2003,
) -> FigureResult:
    """Speedup in reaching a quality target versus the number of CLWs (Figure 6).

    Speedup is the paper's non-deterministic-algorithm definition:
    ``t(1, x) / t(n, x)`` with ``x`` chosen so every configuration reaches it.
    The paper shows two circuits; we default to the two mid-size ones.
    """
    scale = scale or current_scale()
    default_circuits = ("c532", "c1355")
    names = circuits_for_scale(scale, circuits or default_circuits)
    result = FigureResult(
        figure_id="fig6",
        title="Speedup to reach a quality target vs number of CLWs",
        scale=scale.name,
    )
    curves: Dict[str, List[SpeedupPoint]] = {}
    for circuit in names:
        traces: Dict[int, CostTrace] = {}
        # Every configuration shares the problem instance (and therefore the
        # reference cost) so the costs — and the quality target — are
        # directly comparable across runs.
        base_params = params_for_circuit(
            circuit, scale, num_tsws=num_tsws, clws_per_tsw=1, seed=seed
        )
        from ..parallel.runner import build_problem
        from ..placement.iscas import load_benchmark

        problem = build_problem(load_benchmark(circuit), base_params)
        for clws in clw_counts:
            params = params_for_circuit(
                circuit, scale, num_tsws=num_tsws, clws_per_tsw=clws, seed=seed
            )
            run = run_configuration(circuit, params, problem=problem)
            traces[int(clws)] = trace_of(run, label=f"{circuit}/clw{clws}")
        points = speedup_curve(traces, baseline_workers=min(clw_counts))
        curves[circuit] = points
        result.tables[circuit] = format_table(
            ["CLWs per TSW", "time to x", "speedup"],
            [(p.workers, p.time, p.speedup) for p in points],
            title=(
                f"{circuit}: speedup reaching cost <= {points[0].threshold:.4f} "
                f"(TSWs={num_tsws})"
            ),
        )
    result.data["curves"] = curves
    return result


# --------------------------------------------------------------------------- #
# Figure 7 — effect of the number of TSWs on solution quality
# --------------------------------------------------------------------------- #
def fig7_tsw_quality(
    *,
    scale: Optional[ExperimentScale] = None,
    circuits: Optional[Sequence[str]] = None,
    tsw_counts: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
    seed: int = 2003,
) -> FigureResult:
    """Best solution quality versus the number of TSWs (Figure 7).

    One CLW per TSW, 1–8 TSWs, all circuits.
    """
    scale = scale or current_scale()
    names = circuits_for_scale(scale, circuits)
    result = FigureResult(
        figure_id="fig7", title="Effect of number of TSWs on solution quality", scale=scale.name
    )
    quality: Dict[str, Dict[int, float]] = {}
    for circuit in names:
        per_circuit: Dict[int, float] = {}
        for tsws in tsw_counts:
            params = params_for_circuit(
                circuit, scale, num_tsws=tsws, clws_per_tsw=1, seed=seed
            )
            run = run_configuration(circuit, params)
            per_circuit[int(tsws)] = run.best_cost
        quality[circuit] = per_circuit
        result.tables[circuit] = format_table(
            ["TSWs", "best cost"],
            sorted(per_circuit.items()),
            title=f"{circuit}: best cost vs number of TSWs (CLWs per TSW = 1)",
        )
    result.data["quality"] = quality
    result.data["tsw_counts"] = tuple(int(c) for c in tsw_counts)
    return result


# --------------------------------------------------------------------------- #
# Figure 8 — speedup to a quality target versus the number of TSWs
# --------------------------------------------------------------------------- #
def fig8_tsw_speedup(
    *,
    scale: Optional[ExperimentScale] = None,
    circuits: Optional[Sequence[str]] = None,
    tsw_counts: Sequence[int] = (1, 2, 4, 6, 8),
    seed: int = 2003,
) -> FigureResult:
    """Speedup in reaching a quality target versus the number of TSWs (Figure 8)."""
    scale = scale or current_scale()
    default_circuits = ("c532", "c3540")
    names = circuits_for_scale(scale, circuits or default_circuits)
    result = FigureResult(
        figure_id="fig8",
        title="Speedup to reach a quality target vs number of TSWs",
        scale=scale.name,
    )
    curves: Dict[str, List[SpeedupPoint]] = {}
    for circuit in names:
        from ..parallel.runner import build_problem
        from ..placement.iscas import load_benchmark

        base_params = params_for_circuit(circuit, scale, num_tsws=1, clws_per_tsw=1, seed=seed)
        problem = build_problem(load_benchmark(circuit), base_params)
        traces: Dict[int, CostTrace] = {}
        for tsws in tsw_counts:
            params = params_for_circuit(
                circuit, scale, num_tsws=tsws, clws_per_tsw=1, seed=seed
            )
            run = run_configuration(circuit, params, problem=problem)
            traces[int(tsws)] = trace_of(run, label=f"{circuit}/tsw{tsws}")
        points = speedup_curve(traces, baseline_workers=min(tsw_counts))
        curves[circuit] = points
        result.tables[circuit] = format_table(
            ["TSWs", "time to x", "speedup"],
            [(p.workers, p.time, p.speedup) for p in points],
            title=f"{circuit}: speedup reaching cost <= {points[0].threshold:.4f} (1 CLW per TSW)",
        )
    result.data["curves"] = curves
    return result


# --------------------------------------------------------------------------- #
# Figure 9 — effect of diversification
# --------------------------------------------------------------------------- #
def fig9_diversification(
    *,
    scale: Optional[ExperimentScale] = None,
    circuits: Optional[Sequence[str]] = None,
    num_tsws: int = 4,
    seed: int = 2003,
) -> FigureResult:
    """Diversified versus non-diversified runs (Figure 9).

    Four TSWs, one CLW each; the only difference between the two runs of each
    circuit is whether TSWs perform the range-restricted diversification step
    at the start of every global iteration.
    """
    scale = scale or current_scale()
    names = circuits_for_scale(scale, circuits)
    result = FigureResult(
        figure_id="fig9", title="Effect of diversification", scale=scale.name
    )
    data: Dict[str, Dict[str, object]] = {}
    for circuit in names:
        runs: Dict[str, ParallelSearchResult] = {}
        for label, diversify in (("diversified", True), ("non-diversified", False)):
            params = params_for_circuit(
                circuit, scale, num_tsws=num_tsws, clws_per_tsw=1,
                diversify=diversify, seed=seed,
            )
            runs[label] = run_configuration(circuit, params)
        data[circuit] = {
            "best_costs": {k: v.best_cost for k, v in runs.items()},
            "traces": {k: v.trace for k, v in runs.items()},
        }
        rows = []
        for label, run in runs.items():
            rows.append((label, run.initial_cost, run.best_cost, run.improvement))
        result.tables[circuit] = format_table(
            ["run", "initial cost", "best cost", "improvement"],
            rows,
            title=f"{circuit}: diversified vs non-diversified (TSWs={num_tsws}, 1 CLW)",
        )
    result.data["per_circuit"] = data
    return result


# --------------------------------------------------------------------------- #
# Figure 10 — local versus global iterations
# --------------------------------------------------------------------------- #
def fig10_local_vs_global(
    *,
    scale: Optional[ExperimentScale] = None,
    circuits: Optional[Sequence[str]] = None,
    num_tsws: int = 4,
    seed: int = 2003,
    combinations: Optional[Sequence[Tuple[int, int]]] = None,
) -> FigureResult:
    """Trade-off between global and local iterations (Figure 10).

    The total number of TS iterations (global × local) is held constant while
    their split varies: many short global rounds (much diversification, little
    local investigation) versus few long rounds.
    """
    scale = scale or current_scale()
    names = circuits_for_scale(scale, circuits)
    total = scale.global_iterations * scale.local_iterations * 2
    if combinations is None:
        combinations = []
        for global_iters in (2, 3, 4, 6):
            local_iters = max(1, total // global_iters)
            combinations.append((global_iters, local_iters))
    result = FigureResult(
        figure_id="fig10", title="Local versus global iterations", scale=scale.name
    )
    data: Dict[str, Dict[Tuple[int, int], float]] = {}
    for circuit in names:
        per_circuit: Dict[Tuple[int, int], float] = {}
        for global_iters, local_iters in combinations:
            params = params_for_circuit(
                circuit,
                scale,
                num_tsws=num_tsws,
                clws_per_tsw=1,
                global_iterations=global_iters,
                local_iterations=local_iters,
                seed=seed,
            )
            run = run_configuration(circuit, params)
            per_circuit[(global_iters, local_iters)] = run.best_cost
        data[circuit] = per_circuit
        result.tables[circuit] = format_table(
            ["global iters", "local iters", "best cost"],
            [(g, l, c) for (g, l), c in sorted(per_circuit.items())],
            title=f"{circuit}: constant total work, varying global/local split",
        )
    result.data["per_circuit"] = data
    result.data["combinations"] = tuple(combinations)
    return result


# --------------------------------------------------------------------------- #
# Figure 11 — accounting for heterogeneity
# --------------------------------------------------------------------------- #
def fig11_heterogeneity(
    *,
    scale: Optional[ExperimentScale] = None,
    circuits: Optional[Sequence[str]] = None,
    num_tsws: int = 4,
    clws_per_tsw: int = 4,
    seed: int = 2003,
) -> FigureResult:
    """Heterogeneous versus homogeneous synchronisation (Figure 11).

    Both runs use 4 TSWs × 4 CLWs on the paper's twelve-machine cluster
    (7 fast / 3 medium / 2 slow).  The heterogeneous run interrupts the slow
    half of the children; the homogeneous run waits for everyone.  The figure
    plots best cost versus (virtual) runtime.
    """
    scale = scale or current_scale()
    default_circuits = tuple(scale.circuits[1:]) or scale.circuits
    names = circuits_for_scale(scale, circuits or default_circuits)
    cluster = paper_cluster()
    result = FigureResult(
        figure_id="fig11",
        title="Best cost vs runtime: heterogeneous vs homogeneous synchronisation",
        scale=scale.name,
    )
    data: Dict[str, Dict[str, object]] = {}
    for circuit in names:
        from ..parallel.runner import build_problem
        from ..placement.iscas import load_benchmark

        base_params = params_for_circuit(
            circuit, scale, num_tsws=num_tsws, clws_per_tsw=clws_per_tsw, seed=seed
        )
        problem = build_problem(load_benchmark(circuit), base_params)
        runs: Dict[str, ParallelSearchResult] = {}
        for mode in ("heterogeneous", "homogeneous"):
            params = params_for_circuit(
                circuit,
                scale,
                num_tsws=num_tsws,
                clws_per_tsw=clws_per_tsw,
                sync_mode=mode,
                seed=seed,
            )
            runs[mode] = run_configuration(circuit, params, cluster=cluster, problem=problem)
        data[circuit] = {
            "runtimes": {k: v.virtual_runtime for k, v in runs.items()},
            "best_costs": {k: v.best_cost for k, v in runs.items()},
            "traces": {k: v.trace for k, v in runs.items()},
        }
        rows = []
        for mode, run in runs.items():
            rows.append((mode, run.virtual_runtime, run.best_cost, run.improvement))
        result.tables[circuit] = format_table(
            ["sync mode", "virtual runtime (s)", "best cost", "improvement"],
            rows,
            title=(
                f"{circuit}: heterogeneous vs homogeneous sync "
                f"({num_tsws} TSWs x {clws_per_tsw} CLWs, 12-machine cluster)"
            ),
        )
    result.data["per_circuit"] = data
    return result


#: Registry used by the benchmark harness and the examples.
ALL_FIGURES = {
    "fig5": fig5_clw_quality,
    "fig6": fig6_clw_speedup,
    "fig7": fig7_tsw_quality,
    "fig8": fig8_tsw_speedup,
    "fig9": fig9_diversification,
    "fig10": fig10_local_vs_global,
    "fig11": fig11_heterogeneity,
}
