"""Experiment harness: one generator per figure of the paper's evaluation."""

from .figures import (
    ALL_FIGURES,
    FigureResult,
    fig5_clw_quality,
    fig6_clw_speedup,
    fig7_tsw_quality,
    fig8_tsw_speedup,
    fig9_diversification,
    fig10_local_vs_global,
    fig11_heterogeneity,
)
from .harness import (
    FULL_SCALE,
    QUICK_SCALE,
    ExperimentScale,
    circuits_for_scale,
    current_scale,
    params_for_circuit,
    run_configuration,
    trace_of,
)

__all__ = [
    "ALL_FIGURES",
    "FigureResult",
    "fig5_clw_quality",
    "fig6_clw_speedup",
    "fig7_tsw_quality",
    "fig8_tsw_speedup",
    "fig9_diversification",
    "fig10_local_vs_global",
    "fig11_heterogeneity",
    "ExperimentScale",
    "QUICK_SCALE",
    "FULL_SCALE",
    "circuits_for_scale",
    "current_scale",
    "params_for_circuit",
    "run_configuration",
    "trace_of",
]
