"""Deterministic random-number utilities shared across the library.

Every stochastic component of the reproduction (circuit generation, initial
placement, candidate-pair sampling, diversification, simulated machine load)
draws from a :class:`numpy.random.Generator` derived from an explicit seed so
that a whole parallel-tabu-search run is reproducible bit-for-bit.

The helpers here implement a tiny hierarchical-seeding scheme: a *root* seed
plus a tuple of labels (strings / integers) is hashed into a child seed.  This
allows e.g. each Candidate List Worker to own an independent stream that does
not depend on how many siblings exist or in which order they are spawned.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Union

import numpy as np

__all__ = ["derive_seed", "make_rng", "spawn_rng"]

SeedLabel = Union[int, str]


def derive_seed(root_seed: int, *labels: SeedLabel) -> int:
    """Derive a child seed from ``root_seed`` and a sequence of labels.

    The derivation is stable across processes and Python versions (it uses
    SHA-256 rather than ``hash()``, which is salted per interpreter run).

    Parameters
    ----------
    root_seed:
        The experiment-level seed.
    labels:
        Any mixture of strings and integers identifying the consumer, e.g.
        ``("tsw", 3, "clw", 1)``.

    Returns
    -------
    int
        A non-negative 63-bit integer suitable for seeding NumPy generators.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(root_seed)).encode("utf-8"))
    for label in labels:
        hasher.update(b"/")
        hasher.update(str(label).encode("utf-8"))
    digest = hasher.digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


def make_rng(root_seed: int, *labels: SeedLabel) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` for ``(root_seed, *labels)``."""
    return np.random.default_rng(derive_seed(root_seed, *labels))


def spawn_rng(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` statistically independent child generators from ``rng``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def as_labels(items: Iterable[SeedLabel]) -> tuple[SeedLabel, ...]:
    """Normalise an iterable of labels into a hashable tuple."""
    return tuple(items)
