"""Plain-text reporting helpers.

The benchmark harness prints the same rows/series the paper's figures show.
These helpers format aligned text tables and simple series without pulling in
any plotting dependency (the environment is offline); the output is meant to
be diffed, eyeballed and copied into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Union

__all__ = ["format_table", "format_series", "format_mapping"]

Cell = Union[str, int, float, None]


def _format_cell(value: Cell, float_format: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    *,
    float_format: str = ".4f",
    title: Optional[str] = None,
) -> str:
    """Render an aligned, pipe-separated text table."""
    rendered_rows: List[List[str]] = [
        [_format_cell(cell, float_format) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    xs: Sequence[Cell],
    ys: Sequence[Cell],
    *,
    x_label: str = "x",
    y_label: str = "y",
    float_format: str = ".4f",
    title: Optional[str] = None,
) -> str:
    """Render a two-column series (one figure line) as a text table."""
    if len(xs) != len(ys):
        raise ValueError(f"series lengths differ: {len(xs)} vs {len(ys)}")
    return format_table(
        [x_label, y_label], zip(xs, ys), float_format=float_format, title=title
    )


def format_mapping(
    mapping: Mapping[str, Cell], *, float_format: str = ".4f", title: Optional[str] = None
) -> str:
    """Render a flat key→value mapping as a two-column table."""
    return format_table(
        ["key", "value"], mapping.items(), float_format=float_format, title=title
    )
