"""Measurement utilities: traces, time-to-quality speedup and text reports."""

from .report import format_mapping, format_series, format_table
from .speedup import (
    SpeedupPoint,
    common_quality_threshold,
    speedup_curve,
    speedup_to_quality,
    time_to_quality,
)
from .trace import (
    CostTrace,
    FaultEvent,
    TransferStats,
    best_so_far_envelope,
    shift_times,
)

__all__ = [
    "CostTrace",
    "FaultEvent",
    "TransferStats",
    "best_so_far_envelope",
    "shift_times",
    "SpeedupPoint",
    "common_quality_threshold",
    "speedup_curve",
    "speedup_to_quality",
    "time_to_quality",
    "format_mapping",
    "format_series",
    "format_table",
]
