"""Speedup for non-deterministic algorithms: time-to-quality ratios.

Section 5 of the paper defines speedup for tabu search (a non-deterministic
algorithm) differently from the usual fixed-work definition::

    speedup(n, x) = t(1, x) / t(n, x)

where ``t(k, x)`` is the time needed to *first reach a solution of quality x*
using ``k`` workers.  This module implements that definition over
:class:`~repro.metrics.trace.CostTrace` objects plus the helpers the
experiments need: choosing a quality threshold every configuration actually
reached, and assembling the whole speedup curve of an experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import ExperimentError
from .trace import CostTrace

__all__ = [
    "SpeedupPoint",
    "time_to_quality",
    "speedup_to_quality",
    "common_quality_threshold",
    "speedup_curve",
]


@dataclass(frozen=True, slots=True)
class SpeedupPoint:
    """One point of a speedup curve."""

    workers: int
    threshold: float
    baseline_time: float
    time: Optional[float]
    speedup: Optional[float]


def time_to_quality(trace: CostTrace, threshold: float) -> Optional[float]:
    """Time at which ``trace`` first reaches cost ``threshold`` (or ``None``)."""
    return trace.time_to_reach(threshold)


def speedup_to_quality(
    baseline: CostTrace, parallel: CostTrace, threshold: float
) -> Optional[float]:
    """``t(1, x) / t(n, x)`` for quality ``x = threshold``.

    Returns ``None`` when either trace never reaches the threshold.  A zero
    baseline time (quality already met at the start) is treated as undefined
    as well — there is nothing to speed up.
    """
    t1 = baseline.time_to_reach(threshold)
    tn = parallel.time_to_reach(threshold)
    if t1 is None or tn is None:
        return None
    if t1 <= 0 or tn <= 0:
        return None
    return t1 / tn


def common_quality_threshold(
    traces: Iterable[CostTrace], *, slack: float = 0.0
) -> float:
    """A quality target that *every* given trace reaches.

    The natural choice is the worst of the per-trace best costs (so the
    slowest configuration still reaches it), optionally relaxed by a relative
    ``slack`` (e.g. ``slack=0.02`` targets a cost 2% above that).
    """
    traces = list(traces)
    if not traces:
        raise ExperimentError("common_quality_threshold needs at least one trace")
    if slack < 0:
        raise ExperimentError(f"slack must be non-negative, got {slack}")
    worst_best = max(trace.best_cost for trace in traces)
    return worst_best * (1.0 + slack)


def speedup_curve(
    traces_by_workers: Mapping[int, CostTrace],
    *,
    baseline_workers: int = 1,
    threshold: Optional[float] = None,
    slack: float = 0.0,
) -> List[SpeedupPoint]:
    """Speedup of every configuration relative to the baseline configuration.

    Parameters
    ----------
    traces_by_workers:
        Mapping from worker count (number of CLWs or TSWs) to the trace of
        that run.
    baseline_workers:
        The worker count used as ``t(1, x)`` — the paper uses one CLW (or one
        TSW).
    threshold:
        Quality target; defaults to a target every run reached
        (:func:`common_quality_threshold`).
    """
    if baseline_workers not in traces_by_workers:
        raise ExperimentError(
            f"baseline configuration ({baseline_workers} workers) missing from traces"
        )
    if threshold is None:
        threshold = common_quality_threshold(traces_by_workers.values(), slack=slack)
    baseline = traces_by_workers[baseline_workers]
    baseline_time = baseline.time_to_reach(threshold)
    if baseline_time is None:
        raise ExperimentError(
            "baseline trace does not reach the chosen threshold; "
            "pick a larger slack or a different threshold"
        )
    points: List[SpeedupPoint] = []
    for workers in sorted(traces_by_workers):
        trace = traces_by_workers[workers]
        t_n = trace.time_to_reach(threshold)
        speedup = None
        if t_n is not None and t_n > 0 and baseline_time > 0:
            speedup = baseline_time / t_n
        points.append(
            SpeedupPoint(
                workers=workers,
                threshold=threshold,
                baseline_time=baseline_time,
                time=t_n,
                speedup=speedup,
            )
        )
    return points
