"""Cost-versus-time traces.

Experiments observe a search through its *trace*: the best cost known at a
sequence of (virtual) time points.  :class:`CostTrace` wraps such a series
with the queries the experiments need — time-to-quality, final best, and a
monotone envelope (best-so-far) for plotting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ExperimentError

__all__ = [
    "CostTrace",
    "FaultEvent",
    "TransferStats",
    "best_so_far_envelope",
    "shift_times",
]


@dataclass(frozen=True)
class TransferStats:
    """Host↔device traffic observed by an accelerator backend.

    The :mod:`repro.accel` dispatch layer counts every explicit upload
    (``to_device``) and download (``to_host``) it performs on behalf of an
    evaluator, so a run can report how much of its wall clock went into
    PCIe traffic next to its cost trace.  On the CPU backend both arrays
    already live in host memory and every field stays zero — the counters
    therefore double as a proof that the NumPy path never copies.
    """

    bytes_to_device: int = 0
    bytes_to_host: int = 0
    transfers_to_device: int = 0
    transfers_to_host: int = 0
    seconds: float = 0.0

    def merged(self, other: "TransferStats") -> "TransferStats":
        """Combine two counters (e.g. per-evaluator stats into a run total)."""
        return TransferStats(
            bytes_to_device=self.bytes_to_device + other.bytes_to_device,
            bytes_to_host=self.bytes_to_host + other.bytes_to_host,
            transfers_to_device=self.transfers_to_device + other.transfers_to_device,
            transfers_to_host=self.transfers_to_host + other.transfers_to_host,
            seconds=self.seconds + other.seconds,
        )

    @property
    def total_bytes(self) -> int:
        """Bytes moved in either direction."""
        return self.bytes_to_device + self.bytes_to_host

    def as_dict(self) -> Dict[str, float]:
        """Plain mapping for reports and benchmark JSON payloads."""
        return {
            "bytes_to_device": self.bytes_to_device,
            "bytes_to_host": self.bytes_to_host,
            "transfers_to_device": self.transfers_to_device,
            "transfers_to_host": self.transfers_to_host,
            "seconds": self.seconds,
        }


@dataclass(frozen=True)
class FaultEvent:
    """One fault-related incident observed during a parallel run.

    Recorded by the fault-tolerant master (and the session layer for pool
    repairs) so a run's recovery trajectory is inspectable next to its cost
    trace.  ``kind`` is one of ``"worker-dead"``, ``"deadline-resend"``,
    ``"limplock"``, ``"range-reassigned"``, ``"worker-respawned"``,
    ``"worker-admitted"``, ``"worker-drained"`` or ``"all-workers-dead"``.
    """

    time: float
    kind: str
    worker: str
    detail: str = ""


def best_so_far_envelope(
    points: Iterable[Tuple[float, float]],
) -> Tuple[Tuple[float, float], ...]:
    """Monotone best-so-far reduction of raw ``(time, cost)`` pairs.

    Sorts by time and replaces each cost with the best seen so far — the
    merge step the master applies to its own trace plus all per-worker
    traces.  Exposed as a plain function so the session layer can stitch
    the envelopes of consecutive run segments without building a
    :class:`CostTrace` (which rejects empty series).
    """
    ordered = sorted((float(t), float(c)) for t, c in points)
    best = float("inf")
    out: List[Tuple[float, float]] = []
    for t, c in ordered:
        best = min(best, c)
        out.append((t, best))
    return tuple(out)


def shift_times(
    points: Iterable[Tuple[float, float]], offset: float
) -> Tuple[Tuple[float, float], ...]:
    """The same series with ``offset`` added to every time coordinate.

    Resuming a checkpoint under a fresh kernel restarts the clock at zero;
    shifting the resumed segment by the checkpointed end time keeps the
    stitched trace monotone in time.
    """
    return tuple((float(t) + float(offset), float(c)) for t, c in points)


@dataclass(frozen=True)
class CostTrace:
    """A best-cost-over-time series.

    Points are ``(time, cost)`` tuples with non-decreasing times.  The cost
    series does not have to be monotone (a raw per-iteration trace may go up
    and down); :meth:`envelope` derives the monotone best-so-far version.
    """

    points: Tuple[Tuple[float, float], ...]
    label: str = ""

    def __post_init__(self) -> None:
        if not self.points:
            raise ExperimentError(f"trace {self.label!r}: must contain at least one point")
        times = [t for t, _ in self.points]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ExperimentError(f"trace {self.label!r}: times must be non-decreasing")

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[float, float]], label: str = "") -> "CostTrace":
        """Build a trace from any iterable of ``(time, cost)`` pairs."""
        return cls(points=tuple((float(t), float(c)) for t, c in pairs), label=label)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.points)

    @property
    def times(self) -> Tuple[float, ...]:
        """The time coordinates."""
        return tuple(t for t, _ in self.points)

    @property
    def costs(self) -> Tuple[float, ...]:
        """The cost coordinates."""
        return tuple(c for _, c in self.points)

    @property
    def final_cost(self) -> float:
        """Cost at the last point."""
        return self.points[-1][1]

    @property
    def best_cost(self) -> float:
        """Lowest cost anywhere on the trace."""
        return min(c for _, c in self.points)

    @property
    def duration(self) -> float:
        """Time span covered by the trace."""
        return self.points[-1][0] - self.points[0][0]

    def envelope(self) -> "CostTrace":
        """Monotone best-so-far version of the trace."""
        best = float("inf")
        out: List[Tuple[float, float]] = []
        for t, c in self.points:
            best = min(best, c)
            out.append((t, best))
        return CostTrace(points=tuple(out), label=self.label)

    def time_to_reach(self, threshold: float) -> Optional[float]:
        """Earliest time at which the cost is at or below ``threshold``."""
        for t, c in self.points:
            if c <= threshold:
                return t
        return None

    def cost_at(self, time: float) -> float:
        """Best cost known at ``time`` (step interpolation; before start = first cost)."""
        best = self.points[0][1]
        found_any = False
        for t, c in self.points:
            if t <= time:
                best = min(best, c) if found_any else c
                found_any = True
            else:
                break
        if not found_any:
            return self.points[0][1]
        return best

    def resampled(self, times: Sequence[float]) -> "CostTrace":
        """Trace evaluated at the given time grid (best-so-far semantics)."""
        envelope = self.envelope()
        return CostTrace(
            points=tuple((float(t), envelope.cost_at(float(t))) for t in times),
            label=self.label,
        )
