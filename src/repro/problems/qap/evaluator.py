"""QAP swap evaluator and shared problem description.

:class:`QAPEvaluator` implements the full
:class:`~repro.core.protocols.SwapEvaluator` contract — the same surface the
placement :class:`~repro.placement.cost.CostEvaluator` exposes — so the
serial engine and the whole parallel stack (batched CLW trials, delta
protocol, shared-memory shipping) run QAP unchanged:

* **batch swap-delta kernel** — ``evaluate_swaps_batch(pairs)`` scores a
  whole candidate list with the classic O(n)-per-pair QAP delta, vectorised
  over the batch: for ``m`` pairs it gathers the ``(m, n)`` flow rows/columns
  of the swapped facilities and the matching distance rows of their
  locations, computes both rank-one correction sums in two fused array
  passes and fixes up the four corner terms — no Python loop over pairs,
  and nothing is mutated;
* **exact commits** — ``commit_swap`` advances the resident cost by the same
  delta; ``apply_swaps(..., exact_timing=True)`` (the delta-protocol adopt
  path) finishes with a from-scratch O(n^2) refresh so delta shipment and
  full shipment land in bit-identical states;
* **snapshots** — ``save_state``/``restore_state`` are two scalars and one
  array copy, which keeps compound-move rewinds cheap.

Costs are normalised by the problem's *reference* cost (a seeded random
solution scored once when the problem is built, mirroring the placement
domain's reference objective vector), so every worker of a parallel run
reports comparable O(1) costs and ``ParallelSearchResult.improvement`` means
the same thing in both domains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ... import accel
from ..._rng import make_rng
from ...errors import ReproError
from ...metrics.trace import TransferStats
from .instance import QAPInstance

__all__ = [
    "QAPObjectives",
    "QAPEvaluator",
    "QAPProblem",
    "deltas_for_swaps_reference",
    "restore_shared_qap",
]


@dataclass(frozen=True, slots=True)
class QAPObjectives:
    """Crisp objective values of a QAP solution (one objective: total flow cost)."""

    flow_cost: float

    def as_dict(self) -> Dict[str, float]:
        """Mapping from objective name to value (mirrors ``ObjectiveVector``)."""
        return {"flow_cost": self.flow_cost}


@dataclass(frozen=True, slots=True)
class QAPEvaluatorState:
    """Opaque snapshot of a :class:`QAPEvaluator` (``save_state`` output)."""

    assignment: np.ndarray
    raw_cost: float


class QAPEvaluator:
    """Incremental QAP cost of one facility→location permutation.

    Parameters
    ----------
    instance:
        The immutable flow/distance matrices.
    assignment:
        Initial permutation (``assignment[facility] = location``).
    reference_cost:
        Raw cost anchoring the normalised scalar cost; all workers of one
        run must share it.  Defaults to the initial assignment's cost.
    device:
        Where the batch kernel executes: ``"cpu"``, ``"cuda"`` or ``None``
        (defer to ``REPRO_DEVICE`` / the capability probe — see
        :mod:`repro.accel`).  On cuda the flow/distance matrices and the
        assignment live device-resident; per-call traffic is the sampled
        pair indices up and the batch deltas down (counted in
        :meth:`transfer_stats`).
    """

    def __init__(
        self,
        instance: QAPInstance,
        assignment: np.ndarray,
        *,
        reference_cost: Optional[float] = None,
        device: Optional[str] = None,
    ) -> None:
        self._instance = instance
        self._symmetric = instance.is_symmetric
        self._assignment = self._validated(assignment)
        self._raw = instance.cost_of(self._assignment)
        reference = self._raw if reference_cost is None else float(reference_cost)
        self._scale = 1.0 / max(reference, 1e-9)
        self._reference_cost = reference
        # The batch kernel runs through the accel dispatch layer: one
        # resolved backend holding the (m, n) scratch packs — keyed by batch
        # size, the driver only alternates between a handful of sizes — and,
        # on cuda, the device-resident problem state.
        self._xb = accel.ArrayBackend(device)
        if self._xb.is_cuda:  # pragma: no cover - exercised only with a GPU
            self._dev_flow = self._xb.to_device(instance.flow)
            self._dev_dist = self._xb.to_device(instance.distance)
            self._dev_assignment = self._xb.to_device(self._assignment)
        else:
            self._dev_flow = instance.flow
            self._dev_dist = instance.distance
            self._dev_assignment = self._assignment
        #: Number of swap evaluations performed (trials + commits); the
        #: simulated cluster charges this as the work a process consumed.
        self.evaluations: int = 0

    def _validated(self, assignment: np.ndarray) -> np.ndarray:
        arr = np.asarray(assignment, dtype=np.int64).copy()
        n = self._instance.n
        if arr.shape != (n,):
            raise ReproError(f"assignment must have shape ({n},), got {arr.shape}")
        if arr.min(initial=0) < 0 or arr.max(initial=-1) >= n:
            raise ReproError("assignment contains out-of-range locations")
        if len(np.unique(arr)) != n:
            raise ReproError("assignment maps two facilities to one location")
        return arr

    # ------------------------------------------------------------------ #
    # identity
    # ------------------------------------------------------------------ #
    @property
    def instance(self) -> QAPInstance:
        """The immutable problem data."""
        return self._instance

    @property
    def num_cells(self) -> int:
        """Number of swappable items (facilities)."""
        return self._instance.n

    @property
    def instance_name(self) -> str:
        """Instance name (seeds worker RNG streams)."""
        return self._instance.name

    @property
    def assignment(self) -> np.ndarray:
        """Facility → location permutation (read-only view)."""
        view = self._assignment.view()
        view.flags.writeable = False
        return view

    @property
    def reference_cost(self) -> float:
        """Raw cost anchoring the normalised scalar cost."""
        return self._reference_cost

    # ------------------------------------------------------------------ #
    # cost
    # ------------------------------------------------------------------ #
    def raw_cost(self) -> float:
        """Unnormalised QAP objective of the current solution."""
        return self._raw

    def cost(self) -> float:
        """Scalar cost (raw cost over the reference; lower is better)."""
        return self._raw * self._scale

    def exact_cost(self) -> float:
        """Scalar cost with the resident raw cost refreshed from scratch.

        Commits advance the raw cost by floating-point deltas; the refresh
        makes this evaluator's state canonical again (the master uses it to
        re-score candidate solutions with one authoritative cost).
        """
        self._raw = self._instance.cost_of(self._assignment)
        return self.cost()

    def objectives(self) -> QAPObjectives:
        """Crisp objective values of the current solution."""
        return QAPObjectives(flow_cost=self._raw)

    # ------------------------------------------------------------------ #
    # the batched swap-delta kernel
    # ------------------------------------------------------------------ #
    def _scratch_for(self, batch_size: int) -> Tuple[np.ndarray, ...]:
        """Four reusable float64 ``(batch_size, n)`` buffers for the kernel.

        One pooled ``(4, m, n)`` block per batch size from the backend's
        scratch pool (the driver only ever uses a handful of sizes), sliced
        into the four named buffers — on cuda the block is device memory,
        so steady-state evaluation allocates nothing on either side.
        """
        block = self._xb.scratch(
            ("qap-deltas", batch_size), (4, batch_size, self._instance.n)
        )
        return block[0], block[1], block[2], block[3]

    def _sync_device_assignment(self, cells=None) -> None:
        """Refresh the backend-space assignment after a host-side mutation.

        On the CPU backend the device array *is* the host array — only a
        rebind (``install_solution``) needs re-aliasing.  On cuda, pass the
        mutated ``cells`` to scatter just those entries (the accepted swap
        is the only per-iteration upload); ``None`` re-ships the whole
        permutation (installs, restores).
        """
        if not self._xb.is_cuda:
            self._dev_assignment = self._assignment
            return
        if cells is not None:  # pragma: no cover - cupy only
            idx = self._xb.to_device(np.asarray(cells, dtype=np.int64))
            self._dev_assignment[idx] = self._xb.to_device(
                self._assignment[np.asarray(cells, dtype=np.int64)]
            )
        else:  # pragma: no cover - cupy only
            self._dev_assignment = self._xb.to_device(self._assignment)

    def transfer_stats(self) -> TransferStats:
        """Host↔device traffic this evaluator has caused (all-zero on CPU)."""
        return self._xb.transfer_stats()

    @property
    def device(self) -> str:
        """Resolved execution device of the batch kernel (``cpu``/``cuda``)."""
        return self._xb.device

    def deltas_for_swaps(self, cells_a: np.ndarray, cells_b: np.ndarray) -> np.ndarray:
        """Raw-cost deltas of swapping each ``(cells_a[i], cells_b[i])`` pair.

        The classic QAP swap delta, vectorised over the batch: with
        ``ra/rb`` the current locations of the swapped facilities and ``p``
        the permutation,

        .. math::
            \\Delta = \\sum_{k \\ne a,b} (F_{ak}-F_{bk})(D_{r_b p_k}-D_{r_a p_k})
                    + \\sum_{k \\ne a,b} (F_{ka}-F_{kb})(D_{p_k r_b}-D_{p_k r_a})
                    + \\text{corner terms for } i,j \\in \\{a, b\\}

        Each pair costs O(n); the whole batch runs as a handful of ``(m, n)``
        array operations in :func:`repro.accel.kernels.qap_swap_deltas` —
        the xp-generic kernel shared with the cuda backend, staged through
        the backend's pooled scratch packs (:meth:`_scratch_for`).  Under
        NumPy the operations and reduction order are exactly the direct
        kernel's, pinned bit-identical against
        :func:`deltas_for_swaps_reference`; on cuda only the sampled pair
        indices go up and the O(m) deltas come down.  Self-pairs get a
        zero delta.
        """
        a = np.asarray(cells_a, dtype=np.int64)
        b = np.asarray(cells_b, dtype=np.int64)
        if a.size == 0:
            return np.zeros(0, dtype=np.float64)
        p = self._assignment
        ra = p[a]
        rb = p[b]
        xb = self._xb
        deltas = accel.qap_swap_deltas(
            xb,
            self._dev_flow,
            self._dev_dist,
            self._dev_assignment,
            xb.to_device(a),
            xb.to_device(b),
            xb.to_device(ra),
            xb.to_device(rb),
            symmetric=self._symmetric,
            scratch=self._scratch_for(int(a.size)),
        )
        return xb.to_host(deltas)

    def evaluate_swaps_batch(self, pairs) -> np.ndarray:
        """Costs the solution would have under each candidate swap of a batch.

        Semantics match the protocol (and the placement evaluator): each
        pair is scored independently against the current solution, nothing
        is mutated, an empty batch returns an empty array, and self-pairs
        report the current cost without counting as work.
        """
        arr = np.asarray(pairs, dtype=np.int64)
        if arr.size == 0:
            return np.zeros(0, dtype=np.float64)
        arr = arr.reshape(-1, 2)
        cells_a = arr[:, 0]
        cells_b = arr[:, 1]
        self.evaluations += int(np.count_nonzero(cells_a != cells_b))
        deltas = self.deltas_for_swaps(cells_a, cells_b)
        return (self._raw + deltas) * self._scale

    def evaluate_swap(self, cell_a: int, cell_b: int) -> float:
        """Single-pair call into :meth:`evaluate_swaps_batch` (bit-identical)."""
        return float(
            self.evaluate_swaps_batch(np.array([[cell_a, cell_b]], dtype=np.int64))[0]
        )

    def swap_gain(self, cell_a: int, cell_b: int) -> float:
        """Cost reduction achieved by swapping (positive = improvement)."""
        return self.cost() - self.evaluate_swap(cell_a, cell_b)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def commit_swap(self, cell_a: int, cell_b: int) -> float:
        """Apply the swap, advance the resident cost, return the new cost."""
        if cell_a == cell_b:
            return self.cost()
        self.evaluations += 1
        self._raw += float(
            self.deltas_for_swaps(
                np.array([cell_a], dtype=np.int64), np.array([cell_b], dtype=np.int64)
            )[0]
        )
        assignment = self._assignment
        assignment[cell_a], assignment[cell_b] = assignment[cell_b], assignment[cell_a]
        if self._xb.is_cuda:  # pragma: no cover - cupy only
            self._sync_device_assignment((cell_a, cell_b))
        return self.cost()

    def apply_swaps(self, pairs, *, exact_timing: bool = False) -> float:
        """Commit a short swap sequence against the resident state.

        The delta form of the parallel protocol.  With ``exact_timing=True``
        the raw cost is refreshed from scratch afterwards, so the evaluator
        lands in the same state a full :meth:`install_solution` of the target
        would produce — delta shipment and full shipment are interchangeable
        — and the adoption does not count as search work.  Without it, each
        swap counts as one evaluation and the cost advances by deltas only.
        """
        arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        if arr.size:
            arr = arr[arr[:, 0] != arr[:, 1]]
        if arr.size == 0:
            if exact_timing:
                self._raw = self._instance.cost_of(self._assignment)
            return self.cost()
        if not exact_timing:
            self.evaluations += len(arr)
        assignment = self._assignment
        for cell_a, cell_b in arr.tolist():
            if not exact_timing:
                self._raw += float(
                    self.deltas_for_swaps(
                        np.array([cell_a], dtype=np.int64),
                        np.array([cell_b], dtype=np.int64),
                    )[0]
                )
            assignment[cell_a], assignment[cell_b] = assignment[cell_b], assignment[cell_a]
            if self._xb.is_cuda:  # pragma: no cover - cupy only
                self._sync_device_assignment((cell_a, cell_b))
        if exact_timing:
            self._raw = self._instance.cost_of(self._assignment)
        return self.cost()

    def undo_swaps(self, pairs) -> float:
        """Reverse a committed swap sequence (a swap is its own inverse).

        Re-applies the pairs in reverse order, restoring the assignment
        exactly; the resident cost advances by the reverse deltas, so it
        matches the prior cost up to floating-point re-accumulation (use
        :meth:`save_state`/:meth:`restore_state` for bit-exact rewinds —
        the search drivers do).  Does not count as search work.
        """
        arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)[::-1]
        evaluations = self.evaluations
        cost = self.apply_swaps(arr)
        self.evaluations = evaluations
        return cost

    def install_solution(self, assignment: np.ndarray) -> float:
        """Adopt a whole new assignment (e.g. received from another worker)."""
        self._assignment = self._validated(assignment)
        self._raw = self._instance.cost_of(self._assignment)
        self._sync_device_assignment()
        return self.cost()

    def rebuild(self) -> None:
        """Recompute the resident cost from the current assignment."""
        self._raw = self._instance.cost_of(self._assignment)

    # ------------------------------------------------------------------ #
    # snapshots
    # ------------------------------------------------------------------ #
    def snapshot(self) -> np.ndarray:
        """Copy of the current assignment, suitable for message passing."""
        return self._assignment.copy()

    def save_state(self) -> QAPEvaluatorState:
        """Snapshot the assignment and the resident cost (cheap)."""
        return QAPEvaluatorState(
            assignment=self._assignment.copy(), raw_cost=self._raw
        )

    def restore_state(self, state: QAPEvaluatorState) -> None:
        """Rewind to a :meth:`save_state` snapshot (``evaluations`` stays)."""
        self._assignment[:] = state.assignment
        self._raw = state.raw_cost
        if self._xb.is_cuda:  # pragma: no cover - cupy only
            self._sync_device_assignment()

    # ------------------------------------------------------------------ #
    # neighbourhood hooks / self-checks
    # ------------------------------------------------------------------ #
    def diversification_distances(
        self, cell: int, candidates: np.ndarray
    ) -> np.ndarray:
        """Location distance from ``cell``'s location to each candidate's.

        Symmetrised so asymmetric distance matrices still yield a meaningful
        "how far apart are these two facilities right now" measure.
        """
        candidates = np.asarray(candidates, dtype=np.int64)
        dist = self._instance.distance
        here = self._assignment[cell]
        there = self._assignment[candidates]
        return 0.5 * (dist[here, there] + dist[there, here])

    def verify_consistency(self, *, atol: float = 1e-6) -> None:
        """Check the resident cost against a from-scratch recomputation."""
        exact = self._instance.cost_of(self._assignment)
        if abs(exact - self._raw) > atol * max(1.0, abs(exact)):
            raise ReproError(
                f"QAP cost drift: resident={self._raw}, exact={exact}"
            )
        if len(np.unique(self._assignment)) != self._instance.n:
            raise ReproError("assignment is no longer a permutation")


# ---------------------------------------------------------------------- #
# the shared problem description
# ---------------------------------------------------------------------- #
@dataclass(frozen=True, slots=True)
class QAPProblem:
    """Immutable QAP problem instance shared by all search processes."""

    instance: QAPInstance
    #: Raw cost of the seeded reference solution; anchors every worker's
    #: normalised scalar cost (the placement domain's reference vector
    #: plays the same role).
    reference_cost: float

    @classmethod
    def from_instance(
        cls, instance: QAPInstance, *, reference_seed: int = 0
    ) -> "QAPProblem":
        """Build a problem, deriving the reference from a random solution."""
        reference = instance.cost_of(
            _random_assignment(instance, seed=reference_seed)
        )
        return cls(instance=instance, reference_cost=float(reference))

    @property
    def name(self) -> str:
        """Instance name."""
        return self.instance.name

    @property
    def num_cells(self) -> int:
        """Number of swappable items (facilities)."""
        return self.instance.n

    def make_evaluator(
        self, assignment: np.ndarray, *, device: Optional[str] = None
    ) -> QAPEvaluator:
        """Build a private evaluator for a worker, bound to ``assignment``."""
        return QAPEvaluator(
            self.instance,
            assignment,
            reference_cost=self.reference_cost,
            device=device,
        )

    def random_solution(self, seed: int) -> np.ndarray:
        """A deterministic random permutation (used by the master)."""
        return _random_assignment(self.instance, seed=seed)

    def install_work_units(self) -> float:
        """Work units charged for installing a received full solution.

        A full install recomputes the O(n^2) objective; the scaling keeps
        the simulated work accounting consistent with the per-swap charges
        (one O(n) swap evaluation == one work unit).
        """
        return max(2.0, self.instance.n / 8.0)

    def adopt_work_units(self, num_swaps: int) -> float:
        """Work units charged for applying a swap-list delta (capped at a
        full install, beyond which the sender ships full anyway)."""
        return min(self.install_work_units(), max(1.0, float(2 * num_swaps)))

    # ------------------------------------------------------------------ #
    # shared-memory shipment (multiprocessing backend)
    # ------------------------------------------------------------------ #
    def __shm_export__(self):
        """Opt in to shared-memory spawn shipment (see :mod:`repro.pvm.shm`).

        The two ``n x n`` matrices go into one shared block; workers rebuild
        the problem around the attached read-only views with zero copies.
        """
        arrays = {"flow": self.instance.flow, "distance": self.instance.distance}
        meta = {"name": self.instance.name, "reference_cost": self.reference_cost}
        return arrays, meta, f"{__name__}:restore_shared_qap"


def restore_shared_qap(arrays, meta) -> QAPProblem:
    """Rebuild a :class:`QAPProblem` from a shared-memory array pack."""
    instance = QAPInstance(
        name=meta["name"], flow=arrays["flow"], distance=arrays["distance"]
    )
    return QAPProblem(instance=instance, reference_cost=meta["reference_cost"])


def _random_assignment(instance: QAPInstance, *, seed: int) -> np.ndarray:
    rng = make_rng(seed, "qap-initial", instance.name)
    return rng.permutation(instance.n).astype(np.int64)


# ---------------------------------------------------------------------- #
# frozen reference kernel
# ---------------------------------------------------------------------- #
def deltas_for_swaps_reference(
    evaluator: QAPEvaluator,
    cells_a: np.ndarray,
    cells_b: np.ndarray,
    scratch: Optional[Tuple[np.ndarray, ...]] = None,
) -> np.ndarray:
    """The pre-dispatch direct NumPy swap-delta kernel, frozen verbatim.

    This is the kernel body :meth:`QAPEvaluator.deltas_for_swaps` shipped
    before the accel layer existed, kept as the bit-identity oracle: the
    backend-parameterised contract battery pins the xp-generic kernel
    against it under NumPy, and ``benchmarks/bench_gpu_kernels.py`` uses it
    as the dispatch-tax baseline.  It reads the evaluator's host-side state
    directly and never touches the accel layer.  Pass ``scratch`` (four
    ``(m, n)`` float64 buffers) to measure steady-state cost; omitted, the
    buffers are allocated fresh.
    """
    a = np.asarray(cells_a, dtype=np.int64)
    b = np.asarray(cells_b, dtype=np.int64)
    if a.size == 0:
        return np.zeros(0, dtype=np.float64)
    flow = evaluator.instance.flow
    dist = evaluator.instance.distance
    p = evaluator.assignment
    ra = p[a]
    rb = p[b]

    if scratch is None:
        shape = (int(a.size), evaluator.instance.n)
        scratch = tuple(np.empty(shape, dtype=np.float64) for _ in range(4))
    buf0, buf1, buf2, buf3 = scratch
    # row sums: sum_k (F[a,k] - F[b,k]) * (D[rb,p(k)] - D[ra,p(k)])
    np.take(flow, a, axis=0, out=buf0)
    np.take(flow, b, axis=0, out=buf1)
    np.subtract(buf0, buf1, out=buf0)                            # flow rows
    np.take(dist, rb, axis=0, out=buf1)
    np.take(buf1, p, axis=1, out=buf2)
    np.take(dist, ra, axis=0, out=buf1)
    np.take(buf1, p, axis=1, out=buf3)
    np.subtract(buf2, buf3, out=buf2)                            # dist rows
    row_sum = np.einsum("ij,ij->i", buf0, buf2)
    if evaluator._symmetric:
        # F = F^T and D = D^T make the column sums equal to the row sums
        # term-by-term — same values reduced in the same order
        col_sum = row_sum.copy()
    else:
        # column sums: sum_k (F[k,a] - F[k,b]) * (D[p(k),rb] - D[p(k),ra])
        flow_cols = (flow[:, a] - flow[:, b]).T                      # (m, n)
        dist_cols = (dist[np.ix_(p, rb)] - dist[np.ix_(p, ra)]).T    # (m, n)
        col_sum = np.einsum("ij,ij->i", flow_cols, dist_cols)

    # the k = a and k = b terms do not belong in the sums above ...
    f_aa, f_ab = flow[a, a], flow[a, b]
    f_ba, f_bb = flow[b, a], flow[b, b]
    d_aa, d_ab = dist[ra, ra], dist[ra, rb]
    d_ba, d_bb = dist[rb, ra], dist[rb, rb]
    row_sum -= (f_aa - f_ba) * (d_ba - d_aa) + (f_ab - f_bb) * (d_bb - d_ab)
    col_sum -= (f_aa - f_ab) * (d_ab - d_aa) + (f_ba - f_bb) * (d_bb - d_ba)
    # ... they enter exactly once as the four corner terms instead
    corners = (
        f_aa * (d_bb - d_aa)
        + f_bb * (d_aa - d_bb)
        + f_ab * (d_ba - d_ab)
        + f_ba * (d_ab - d_ba)
    )
    deltas = row_sum + col_sum + corners
    deltas[a == b] = 0.0
    return deltas
