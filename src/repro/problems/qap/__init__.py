"""Quadratic assignment problem (QAP) as a registered search domain.

The second full workload of the domain-agnostic core: QAPLIB-format
instances (plus deterministic synthetic ones), a vectorised O(n)-per-pair
batch swap-delta evaluator, and the immutable :class:`QAPProblem` the
parallel stack ships to its workers — including shared-memory shipment on
the multiprocessing backend.  See :mod:`repro.problems.qap.instance` and
:mod:`repro.problems.qap.evaluator`.

Importing this module registers the ``"qap"`` domain::

    from repro.core import get_domain
    problem = get_domain("qap").build_problem("rand64")
"""

from __future__ import annotations

from typing import Optional

from ...core.registry import ProblemDomain, register_domain
from ...errors import ReproError
from .evaluator import QAPEvaluator, QAPObjectives, QAPProblem, restore_shared_qap
from .instance import (
    QAPInstance,
    format_qaplib,
    generate_qap,
    load_qap,
    parse_qaplib,
    read_qaplib,
    synthetic_instance_names,
    write_qaplib,
)

__all__ = [
    "QAPInstance",
    "QAPEvaluator",
    "QAPObjectives",
    "QAPProblem",
    "parse_qaplib",
    "read_qaplib",
    "format_qaplib",
    "write_qaplib",
    "generate_qap",
    "load_qap",
    "synthetic_instance_names",
    "build_qap_problem",
    "restore_shared_qap",
]


def build_qap_problem(
    instance,
    *,
    cost_params: Optional[object] = None,
    reference_seed: int = 0,
) -> QAPProblem:
    """Registry entry point: build a QAP problem from an instance spec.

    ``instance`` is a ``rand<n>[-s<seed>]`` synthetic name, a QAPLIB ``.dat``
    path, or a :class:`QAPInstance`.  The QAP cost model has no tunable
    parameters; a non-``None`` ``cost_params`` is rejected rather than
    silently ignored.
    """
    if cost_params is not None:
        raise ReproError(
            "the qap domain takes no cost parameters; leave ParallelSearchParams.cost unset"
        )
    return QAPProblem.from_instance(load_qap(instance), reference_seed=reference_seed)


register_domain(
    ProblemDomain(
        name="qap",
        description="quadratic assignment (QAPLIB format + synthetic instances)",
        build_problem=build_qap_problem,
        default_instance="rand64",
        list_instances=synthetic_instance_names,
    )
)
