"""QAP instances: QAPLIB format I/O and a synthetic generator.

The quadratic assignment problem places ``n`` facilities on ``n`` locations;
a solution is a permutation ``p`` (facility → location) and its cost is

.. math:: C(p) = \\sum_{i,j} F_{ij} \\cdot D_{p(i), p(j)}

with ``F`` the flow between facilities and ``D`` the distance between
locations.  This is the classic second workload for parallel tabu search
(Taillard's robust taboo search; Bukata et al.'s CUDA swap-delta kernels),
and its elementary move is the same two-item swap the placement engine is
built on — which is exactly why it makes a good conformance proof for the
domain-agnostic core.

Instances come from two sources:

* :func:`read_qaplib` / :func:`parse_qaplib` read the QAPLIB text format
  (``n`` followed by the two ``n x n`` matrices, whitespace separated; the
  first matrix plays the flow role ``A``, the second the distance role ``B``
  in the QAPLIB objective ``sum a_ij * b_{p(i) p(j)}``);
* :func:`generate_qap` builds deterministic synthetic instances (integer
  flows with controllable density, Manhattan distances of a square grid of
  locations), addressable by the names ``rand<n>`` / ``rand<n>-s<seed>``.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from ..._rng import make_rng
from ...errors import ReproError

__all__ = [
    "QAPInstance",
    "parse_qaplib",
    "read_qaplib",
    "format_qaplib",
    "write_qaplib",
    "generate_qap",
    "load_qap",
    "synthetic_instance_names",
]


@dataclass(frozen=True)
class QAPInstance:
    """One immutable QAP instance: flow and distance matrices."""

    name: str
    #: ``(n, n)`` flow between facilities (float64, non-negative).
    flow: np.ndarray
    #: ``(n, n)`` distance between locations (float64, non-negative).
    distance: np.ndarray

    def __post_init__(self) -> None:
        flow = np.asarray(self.flow, dtype=np.float64)
        distance = np.asarray(self.distance, dtype=np.float64)
        if flow.ndim != 2 or flow.shape[0] != flow.shape[1]:
            raise ReproError(f"flow matrix must be square, got {flow.shape}")
        if distance.shape != flow.shape:
            raise ReproError(
                f"distance matrix shape {distance.shape} does not match flow {flow.shape}"
            )
        if flow.shape[0] < 2:
            raise ReproError("QAP instance needs at least two facilities")
        object.__setattr__(self, "flow", flow)
        object.__setattr__(self, "distance", distance)
        object.__setattr__(
            self,
            "_symmetric",
            bool(
                np.array_equal(flow, flow.T)
                and np.array_equal(distance, distance.T)
            ),
        )

    @property
    def n(self) -> int:
        """Number of facilities (== number of locations)."""
        return int(self.flow.shape[0])

    @property
    def is_symmetric(self) -> bool:
        """Whether both matrices are symmetric (many QAPLIB instances are).

        Checked once at construction; the evaluator's delta kernel drops the
        mirrored column sums for symmetric instances (half the gathers).
        """
        return self._symmetric

    def cost_of(self, assignment: np.ndarray) -> float:
        """From-scratch cost of a facility→location permutation (O(n^2))."""
        p = np.asarray(assignment, dtype=np.int64)
        return float(np.sum(self.flow * self.distance[np.ix_(p, p)]))


# ---------------------------------------------------------------------- #
# QAPLIB text format
# ---------------------------------------------------------------------- #
def parse_qaplib(text: str, *, name: str = "qaplib") -> QAPInstance:
    """Parse the QAPLIB text format: ``n`` then two ``n x n`` matrices.

    Token-based (line breaks are insignificant, as in the real archive
    files).  The first matrix is read as the flow ``A`` and the second as
    the distance ``B`` of the QAPLIB objective ``sum a_ij * b_{p(i) p(j)}``.
    """
    tokens = text.split()
    if not tokens:
        raise ReproError("empty QAPLIB input")
    try:
        values = [float(token) for token in tokens]
    except ValueError as exc:
        raise ReproError(f"non-numeric token in QAPLIB input: {exc}") from None
    n = int(values[0])
    if n < 2 or n != values[0]:
        raise ReproError(f"invalid QAPLIB size {values[0]!r}")
    expected = 1 + 2 * n * n
    if len(values) != expected:
        raise ReproError(
            f"QAPLIB input for n={n} needs exactly {expected} numbers, got {len(values)}"
        )
    body = np.asarray(values[1:], dtype=np.float64)
    flow = body[: n * n].reshape(n, n)
    distance = body[n * n :].reshape(n, n)
    return QAPInstance(name=name, flow=flow, distance=distance)


def read_qaplib(path: Union[str, Path]) -> QAPInstance:
    """Read a QAPLIB ``.dat`` file from disk."""
    path = Path(path)
    return parse_qaplib(path.read_text(), name=path.stem)


def format_qaplib(instance: QAPInstance) -> str:
    """Render an instance in QAPLIB text format (inverse of :func:`parse_qaplib`)."""

    def matrix(values: np.ndarray) -> str:
        return "\n".join(
            " ".join(_format_number(v) for v in row) for row in values.tolist()
        )

    return f"{instance.n}\n\n{matrix(instance.flow)}\n\n{matrix(instance.distance)}\n"


def _format_number(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else repr(float(value))


def write_qaplib(instance: QAPInstance, path: Union[str, Path]) -> None:
    """Write an instance to disk in QAPLIB text format."""
    Path(path).write_text(format_qaplib(instance))


# ---------------------------------------------------------------------- #
# synthetic instances
# ---------------------------------------------------------------------- #
def generate_qap(
    n: int,
    *,
    seed: int = 0,
    flow_density: float = 0.5,
    max_flow: int = 9,
    symmetric: bool = True,
    name: Optional[str] = None,
) -> QAPInstance:
    """Deterministic synthetic instance: grid distances, sparse integer flows.

    Locations are the first ``n`` points of a ``ceil(sqrt(n))``-wide square
    grid walked row-major, and ``D`` is their Manhattan distance — a metric,
    like the real layout-inspired QAPLIB families.  Flows are integers in
    ``[1, max_flow]`` present with probability ``flow_density`` (diagonal
    zero), symmetrised unless ``symmetric=False`` — asymmetric instances
    exercise the general delta formula.
    """
    if n < 2:
        raise ReproError(f"need at least 2 facilities, got {n}")
    if not (0.0 < flow_density <= 1.0):
        raise ReproError(f"flow_density must be in (0, 1], got {flow_density}")
    if max_flow < 1:
        raise ReproError(f"max_flow must be >= 1, got {max_flow}")
    rng = make_rng(seed, "qap-generate", n, int(symmetric))
    flow = rng.integers(1, max_flow + 1, size=(n, n)).astype(np.float64)
    flow *= rng.random((n, n)) < flow_density
    np.fill_diagonal(flow, 0.0)
    if symmetric:
        upper = np.triu(flow, 1)
        flow = upper + upper.T
    side = math.ceil(math.sqrt(n))
    index = np.arange(n)
    x = index % side
    y = index // side
    distance = (
        np.abs(x[:, None] - x[None, :]) + np.abs(y[:, None] - y[None, :])
    ).astype(np.float64)
    if name is None:
        name = f"rand{n}" if seed == 0 else f"rand{n}-s{seed}"
    return QAPInstance(name=name, flow=flow, distance=distance)


#: Bundled synthetic instance names (all deterministic; any ``rand<n>`` works).
_SYNTHETIC = ("rand32", "rand64", "rand100")
_SYNTHETIC_RE = re.compile(r"^rand(\d+)(?:-s(\d+))?$")


def synthetic_instance_names() -> List[str]:
    """Names of the documented synthetic instances (any ``rand<n>`` resolves)."""
    return list(_SYNTHETIC)


def load_qap(spec: Union[str, Path, QAPInstance]) -> QAPInstance:
    """Resolve an instance spec: a ``rand<n>[-s<seed>]`` name or a QAPLIB file.

    Passing an already-built :class:`QAPInstance` returns it unchanged (the
    registry's ``build_problem`` accepts both forms, like the placement
    domain accepts a ``Netlist``).
    """
    if isinstance(spec, QAPInstance):
        return spec
    text = str(spec)
    match = _SYNTHETIC_RE.match(text)
    if match:
        n = int(match.group(1))
        seed = int(match.group(2) or 0)
        return generate_qap(n, seed=seed)
    path = Path(text)
    if path.suffix == ".dat" or path.exists():
        if not path.exists():
            raise ReproError(f"QAPLIB file not found: {path}")
        return read_qaplib(path)
    raise ReproError(
        f"unknown QAP instance {text!r}; use 'rand<n>[-s<seed>]' "
        f"(e.g. {', '.join(_SYNTHETIC)}) or a path to a QAPLIB .dat file"
    )
