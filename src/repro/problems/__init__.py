"""Problem domains for the domain-agnostic search core.

Each submodule implements the :class:`~repro.core.protocols.SearchProblem` /
:class:`~repro.core.protocols.SwapEvaluator` contract for one optimisation
problem and registers itself with :mod:`repro.core.registry` on import:

* :mod:`repro.problems.placement` — VLSI standard-cell placement with the
  paper's fuzzy multi-objective cost (the original reproduction workload,
  backed by :mod:`repro.placement`);
* :mod:`repro.problems.qap` — the quadratic assignment problem (QAPLIB
  format + synthetic instances), proving the same parallel stack on a second
  domain.

The engine packages (:mod:`repro.tabu`, :mod:`repro.parallel`) never import
this package; they see only the protocols.  Select a domain by name through
:func:`repro.core.get_domain` (what the CLI's ``--problem`` flag does).
"""

from ..core.registry import available_domains, get_domain, register_domain

__all__ = ["available_domains", "get_domain", "register_domain"]
