"""VLSI cell placement as a registered :class:`SearchProblem` domain.

This is the paper's original workload, packaged behind the domain-agnostic
core contract (:mod:`repro.core`):

* the :class:`~repro.placement.cost.CostEvaluator` is the domain's
  :class:`~repro.core.protocols.SwapEvaluator` (batched trial evaluation,
  bulk delta application, snapshot rewinds, geometric diversification
  distances);
* :class:`PlacementProblem` is the immutable
  :class:`~repro.core.protocols.SearchProblem` every process of a parallel
  run shares: the netlist, the layout geometry, the cost-model parameters
  and the *reference* objective vector that anchors the fuzzy goals
  (computed once by the master from the initial solution so that costs are
  comparable across processes).

In the real PVM implementation this data would be shipped to every spawned
task; in the single-OS-process simulation it is simply shared (it is never
mutated), which also keeps simulated message sizes realistic — the messages
carry only solutions, exactly as the paper describes.  The multiprocessing
backend does ship it: once per kernel through shared memory
(``__shm_export__``), with workers rebuilding around the attached arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.registry import ProblemDomain, register_domain
from ..placement.cost import CostEvaluator, CostModelParams, ObjectiveVector
from ..placement.iscas import benchmark_names, load_benchmark
from ..placement.layout import Layout, LayoutSpec
from ..placement.netlist import Netlist
from ..placement.solution import Placement, random_placement

__all__ = ["PlacementProblem", "restore_shared_problem", "build_placement_problem"]


@dataclass(frozen=True, slots=True)
class PlacementProblem:
    """Immutable placement problem instance shared by all search processes."""

    netlist: Netlist
    layout: Layout
    cost_params: CostModelParams
    reference: ObjectiveVector

    @classmethod
    def from_netlist(
        cls,
        netlist: Netlist,
        *,
        cost_params: Optional[CostModelParams] = None,
        layout_spec: Optional[LayoutSpec] = None,
        reference_seed: int = 0,
    ) -> "PlacementProblem":
        """Build a problem instance, deriving the reference from a random placement."""
        cost_params = cost_params or CostModelParams()
        layout = Layout(netlist, layout_spec)
        reference_placement = random_placement(layout, seed=reference_seed)
        reference_eval = CostEvaluator(reference_placement, cost_params)
        return cls(
            netlist=netlist,
            layout=layout,
            cost_params=cost_params,
            reference=reference_eval.objectives(),
        )

    @property
    def name(self) -> str:
        """Name of the circuit being placed."""
        return self.netlist.name

    @property
    def num_cells(self) -> int:
        """Number of cells in the circuit."""
        return self.netlist.num_cells

    def make_evaluator(
        self, cell_to_slot: np.ndarray, *, device: str | None = None
    ) -> CostEvaluator:
        """Build a private evaluator for a worker, bound to ``cell_to_slot``.

        Every worker calls this once at start-up; afterwards new solutions are
        installed through :meth:`CostEvaluator.install_solution`.
        """
        placement = Placement(self.layout, np.asarray(cell_to_slot, dtype=np.int64))
        return CostEvaluator(
            placement, self.cost_params, reference=self.reference, device=device
        )

    def random_solution(self, seed: int) -> np.ndarray:
        """A random initial assignment (used by the master)."""
        return random_placement(self.layout, seed=seed).to_array()

    def install_work_units(self) -> float:
        """Work units charged for unpacking and re-evaluating a received solution.

        Installing a solution rebuilds the wirelength/area caches and runs one
        exact timing analysis — roughly proportional to the number of nets.
        The constant keeps the simulated cost model consistent with the
        work-unit accounting of swap evaluations.
        """
        return max(2.0, self.netlist.num_nets / 50.0)

    def adopt_work_units(self, num_swaps: int) -> float:
        """Work units charged for applying a swap-list delta to the resident
        solution — proportional to the delta length, capped at a full
        install (beyond that the sender ships full anyway)."""
        return min(self.install_work_units(), max(1.0, float(2 * num_swaps)))

    # ------------------------------------------------------------------ #
    # shared-memory shipment (multiprocessing backend)
    # ------------------------------------------------------------------ #
    def __shm_export__(self):
        """Opt in to shared-memory spawn shipment (see :mod:`repro.pvm.shm`).

        All size-proportional state — the netlist CSR structures and the
        layout coordinate tables — goes into one shared block; the worker
        receives a handle plus the small name/parameter metadata and rebuilds
        the problem *around* the attached arrays with zero copies.
        """
        netlist_arrays, netlist_meta = self.netlist.export_arrays()
        layout_arrays, layout_meta = self.layout.export_arrays()
        arrays = {f"netlist.{key}": value for key, value in netlist_arrays.items()}
        arrays.update({f"layout.{key}": value for key, value in layout_arrays.items()})
        meta = {
            "netlist": netlist_meta,
            "layout": layout_meta,
            "cost_params": self.cost_params,
            "reference": self.reference,
        }
        return arrays, meta, f"{__name__}:restore_shared_problem"


def restore_shared_problem(arrays, meta) -> PlacementProblem:
    """Rebuild a :class:`PlacementProblem` from a shared-memory array pack."""
    netlist_arrays = {
        key.split(".", 1)[1]: value
        for key, value in arrays.items()
        if key.startswith("netlist.")
    }
    layout_arrays = {
        key.split(".", 1)[1]: value
        for key, value in arrays.items()
        if key.startswith("layout.")
    }
    netlist = Netlist.from_arrays(netlist_arrays, meta["netlist"])
    layout = Layout.from_arrays(netlist, layout_arrays, meta["layout"])
    return PlacementProblem(
        netlist=netlist,
        layout=layout,
        cost_params=meta["cost_params"],
        reference=meta["reference"],
    )


# ---------------------------------------------------------------------- #
# registry wiring
# ---------------------------------------------------------------------- #
def build_placement_problem(
    instance: str | Netlist,
    *,
    cost_params: Optional[CostModelParams] = None,
    reference_seed: int = 0,
) -> PlacementProblem:
    """Registry entry point: build a placement problem from a circuit name."""
    netlist = instance if isinstance(instance, Netlist) else load_benchmark(instance)
    return PlacementProblem.from_netlist(
        netlist, cost_params=cost_params, reference_seed=reference_seed
    )


def _list_instances() -> List[str]:
    return list(benchmark_names())


register_domain(
    ProblemDomain(
        name="placement",
        description="VLSI standard-cell placement, fuzzy multi-objective cost",
        build_problem=build_placement_problem,
        default_instance="c532",
        list_instances=_list_instances,
    )
)
