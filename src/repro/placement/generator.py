"""Synthetic circuit generator.

The paper evaluates on four ISCAS-89 standard-cell benchmarks: ``highway``
(56 cells), ``c532`` (395 cells), ``c1355`` (1451 cells) and ``c3540``
(2243 cells).  The original gate-level netlist files are not available in this
offline environment, so we generate *structurally comparable* circuits: the
same cell counts, realistic fan-in/fan-out distributions, a layered
(DAG-friendly) topology with mostly-local connectivity plus a tail of longer
connections — the properties that drive placement behaviour (wirelength
distribution, critical-path length, neighbourhood structure).

The generator is fully deterministic given its :class:`CircuitSpec` (which
includes a seed), so every experiment in the benchmark harness sees exactly
the same circuit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .._rng import make_rng
from ..errors import NetlistError
from .cell import CellKind
from .netlist import Netlist, NetlistBuilder

__all__ = ["CircuitSpec", "build_chain_netlist", "generate_circuit"]


def build_chain_netlist(num_gates: int = 6, name: str = "chain") -> Netlist:
    """A simple PI -> g0 -> g1 -> ... -> PO chain circuit.

    Handy for tests and examples because the critical path and wirelength are
    easy to reason about by hand: every gate has delay 1 and a slightly
    increasing width, so a chain of ``n`` gates has a zero-wire-delay critical
    path of exactly ``n``.
    """
    builder = NetlistBuilder(name)
    builder.add_cell("pi0", kind=CellKind.PRIMARY_INPUT, delay=0.0, width=1.0)
    previous = "pi0"
    for index in range(num_gates):
        gate = f"g{index}"
        builder.add_cell(gate, delay=1.0, width=1.0 + 0.1 * index)
        builder.add_net(f"n{index}", driver=previous, sinks=[gate])
        previous = gate
    builder.add_cell("po0", kind=CellKind.PRIMARY_OUTPUT, delay=0.0, width=1.0)
    builder.add_net("n_out", driver=previous, sinks=["po0"])
    return builder.build()


@dataclass(frozen=True, slots=True)
class CircuitSpec:
    """Parameters of a synthetic circuit.

    Attributes
    ----------
    name:
        Circuit name; also used to derive the RNG stream.
    num_cells:
        Total number of cells including primary I/O pads.
    seed:
        Root seed of the generator.
    input_fraction / output_fraction:
        Fraction of cells that are primary inputs / outputs.
    sequential_fraction:
        Fraction of internal cells that are flip-flops.
    avg_fanin:
        Average number of distinct driving cells per combinational gate.
    locality:
        In ``[0, 1]``; probability that a connection is drawn from the nearby
        preceding layer rather than uniformly from all preceding cells.
        Higher values produce more local (placeable) structure.
    min_cell_width / max_cell_width:
        Uniform range for cell widths.
    min_cell_delay / max_cell_delay:
        Uniform range for intrinsic gate delays.
    """

    name: str
    num_cells: int
    seed: int = 2003
    input_fraction: float = 0.08
    output_fraction: float = 0.08
    sequential_fraction: float = 0.10
    avg_fanin: float = 2.2
    locality: float = 0.75
    min_cell_width: float = 1.0
    max_cell_width: float = 4.0
    min_cell_delay: float = 0.5
    max_cell_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.num_cells < 8:
            raise NetlistError(f"circuit {self.name!r}: need at least 8 cells, got {self.num_cells}")
        if not (0.0 < self.input_fraction < 0.5):
            raise NetlistError(f"circuit {self.name!r}: input_fraction out of range")
        if not (0.0 < self.output_fraction < 0.5):
            raise NetlistError(f"circuit {self.name!r}: output_fraction out of range")
        if not (0.0 <= self.sequential_fraction < 1.0):
            raise NetlistError(f"circuit {self.name!r}: sequential_fraction out of range")
        if self.avg_fanin < 1.0:
            raise NetlistError(f"circuit {self.name!r}: avg_fanin must be >= 1")
        if not (0.0 <= self.locality <= 1.0):
            raise NetlistError(f"circuit {self.name!r}: locality must be in [0, 1]")
        if self.min_cell_width <= 0 or self.max_cell_width < self.min_cell_width:
            raise NetlistError(f"circuit {self.name!r}: invalid cell width range")
        if self.min_cell_delay < 0 or self.max_cell_delay < self.min_cell_delay:
            raise NetlistError(f"circuit {self.name!r}: invalid cell delay range")


def generate_circuit(spec: CircuitSpec) -> Netlist:
    """Generate a deterministic synthetic netlist matching ``spec``.

    The construction proceeds in three steps:

    1. decide the population: primary inputs, internal gates (a fraction of
       which are sequential), primary outputs;
    2. order the internal gates into an implicit topological order and wire
       each gate's fan-in from earlier cells, favouring nearby predecessors
       according to ``spec.locality``;
    3. connect each primary output to a late internal gate and make sure
       every cell drives or is driven by at least one net (no floating cells,
       which would make placement moves meaningless for them).
    """
    rng = make_rng(spec.seed, "circuit", spec.name, spec.num_cells)
    n = spec.num_cells
    n_in = max(2, int(round(n * spec.input_fraction)))
    n_out = max(2, int(round(n * spec.output_fraction)))
    n_internal = n - n_in - n_out
    if n_internal < 2:
        raise NetlistError(
            f"circuit {spec.name!r}: {n} cells leave only {n_internal} internal cells; "
            "reduce input/output fractions"
        )

    builder = NetlistBuilder(spec.name)

    # --- cells -----------------------------------------------------------
    widths = rng.uniform(spec.min_cell_width, spec.max_cell_width, size=n)
    delays = rng.uniform(spec.min_cell_delay, spec.max_cell_delay, size=n)

    input_indices: List[int] = []
    for i in range(n_in):
        idx = builder.add_cell(
            f"{spec.name}_pi{i}", width=float(widths[builder.num_cells]), delay=0.0,
            kind=CellKind.PRIMARY_INPUT,
        )
        input_indices.append(idx)

    internal_indices: List[int] = []
    seq_mask = rng.random(n_internal) < spec.sequential_fraction
    for i in range(n_internal):
        kind = CellKind.SEQUENTIAL if seq_mask[i] else CellKind.COMBINATIONAL
        idx = builder.add_cell(
            f"{spec.name}_g{i}", width=float(widths[builder.num_cells]),
            delay=float(delays[builder.num_cells]), kind=kind,
        )
        internal_indices.append(idx)

    output_indices: List[int] = []
    for i in range(n_out):
        idx = builder.add_cell(
            f"{spec.name}_po{i}", width=float(widths[builder.num_cells]), delay=0.0,
            kind=CellKind.PRIMARY_OUTPUT,
        )
        output_indices.append(idx)

    # --- nets: one net per driving cell ----------------------------------
    # Topological position of a cell = its position in `sources` below.
    sources: List[int] = list(input_indices) + list(internal_indices)
    fanin_targets: dict[int, List[int]] = {idx: [] for idx in internal_indices + output_indices}

    # wire internal gates
    for pos, gate in enumerate(internal_indices):
        # candidate drivers are all cells earlier in topological order
        horizon = n_in + pos  # number of cells strictly before this gate in `sources`
        k = max(1, int(round(rng.normal(spec.avg_fanin, 0.8))))
        k = min(k, horizon)
        chosen: set[int] = set()
        for _ in range(k):
            if rng.random() < spec.locality and horizon > 4:
                # pick from the nearby window of the last ~10% (at least 8) predecessors
                window = max(8, horizon // 10)
                lo = max(0, horizon - window)
                cand = int(rng.integers(lo, horizon))
            else:
                cand = int(rng.integers(0, horizon))
            chosen.add(sources[cand])
        fanin_targets[gate].extend(sorted(chosen))

    # wire primary outputs to late internal gates
    late_start = max(0, len(internal_indices) - max(4, len(internal_indices) // 4))
    for out in output_indices:
        pick = internal_indices[int(rng.integers(late_start, len(internal_indices)))]
        fanin_targets[out].append(pick)

    # invert: driver -> sinks
    sinks_of: dict[int, List[int]] = {}
    for sink, drivers in fanin_targets.items():
        for driver in drivers:
            sinks_of.setdefault(driver, []).append(sink)

    # ensure every input drives something and every internal gate drives something
    gate_cursor = 0
    for driver in input_indices + internal_indices:
        if driver not in sinks_of or not sinks_of[driver]:
            # attach to a pseudo-random later consumer (an output pad or later gate)
            later_gates = [g for g in internal_indices if g > driver]
            candidates = later_gates if later_gates else output_indices
            target = candidates[gate_cursor % len(candidates)]
            gate_cursor += 1
            if target == driver:
                target = output_indices[gate_cursor % len(output_indices)]
            sinks_of.setdefault(driver, []).append(target)

    # --- create nets ------------------------------------------------------
    cell_names = {idx: cell.name for idx, cell in enumerate(builder._cells)}  # noqa: SLF001
    net_count = 0
    for driver in sorted(sinks_of):
        sinks = sorted(set(sinks_of[driver]) - {driver})
        if not sinks:
            continue
        weight = 1.0 + float(rng.random()) * 0.5
        builder.add_net(
            f"{spec.name}_n{net_count}",
            driver=cell_names[driver],
            sinks=[cell_names[s] for s in sinks],
            weight=weight,
        )
        net_count += 1

    netlist = builder.build()
    if netlist.num_nets == 0:
        raise NetlistError(f"circuit {spec.name!r}: generator produced no nets")
    return netlist
