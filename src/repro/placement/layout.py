"""Row-based standard-cell layout geometry.

Standard-cell placement arranges cells in horizontal rows of equal height.
For an iterative swap-based optimizer it is customary to discretise the rows
into *slots*: a cell occupies exactly one slot and a *move* swaps the contents
of two slots.  The layout therefore provides

* the number of rows and slots-per-row (derived from the circuit size and a
  target aspect ratio),
* the physical ``(x, y)`` coordinate of every slot centre (vectorised NumPy
  arrays used by the wirelength and timing objectives), and
* the slot→row mapping used by the area objective.

The geometry is intentionally simple — uniform slot pitch equal to the
average cell width — because the paper's experiments measure *relative*
placement quality of the same cost model across parallelisation settings, not
absolute legality of a tape-out-ready placement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import LayoutError
from .netlist import Netlist

__all__ = ["LayoutSpec", "Layout"]


@dataclass(frozen=True, slots=True)
class LayoutSpec:
    """Parameters controlling layout construction.

    Attributes
    ----------
    aspect_ratio:
        Target height/width ratio of the placement region (1.0 = square).
    row_height:
        Physical height of a row in layout units.
    slot_utilization:
        Fraction of slots occupied by cells; must be in ``(0, 1]``.  Values
        below 1 leave empty slots, giving the optimizer extra freedom.
    """

    aspect_ratio: float = 1.0
    row_height: float = 4.0
    slot_utilization: float = 1.0

    def __post_init__(self) -> None:
        if self.aspect_ratio <= 0:
            raise LayoutError(f"aspect_ratio must be positive, got {self.aspect_ratio}")
        if self.row_height <= 0:
            raise LayoutError(f"row_height must be positive, got {self.row_height}")
        if not (0.0 < self.slot_utilization <= 1.0):
            raise LayoutError(f"slot_utilization must be in (0, 1], got {self.slot_utilization}")


class Layout:
    """Discretised row/slot geometry for a given netlist.

    Parameters
    ----------
    netlist:
        The circuit being placed; only its size and average cell width matter.
    spec:
        Geometry parameters; defaults give a roughly square region fully
        utilised by cells.
    """

    def __init__(self, netlist: Netlist, spec: LayoutSpec | None = None) -> None:
        self._netlist = netlist
        self._spec = spec or LayoutSpec()
        self._build()

    def _build(self) -> None:
        spec = self._spec
        n_cells = self._netlist.num_cells
        n_slots = int(math.ceil(n_cells / spec.slot_utilization))
        avg_width = float(self._netlist.cell_widths.mean())
        # choose rows such that (rows * row_height) / (slots_per_row * pitch) ~ aspect
        pitch = avg_width
        rows = max(1, int(round(math.sqrt(n_slots * spec.aspect_ratio * pitch / spec.row_height))))
        slots_per_row = int(math.ceil(n_slots / rows))
        n_slots = rows * slots_per_row
        if n_slots < n_cells:
            raise LayoutError(
                f"layout for {self._netlist.name!r}: {n_slots} slots < {n_cells} cells"
            )

        self._num_rows = rows
        self._slots_per_row = slots_per_row
        self._num_slots = n_slots
        self._slot_pitch = pitch

        slot_ids = np.arange(n_slots, dtype=np.int64)
        self._slot_row = slot_ids // slots_per_row
        slot_col = slot_ids % slots_per_row
        self._slot_x = (slot_col.astype(np.float64) + 0.5) * pitch
        self._slot_y = (self._slot_row.astype(np.float64) + 0.5) * spec.row_height
        for arr in (self._slot_row, self._slot_x, self._slot_y):
            arr.flags.writeable = False

    # ------------------------------------------------------------------ #
    # array (shared-memory) round trip
    # ------------------------------------------------------------------ #
    def export_arrays(self):
        """Geometry tables and scalar metadata for shared-memory shipment."""
        arrays = {
            "slot_x": self._slot_x,
            "slot_y": self._slot_y,
            "slot_row": self._slot_row,
        }
        meta = {
            "num_rows": self._num_rows,
            "slots_per_row": self._slots_per_row,
            "num_slots": self._num_slots,
            "slot_pitch": self._slot_pitch,
            "spec": self._spec,
        }
        return arrays, meta

    @classmethod
    def from_arrays(cls, netlist: Netlist, arrays, meta) -> "Layout":
        """Rebuild a layout around (possibly shared-memory) coordinate tables.

        Skips :meth:`_build` — the geometry arrays reference ``arrays``
        directly, so views into a shared block stay zero-copy.
        """
        layout = object.__new__(cls)
        layout._netlist = netlist
        layout._spec = meta["spec"]
        layout._num_rows = meta["num_rows"]
        layout._slots_per_row = meta["slots_per_row"]
        layout._num_slots = meta["num_slots"]
        layout._slot_pitch = meta["slot_pitch"]
        layout._slot_x = arrays["slot_x"]
        layout._slot_y = arrays["slot_y"]
        layout._slot_row = arrays["slot_row"]
        return layout

    # ------------------------------------------------------------------ #
    @property
    def netlist(self) -> Netlist:
        """The circuit this layout was built for."""
        return self._netlist

    @property
    def spec(self) -> LayoutSpec:
        """Geometry parameters."""
        return self._spec

    @property
    def num_rows(self) -> int:
        """Number of standard-cell rows."""
        return self._num_rows

    @property
    def slots_per_row(self) -> int:
        """Number of slots in each row."""
        return self._slots_per_row

    @property
    def num_slots(self) -> int:
        """Total number of slots (``num_rows * slots_per_row``)."""
        return self._num_slots

    @property
    def slot_pitch(self) -> float:
        """Horizontal distance between adjacent slot centres."""
        return self._slot_pitch

    @property
    def slot_x(self) -> np.ndarray:
        """x coordinate of each slot centre (read-only, length ``num_slots``)."""
        return self._slot_x

    @property
    def slot_y(self) -> np.ndarray:
        """y coordinate of each slot centre (read-only, length ``num_slots``)."""
        return self._slot_y

    @property
    def slot_row(self) -> np.ndarray:
        """Row index of each slot (read-only, length ``num_slots``)."""
        return self._slot_row

    @property
    def width(self) -> float:
        """Physical width of the placement region."""
        return self._slots_per_row * self._slot_pitch

    @property
    def height(self) -> float:
        """Physical height of the placement region."""
        return self._num_rows * self._spec.row_height

    def half_perimeter(self) -> float:
        """Half-perimeter of the whole region (upper bound scale for a net's HPWL)."""
        return self.width + self.height

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Layout(circuit={self._netlist.name!r}, rows={self._num_rows}, "
            f"slots_per_row={self._slots_per_row})"
        )
