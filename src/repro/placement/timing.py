"""Timing objective: critical-path delay via static timing analysis (STA).

The paper's placement cost includes "timing performance / circuit speed",
which is a function of cell delays and interconnection delays.  We model it in
the usual way:

* every cell has an intrinsic delay (0 for I/O pads, a clock-to-Q delay for
  flip-flops);
* every driver→sink connection has an interconnection delay proportional to
  the Manhattan distance between the two cells under the current placement;
* the *critical-path delay* is the longest data-arrival time at a timing
  endpoint (primary output or flip-flop data input), computed by propagating
  arrival times in topological order.

A full STA is O(cells + connections) and is exact, but too expensive to run
for every trial swap in the tabu-search inner loop.  :class:`TimingState`
therefore caches the most recent critical path and scores candidate swaps by
re-evaluating the cached path with the hypothetical positions — a standard
path-based surrogate: exact for moves touching the cached path, optimistic
otherwise.  The exact analysis is re-run when moves are committed (with a
configurable refresh interval) so the surrogate never drifts far.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CostModelError
from .cell import CellKind
from .netlist import Netlist
from .solution import Placement

__all__ = ["TimingModel", "TimingResult", "TimingAnalyzer", "TimingState"]


@dataclass(frozen=True, slots=True)
class TimingModel:
    """Parameters of the interconnect delay model.

    Attributes
    ----------
    wire_delay_per_unit:
        Delay contributed per unit of Manhattan distance between a driver and
        a sink.
    """

    wire_delay_per_unit: float = 0.05

    def __post_init__(self) -> None:
        if self.wire_delay_per_unit < 0:
            raise CostModelError(
                f"wire_delay_per_unit must be non-negative, got {self.wire_delay_per_unit}"
            )


@dataclass(frozen=True, slots=True)
class TimingResult:
    """Outcome of one exact static timing analysis."""

    critical_delay: float
    #: Arrival time at the output of every cell.
    arrival: np.ndarray
    #: Cells along the critical path, from start point to end point.
    critical_path: Tuple[int, ...]

    @property
    def path_length(self) -> int:
        """Number of cells on the critical path."""
        return len(self.critical_path)


class TimingAnalyzer:
    """Exact static timing analysis for a fixed netlist.

    The netlist connectivity never changes during placement, so the
    topological order, endpoint set and fan-in structure are computed once at
    construction; only the geometric wire delays depend on the placement.
    """

    def __init__(self, netlist: Netlist, model: TimingModel | None = None) -> None:
        self._netlist = netlist
        self._model = model or TimingModel()
        self._build_static_structure()

    def _build_static_structure(self) -> None:
        netlist = self._netlist
        n = netlist.num_cells
        kinds = [cell.kind for cell in netlist.cells]
        self._is_start = np.array([k.is_timing_start for k in kinds], dtype=bool)
        self._is_end = np.array([k.is_timing_end for k in kinds], dtype=bool)
        self._is_pi = np.array([k is CellKind.PRIMARY_INPUT for k in kinds], dtype=bool)
        self._is_seq = np.array([k is CellKind.SEQUENTIAL for k in kinds], dtype=bool)

        # Propagating fan-in: for every cell, the drivers whose arrival feeds
        # its own arrival.  Sequential cells do not propagate their fan-in
        # (paths end at their D input); their own arrival is just clk-to-Q.
        fanin: List[Tuple[int, ...]] = []
        for c in range(n):
            if self._is_start[c]:
                fanin.append(())
            else:
                fanin.append(netlist.fanin(c))
        self._prop_fanin = tuple(fanin)

        # Endpoint fan-in: data inputs of sequential cells and primary outputs.
        # (For primary outputs this is the same as the propagating fan-in.)
        self._end_fanin = tuple(
            netlist.fanin(c) if self._is_end[c] else () for c in range(n)
        )

        # Kahn topological sort over propagating edges.
        indegree = np.array([len(f) for f in self._prop_fanin], dtype=np.int64)
        consumers: List[List[int]] = [[] for _ in range(n)]
        for c in range(n):
            for d in self._prop_fanin[c]:
                consumers[d].append(c)
        queue = deque(int(c) for c in np.flatnonzero(indegree == 0))
        order: List[int] = []
        remaining = indegree.copy()
        while queue:
            c = queue.popleft()
            order.append(c)
            for consumer in consumers[c]:
                remaining[consumer] -= 1
                if remaining[consumer] == 0:
                    queue.append(consumer)
        if len(order) != n:
            raise CostModelError(
                f"netlist {netlist.name!r}: combinational cycle detected; "
                "static timing analysis requires an acyclic combinational graph"
            )
        self._topo_order = tuple(order)
        self._delays = netlist.cell_delays
        self._build_level_schedule()

    def _build_level_schedule(self) -> None:
        """Group cells into topological *levels* for the vectorised STA.

        All cells of one level depend only on strictly earlier levels, so a
        whole level's arrival times can be computed with one segmented
        gather/reduce instead of a Python loop over cells.  The schedule is
        placement-independent and built once.
        """
        n = self._netlist.num_cells
        level = np.zeros(n, dtype=np.int64)
        for c in self._topo_order:
            fanin = self._prop_fanin[c]
            if fanin:
                level[c] = 1 + max(int(level[d]) for d in fanin)
        # One flat edge list over all levels: the geometric edge delays are
        # arrival-independent, so one vectorised pass prices every edge up
        # front and the sequential per-level work shrinks to a gather, an add
        # and a segmented max.
        schedule = []
        max_level = int(level.max()) if n else 0
        edge_cursor = 0
        all_flat: List[np.ndarray] = []
        all_rep: List[np.ndarray] = []
        for lvl in range(1, max_level + 1):
            cells = np.flatnonzero(level == lvl)
            counts = np.array([len(self._prop_fanin[c]) for c in cells], dtype=np.int64)
            flat = np.concatenate(
                [np.asarray(self._prop_fanin[c], dtype=np.int64) for c in cells]
            ) if cells.size else np.zeros(0, dtype=np.int64)
            starts = np.zeros(cells.size, dtype=np.int64)
            if cells.size:
                np.cumsum(counts[:-1], out=starts[1:])
            edge_slice = slice(edge_cursor, edge_cursor + flat.size)
            edge_cursor += flat.size
            all_flat.append(flat)
            all_rep.append(np.repeat(cells, counts))
            schedule.append((cells, flat, starts, self._delays[cells], edge_slice))
        self._level_schedule = tuple(schedule)
        self._edge_src = (
            np.concatenate(all_flat) if all_flat else np.zeros(0, dtype=np.int64)
        )
        self._edge_dst = (
            np.concatenate(all_rep) if all_rep else np.zeros(0, dtype=np.int64)
        )
        # Scalar propagation schedule, aligned with the flat edge order: for
        # the paper-sized circuits a tight Python loop over *pre-vectorised*
        # edge delays beats per-level NumPy dispatch (tens of levels with a
        # handful of cells each); big flat circuits flip the other way.
        self._scalar_schedule = tuple(
            (int(c), self._prop_fanin[c])
            for cells, _flat, _starts, _delays, _sl in schedule
            for c in cells
        )
        self._delays_list = [float(d) for d in self._delays]
        # crossover measured on the paper circuits: ~2k edges
        self._use_scalar_propagation = self._edge_src.size < 2048
        # Endpoint CSR: data arrivals at POs / flip-flop D inputs.  Endpoints
        # are visited in index order and their fan-in in netlist order —
        # matching the reference loop so that first-maximum tie-breaking is
        # identical.
        end_cells = [c for c in np.flatnonzero(self._is_end) if self._end_fanin[c]]
        self._end_cells = np.asarray(end_cells, dtype=np.int64)
        if end_cells:
            self._end_counts = np.array(
                [len(self._end_fanin[c]) for c in end_cells], dtype=np.int64
            )
            self._end_flat = np.concatenate(
                [np.asarray(self._end_fanin[c], dtype=np.int64) for c in end_cells]
            )
        else:
            self._end_counts = np.zeros(0, dtype=np.int64)
            self._end_flat = np.zeros(0, dtype=np.int64)
        # Static endpoint replication (used to be rebuilt on every analyze).
        self._ends_rep = np.repeat(self._end_cells, self._end_counts)
        # Reusable scratch buffers for analyze(): allocated once on first
        # use, so a steady-state STA allocates O(1) fresh memory per call
        # (only the returned arrival copy) instead of O(cells + edges).
        self._scratch: dict | None = None

    def _make_scratch(self) -> dict:
        num_cells = self._netlist.num_cells
        num_edges = self._edge_src.size
        num_ends = self._end_flat.size
        return {
            "x": np.empty(num_cells, dtype=np.float64),
            "y": np.empty(num_cells, dtype=np.float64),
            "edge_delay": np.empty(num_edges, dtype=np.float64),
            "edge_tmp": np.empty(num_edges, dtype=np.float64),
            "edge_tmp2": np.empty(num_edges, dtype=np.float64),
            "arrival": np.empty(num_cells, dtype=np.float64),
            "levels": tuple(
                (
                    np.empty(flat.size, dtype=np.float64),
                    np.empty(cells.size, dtype=np.float64),
                )
                for cells, flat, _starts, _delays, _sl in self._level_schedule
            ),
            "end_a": np.empty(num_ends, dtype=np.float64),
            "end_b": np.empty(num_ends, dtype=np.float64),
            "end_c": np.empty(num_ends, dtype=np.float64),
        }

    @property
    def netlist(self) -> Netlist:
        """Netlist this analyzer was built for."""
        return self._netlist

    @property
    def model(self) -> TimingModel:
        """Interconnect delay model."""
        return self._model

    def wire_delay(self, x: np.ndarray, y: np.ndarray, driver: int, sink: int) -> float:
        """Interconnect delay between two cells given coordinate arrays."""
        dist = abs(float(x[driver] - x[sink])) + abs(float(y[driver] - y[sink]))
        return self._model.wire_delay_per_unit * dist

    # ------------------------------------------------------------------ #
    def analyze(self, placement: Placement) -> TimingResult:
        """Run an exact STA under ``placement`` and extract the critical path.

        Arrival times are propagated one topological *level* at a time with
        segmented NumPy reductions (see :meth:`_build_level_schedule`) —
        numerically identical to :meth:`analyze_reference` including
        first-maximum tie-breaking, but an order of magnitude faster on the
        paper circuits.  This is the cost that dominates installing a received
        solution, so the parallel protocol's per-hop overhead rides on it.
        All intermediate arrays live in per-analyzer scratch buffers, so a
        steady-state call allocates only the returned arrival copy — at 10k
        cells that is ~80 KB instead of several MB per STA.
        """
        scratch = self._scratch
        if scratch is None:
            scratch = self._scratch = self._make_scratch()
        cts = placement.cell_to_slot
        layout = placement.layout
        x = scratch["x"]
        y = scratch["y"]
        np.take(layout.slot_x, cts, out=x)
        np.take(layout.slot_y, cts, out=y)
        wpu = self._model.wire_delay_per_unit
        # all propagating edge delays in one vectorised pass
        edge_delay = scratch["edge_delay"]
        if self._edge_src.size:
            tmp = scratch["edge_tmp"]
            tmp2 = scratch["edge_tmp2"]
            np.take(x, self._edge_src, out=edge_delay)
            np.take(x, self._edge_dst, out=tmp)
            np.subtract(edge_delay, tmp, out=edge_delay)
            np.abs(edge_delay, out=edge_delay)
            np.take(y, self._edge_src, out=tmp)
            np.take(y, self._edge_dst, out=tmp2)
            np.subtract(tmp, tmp2, out=tmp)
            np.abs(tmp, out=tmp)
            np.add(edge_delay, tmp, out=edge_delay)
            np.multiply(edge_delay, wpu, out=edge_delay)
        # Cells without propagating fan-in arrive at their intrinsic delay;
        # every later level overwrites its own cells.
        if self._use_scalar_propagation:
            delays_list = self._delays_list
            arr = delays_list.copy()
            ed = edge_delay.tolist()
            index = 0
            for c, fanin in self._scalar_schedule:
                best = -np.inf
                for d in fanin:
                    t = arr[d] + ed[index]
                    index += 1
                    if t > best:
                        best = t
                arr[c] = best + delays_list[c]
            arrival = np.asarray(arr, dtype=np.float64)
        else:
            arrival = scratch["arrival"]
            arrival[:] = self._delays
            for (cells, flat, starts, cell_delays, edge_slice), (t_buf, red_buf) in zip(
                self._level_schedule, scratch["levels"]
            ):
                np.take(arrival, flat, out=t_buf)
                np.add(t_buf, edge_delay[edge_slice], out=t_buf)
                np.maximum.reduceat(t_buf, starts, out=red_buf)
                np.add(red_buf, cell_delays, out=red_buf)
                arrival[cells] = red_buf
            # the scratch buffer is overwritten by the next analyze; callers
            # (and TimingState snapshots) keep the result, so hand out a copy
            arrival = arrival.copy()

        critical_delay = 0.0
        critical_end = -1
        critical_end_pred = -1
        if self._end_flat.size:
            ends_rep = self._ends_rep
            end_t = scratch["end_a"]
            end_tmp = scratch["end_b"]
            end_tmp2 = scratch["end_c"]
            np.take(x, self._end_flat, out=end_t)
            np.take(x, ends_rep, out=end_tmp)
            np.subtract(end_t, end_tmp, out=end_t)
            np.abs(end_t, out=end_t)
            np.take(y, self._end_flat, out=end_tmp)
            np.take(y, ends_rep, out=end_tmp2)
            np.subtract(end_tmp, end_tmp2, out=end_tmp)
            np.abs(end_tmp, out=end_tmp)
            np.add(end_t, end_tmp, out=end_t)
            np.multiply(end_t, wpu, out=end_t)
            np.take(arrival, self._end_flat, out=end_tmp)
            np.add(end_t, end_tmp, out=end_t)
            imax = int(np.argmax(end_t))
            if float(end_t[imax]) > 0.0:
                critical_delay = float(end_t[imax])
                critical_end = int(ends_rep[imax])
                critical_end_pred = int(self._end_flat[imax])

        # Backtrack the critical path: the predecessor of a path cell is its
        # first fan-in attaining the arrival maximum, exactly the reference
        # loop's strict-greater scan.  The path is short (one cell per level
        # at most), so a scalar walk here costs nothing.  Small circuits
        # unbox the arrays once (fastest for their dense walks); large ones
        # index the arrays directly to stay O(path) instead of O(cells).
        path: List[int] = []
        if critical_end >= 0 and not self._use_scalar_propagation:
            path.append(critical_end)
            cursor = critical_end_pred
            while cursor >= 0:
                path.append(cursor)
                fanin = self._prop_fanin[cursor]
                if not fanin:
                    break
                xc = float(x[cursor])
                yc = float(y[cursor])
                best = -np.inf
                pred = -1
                for d in fanin:
                    t_d = float(arrival[d]) + wpu * (
                        abs(float(x[d]) - xc) + abs(float(y[d]) - yc)
                    )
                    if t_d > best:
                        best = t_d
                        pred = d
                cursor = pred
            path.reverse()
        elif critical_end >= 0:
            arrival_list = arrival.tolist()
            x_list = x.tolist()
            y_list = y.tolist()
            path.append(critical_end)
            cursor = critical_end_pred
            while cursor >= 0:
                path.append(cursor)
                fanin = self._prop_fanin[cursor]
                if not fanin:
                    break
                xc = x_list[cursor]
                yc = y_list[cursor]
                best = -np.inf
                pred = -1
                for d in fanin:
                    t_d = arrival_list[d] + wpu * (
                        abs(x_list[d] - xc) + abs(y_list[d] - yc)
                    )
                    if t_d > best:
                        best = t_d
                        pred = d
                cursor = pred
            path.reverse()
        return TimingResult(
            critical_delay=float(critical_delay),
            arrival=arrival,
            critical_path=tuple(path),
        )

    def analyze_reference(self, placement: Placement) -> TimingResult:
        """Reference scalar STA (the pre-vectorisation implementation).

        Kept as the correctness oracle for :meth:`analyze`: the equivalence
        test drives both over random placements and asserts identical arrival
        times, critical delay and critical path.
        """
        x = placement.cell_x()
        y = placement.cell_y()
        n = self._netlist.num_cells
        arrival = np.zeros(n, dtype=np.float64)
        best_pred = np.full(n, -1, dtype=np.int64)
        wpu = self._model.wire_delay_per_unit
        delays = self._delays
        for c in self._topo_order:
            fanin = self._prop_fanin[c]
            if fanin:
                best = -np.inf
                pred = -1
                xc = x[c]
                yc = y[c]
                for d in fanin:
                    t = arrival[d] + wpu * (abs(x[d] - xc) + abs(y[d] - yc))
                    if t > best:
                        best = t
                        pred = d
                arrival[c] = best + delays[c]
                best_pred[c] = pred
            else:
                arrival[c] = delays[c]

        # Data arrival at endpoints: max over endpoint fan-in of
        # arrival(driver) + wire(driver, endpoint).
        critical_delay = 0.0
        critical_end = -1
        critical_end_pred = -1
        for c in np.flatnonzero(self._is_end):
            fanin = self._end_fanin[c]
            if not fanin:
                continue
            xc = x[c]
            yc = y[c]
            for d in fanin:
                t = arrival[d] + wpu * (abs(x[d] - xc) + abs(y[d] - yc))
                if t > critical_delay:
                    critical_delay = float(t)
                    critical_end = int(c)
                    critical_end_pred = int(d)

        path: List[int] = []
        if critical_end >= 0:
            path.append(critical_end)
            cursor = critical_end_pred
            while cursor >= 0:
                path.append(cursor)
                cursor = int(best_pred[cursor])
            path.reverse()
        return TimingResult(
            critical_delay=float(critical_delay),
            arrival=arrival,
            critical_path=tuple(path),
        )

    def path_delay(
        self,
        placement: Placement,
        path: Sequence[int],
        overrides: Optional[Dict[int, Tuple[float, float]]] = None,
    ) -> float:
        """Delay along a specific cell path, optionally with position overrides.

        ``overrides`` maps cell index to an ``(x, y)`` position that replaces
        the placement's position for that cell — used to score hypothetical
        swaps without mutating the placement.
        """
        if len(path) < 2:
            return 0.0
        x = placement.cell_x()
        y = placement.cell_y()
        if overrides:
            for cell, (ox, oy) in overrides.items():
                x[cell] = ox
                y[cell] = oy
        wpu = self._model.wire_delay_per_unit
        path_arr = np.asarray(path, dtype=np.int64)
        px = x[path_arr]
        py = y[path_arr]
        wire = wpu * float(np.sum(np.abs(np.diff(px)) + np.abs(np.diff(py))))
        return self.path_intrinsic_delay(path) + wire

    def path_intrinsic_delay(self, path: Sequence[int]) -> float:
        """Sum of the intrinsic cell delays along ``path`` (placement-free).

        The start cell always contributes; intermediate cells contribute; the
        end point contributes only if it propagates (i.e. it is not a pure
        endpoint like a PO or a flip-flop D input).
        """
        if len(path) < 2:
            return 0.0
        delays = self._delays_list
        total = 0.0
        for idx, cell in enumerate(path):
            is_last = idx == len(path) - 1
            if is_last and self._is_end[cell] and not self._is_start[cell]:
                continue  # PO endpoint: no intrinsic delay after arrival
            if is_last and self._is_seq[cell]:
                continue  # flip-flop D input endpoint
            total += delays[cell]
        return total


class TimingState:
    """Incremental timing cost bound to one :class:`Placement`.

    Keeps the last exact :class:`TimingResult` plus the set of cells on the
    cached critical path.  ``delta_for_swap`` evaluates how the *cached path's*
    delay would change if two cells swapped positions — exact when the swap
    touches the cached path, zero otherwise (an optimistic but cheap
    surrogate).  The exact analysis is refreshed on every ``refresh_interval``
    committed swaps or explicitly via :meth:`refresh`.
    """

    def __init__(
        self,
        placement: Placement,
        analyzer: TimingAnalyzer,
        *,
        refresh_interval: int = 8,
    ) -> None:
        if refresh_interval < 1:
            raise CostModelError(f"refresh_interval must be >= 1, got {refresh_interval}")
        self._placement = placement
        self._analyzer = analyzer
        self._refresh_interval = refresh_interval
        self._commits_since_refresh = 0
        self.refresh()

    @property
    def critical_delay(self) -> float:
        """Delay of the cached critical path under the current placement."""
        return self._cached_delay

    @property
    def critical_path(self) -> Tuple[int, ...]:
        """Cells on the cached critical path."""
        return self._result.critical_path

    @property
    def analyzer(self) -> TimingAnalyzer:
        """The underlying exact analyzer."""
        return self._analyzer

    def refresh(self) -> TimingResult:
        """Re-run the exact STA and reset the surrogate state."""
        self._result = self._analyzer.analyze(self._placement)
        self._cached_delay = self._result.critical_delay
        self._path_cells = frozenset(self._result.critical_path)
        self._commits_since_refresh = 0
        # Vectorised surrogate state: the path as an array, a dense membership
        # mask, and the placement-independent intrinsic-delay part.
        self._path_array = np.asarray(self._result.critical_path, dtype=np.int64)
        on_path = np.zeros(self._placement.num_cells, dtype=bool)
        on_path[self._path_array] = True
        self._on_path = on_path
        self._path_intrinsic = self._analyzer.path_intrinsic_delay(self._result.critical_path)
        return self._result

    def exact_delay(self) -> float:
        """Exact critical-path delay (runs a full STA, does not disturb caches)."""
        return self._analyzer.analyze(self._placement).critical_delay

    # ------------------------------------------------------------------ #
    # snapshot / restore (used by the search loop to try candidates cheaply)
    # ------------------------------------------------------------------ #
    def save_state(self) -> tuple:
        """Snapshot of the surrogate state, restorable via :meth:`restore_state`.

        The contained arrays are never mutated in place (``refresh`` rebuilds
        them), so references suffice — no copies needed.
        """
        return (
            self._result,
            self._cached_delay,
            self._path_cells,
            self._commits_since_refresh,
            self._path_array,
            self._on_path,
            self._path_intrinsic,
        )

    def restore_state(self, state: tuple) -> None:
        """Restore a snapshot (the placement must be restored separately)."""
        (
            self._result,
            self._cached_delay,
            self._path_cells,
            self._commits_since_refresh,
            self._path_array,
            self._on_path,
            self._path_intrinsic,
        ) = state

    def _reprice_path(self) -> float:
        """Delay of the cached path under the current placement.

        Same arithmetic as :meth:`TimingAnalyzer.path_delay`, but gathering
        only the path cells' coordinates instead of every cell's — this runs
        on every committed swap that touches the path.
        """
        path = self._path_array
        if path.size < 2:
            return 0.0
        cts = self._placement.cell_to_slot
        layout = self._placement.layout
        px = layout.slot_x[cts[path]]
        py = layout.slot_y[cts[path]]
        wpu = self._analyzer.model.wire_delay_per_unit
        wire = wpu * float(np.sum(np.abs(np.diff(px)) + np.abs(np.diff(py))))
        return self._path_intrinsic + wire

    # ------------------------------------------------------------------ #
    def deltas_for_swaps(self, cells_a, cells_b) -> np.ndarray:
        """Estimated critical-delay change of every candidate swap in a batch.

        The surrogate is the same as :meth:`delta_for_swap`: pairs touching
        the cached critical path re-price the whole path with the two
        positions exchanged; all other pairs score 0.  All touching pairs are
        priced together as one ``(pairs × path)`` broadcast.
        """
        a = np.atleast_1d(np.asarray(cells_a, dtype=np.int64))
        b = np.atleast_1d(np.asarray(cells_b, dtype=np.int64))
        num_pairs = int(a.size)
        out = np.zeros(num_pairs, dtype=np.float64)
        path = self._path_array
        if num_pairs == 0 or path.size < 2:
            return out
        touch = (self._on_path[a] | self._on_path[b]) & (a != b)
        if not touch.any():
            return out
        ai = a[touch]
        bi = b[touch]
        cts = self._placement.cell_to_slot
        slot_x = self._placement.layout.slot_x
        slot_y = self._placement.layout.slot_y
        # Only path cells and touched endpoints need coordinates — no
        # O(num_cells) gather.
        px = slot_x[cts[path]]
        py = slot_y[cts[path]]
        path_row = path[None, :]
        mask_a = path_row == ai[:, None]
        mask_b = path_row == bi[:, None]
        nx = np.where(
            mask_a, slot_x[cts[bi]][:, None],
            np.where(mask_b, slot_x[cts[ai]][:, None], px[None, :]),
        )
        ny = np.where(
            mask_a, slot_y[cts[bi]][:, None],
            np.where(mask_b, slot_y[cts[ai]][:, None], py[None, :]),
        )
        wpu = self._analyzer.model.wire_delay_per_unit
        wire = wpu * np.sum(np.abs(np.diff(nx, axis=1)) + np.abs(np.diff(ny, axis=1)), axis=1)
        out[touch] = (self._path_intrinsic + wire) - self._cached_delay
        return out

    def delta_for_swap(self, cell_a: int, cell_b: int) -> float:
        """Estimated critical-delay change if ``cell_a`` and ``cell_b`` swapped."""
        if cell_a == cell_b:
            return 0.0
        if cell_a not in self._path_cells and cell_b not in self._path_cells:
            return 0.0
        return float(self.deltas_for_swaps(
            np.array([cell_a], dtype=np.int64), np.array([cell_b], dtype=np.int64)
        )[0])

    def commit_swap(self, cell_a: int, cell_b: int) -> None:
        """Update the cached path delay after the placement swap was applied."""
        if cell_a == cell_b:
            return
        self._commits_since_refresh += 1
        if self._commits_since_refresh >= self._refresh_interval:
            self.refresh()
            return
        if cell_a in self._path_cells or cell_b in self._path_cells:
            self._cached_delay = self._reprice_path()

    def apply_bulk(self, cells: np.ndarray, num_swaps: int) -> None:
        """Account for a whole committed swap sequence at once.

        ``cells`` are the cells whose positions changed (placement already
        updated); ``num_swaps`` advances the refresh counter exactly like that
        many :meth:`commit_swap` calls, but the cached path is re-priced once
        instead of per swap.
        """
        if num_swaps <= 0:
            return
        self._commits_since_refresh += num_swaps
        if self._commits_since_refresh >= self._refresh_interval:
            self.refresh()
            return
        if np.any(self._on_path[np.asarray(cells, dtype=np.int64)]):
            self._cached_delay = self._reprice_path()
