"""Optional numba-jitted variants of the swap-delta inner loops.

The batched wirelength kernel has two scalar-ish inner loops that NumPy can
only express as multi-pass array pipelines: the CSR shared-net membership
test (a binary search per flat ``(pair, net)`` item) and the segment-reduce
fallback for vacated bbox edges.  When `numba <https://numba.pydata.org>`__
is importable, this module exposes ``@njit``-compiled single-pass versions
of both; otherwise the NumPy implementations are used.  Selection is
automatic at import time — the kernels' *values* are identical either way,
only the execution strategy differs, so the trajectory-identity suite holds
regardless of which path is active.

numba is an **optional** dependency: the base environment does not ship it
and nothing here may fail when it is absent.  Set ``REPRO_JIT=0`` to force
the NumPy path even when numba is installed (e.g. to rule the JIT out when
bisecting a perf regression).
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "HAVE_NUMBA",
    "jit_enabled",
    "shared_net_mask",
    "shared_net_mask_numpy",
    "fallback_bbox_reduce",
]


def _jit_requested(value: str | None = None) -> bool:
    """Whether the environment asks for the JIT path (``REPRO_JIT``, default on)."""
    raw = os.environ.get("REPRO_JIT", "1") if value is None else value
    return raw.strip().lower() not in ("0", "false", "off", "no")


HAVE_NUMBA = False
if _jit_requested():
    try:  # pragma: no cover - exercised only where numba is installed
        from numba import njit

        HAVE_NUMBA = True
    except ImportError:
        pass

if not HAVE_NUMBA:

    def njit(*args, **kwargs):  # noqa: D103 - no-op stand-in for numba.njit
        if args and callable(args[0]):
            return args[0]

        def wrap(func):
            return func

        return wrap


def jit_enabled() -> bool:
    """Whether the jitted kernel variants are active in this process."""
    return HAVE_NUMBA


# ---------------------------------------------------------------------- #
# CSR shared-net membership
# ---------------------------------------------------------------------- #
def shared_net_mask_numpy(sorted_keys: np.ndarray, query_keys: np.ndarray) -> np.ndarray:
    """Membership of each query key in a sorted key array (NumPy path).

    ``sorted_keys`` is the globally sorted ``cell * num_nets + net`` encoding
    of the cell→net incidence; a query key is present iff that cell sits on
    that net.  One ``searchsorted`` plus a gather-and-compare.
    """
    out = np.zeros(query_keys.size, dtype=bool)
    if sorted_keys.size == 0 or query_keys.size == 0:
        return out
    pos = np.searchsorted(sorted_keys, query_keys)
    np.minimum(pos, sorted_keys.size - 1, out=pos)
    np.equal(sorted_keys[pos], query_keys, out=out)
    return out


@njit(cache=True)
def _shared_net_mask_jit(sorted_keys, query_keys):  # pragma: no cover - numba
    out = np.empty(query_keys.size, dtype=np.bool_)
    n = sorted_keys.size
    for i in range(query_keys.size):
        key = query_keys[i]
        lo = 0
        hi = n
        while lo < hi:
            mid = (lo + hi) >> 1
            if sorted_keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        out[i] = lo < n and sorted_keys[lo] == key
    return out


def shared_net_mask(sorted_keys: np.ndarray, query_keys: np.ndarray) -> np.ndarray:
    """Membership of each query key in ``sorted_keys`` (auto-selected path)."""
    if HAVE_NUMBA and sorted_keys.size and query_keys.size:
        return _shared_net_mask_jit(sorted_keys, query_keys)
    return shared_net_mask_numpy(sorted_keys, query_keys)


# ---------------------------------------------------------------------- #
# segment-reduce fallback for vacated bbox edges
# ---------------------------------------------------------------------- #
def fallback_bbox_reduce_numpy(
    members: np.ndarray,
    counts: np.ndarray,
    moved: np.ndarray,
    to_x: np.ndarray,
    to_y: np.ndarray,
    cts: np.ndarray,
    slot_x: np.ndarray,
    slot_y: np.ndarray,
):
    """Exact bboxes of fallback segments with one pin hypothetically moved.

    For each segment ``s`` (one net of one trial swap), scan its ``counts[s]``
    members with the moved pin at ``(to_x[s], to_y[s])`` and every other pin
    at its placed coordinate; returns the four bbox edge arrays.  NumPy path:
    masked substitution plus four ``reduceat`` passes.
    """
    moved_rep = np.repeat(moved, counts)
    mx = np.where(members == moved_rep, np.repeat(to_x, counts), slot_x[cts[members]])
    my = np.where(members == moved_rep, np.repeat(to_y, counts), slot_y[cts[members]])
    starts = np.zeros(counts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    return (
        np.minimum.reduceat(mx, starts),
        np.maximum.reduceat(mx, starts),
        np.minimum.reduceat(my, starts),
        np.maximum.reduceat(my, starts),
    )


@njit(cache=True)
def _fallback_bbox_reduce_jit(  # pragma: no cover - numba
    members, counts, moved, to_x, to_y, cts, slot_x, slot_y
):
    num = counts.size
    x_min = np.empty(num, dtype=np.float64)
    x_max = np.empty(num, dtype=np.float64)
    y_min = np.empty(num, dtype=np.float64)
    y_max = np.empty(num, dtype=np.float64)
    cursor = 0
    for s in range(num):
        mv = moved[s]
        tx = to_x[s]
        ty = to_y[s]
        lo_x = np.inf
        hi_x = -np.inf
        lo_y = np.inf
        hi_y = -np.inf
        for _ in range(counts[s]):
            m = members[cursor]
            cursor += 1
            if m == mv:
                x = tx
                y = ty
            else:
                slot = cts[m]
                x = slot_x[slot]
                y = slot_y[slot]
            if x < lo_x:
                lo_x = x
            if x > hi_x:
                hi_x = x
            if y < lo_y:
                lo_y = y
            if y > hi_y:
                hi_y = y
        x_min[s] = lo_x
        x_max[s] = hi_x
        y_min[s] = lo_y
        y_max[s] = hi_y
    return x_min, x_max, y_min, y_max


def fallback_bbox_reduce(
    members: np.ndarray,
    counts: np.ndarray,
    moved: np.ndarray,
    to_x: np.ndarray,
    to_y: np.ndarray,
    cts: np.ndarray,
    slot_x: np.ndarray,
    slot_y: np.ndarray,
):
    """Exact fallback-segment bboxes (auto-selected path, see the NumPy twin)."""
    if HAVE_NUMBA and counts.size:
        return _fallback_bbox_reduce_jit(
            members, counts, moved, to_x, to_y, cts, slot_x, slot_y
        )
    return fallback_bbox_reduce_numpy(
        members, counts, moved, to_x, to_y, cts, slot_x, slot_y
    )
