"""Named benchmark circuits used in the paper's evaluation.

The paper uses four ISCAS-89 circuits: ``highway`` (56 cells), ``c532``
(395 cells), ``c1355`` (1451 cells) and ``c3540`` (2243 cells).  This module
exposes them as named, deterministically generated synthetic circuits (see
:mod:`repro.placement.generator` and DESIGN.md for the substitution
rationale), plus a few smaller circuits that the test-suite and quick examples
use to keep runtimes short.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..errors import NetlistError
from .generator import CircuitSpec, generate_circuit
from .netlist import Netlist

__all__ = [
    "BENCHMARK_SPECS",
    "PAPER_CIRCUITS",
    "benchmark_names",
    "load_benchmark",
    "paper_benchmarks",
]

#: Circuits used in the paper's experiments, in increasing size order.
PAPER_CIRCUITS: Tuple[str, ...] = ("highway", "c532", "c1355", "c3540")

#: Specifications of all named benchmarks, including small test circuits.
BENCHMARK_SPECS: Dict[str, CircuitSpec] = {
    # Tiny circuits for unit tests and quick examples (not in the paper).
    "tiny16": CircuitSpec(name="tiny16", num_cells=16, seed=11, avg_fanin=1.8),
    "mini64": CircuitSpec(name="mini64", num_cells=64, seed=13),
    "small200": CircuitSpec(name="small200", num_cells=200, seed=17),
    # The four ISCAS-89 benchmarks from the paper (sizes from Section 5).
    "highway": CircuitSpec(name="highway", num_cells=56, seed=89),
    "c532": CircuitSpec(name="c532", num_cells=395, seed=532),
    "c1355": CircuitSpec(name="c1355", num_cells=1451, seed=1355),
    "c3540": CircuitSpec(name="c3540", num_cells=2243, seed=3540),
    # Large-instance scaling tier (not in the paper): deterministic synthetic
    # circuits sized so the sparse kernel paths engage — big10k's cell x net
    # product exceeds the dense-incidence budget and its cell count exceeds
    # the dense tabu-vector cap.  Lower I/O fractions keep the circuits
    # gate-dominated like real large netlists.
    "big2k": CircuitSpec(
        name="big2k", num_cells=2000, seed=20003,
        input_fraction=0.04, output_fraction=0.04,
    ),
    "big10k": CircuitSpec(
        name="big10k", num_cells=10000, seed=100003,
        input_fraction=0.04, output_fraction=0.04,
    ),
}

_CACHE: Dict[str, Netlist] = {}


def benchmark_names() -> Tuple[str, ...]:
    """Names of all available benchmark circuits (paper + test circuits)."""
    return tuple(BENCHMARK_SPECS)


def load_benchmark(name: str, *, use_cache: bool = True) -> Netlist:
    """Load (generate) a named benchmark circuit.

    Parameters
    ----------
    name:
        One of :func:`benchmark_names`.
    use_cache:
        Generation is deterministic, so by default circuits are cached per
        process.  Pass ``False`` to force regeneration (used by tests that
        check determinism).
    """
    if name not in BENCHMARK_SPECS:
        known = ", ".join(sorted(BENCHMARK_SPECS))
        raise NetlistError(f"unknown benchmark circuit {name!r}; known circuits: {known}")
    if use_cache and name in _CACHE:
        return _CACHE[name]
    netlist = generate_circuit(BENCHMARK_SPECS[name])
    if use_cache:
        _CACHE[name] = netlist
    return netlist


def paper_benchmarks() -> Dict[str, Netlist]:
    """Load all four circuits used in the paper's evaluation."""
    return {name: load_benchmark(name) for name in PAPER_CIRCUITS}
