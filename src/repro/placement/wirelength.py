"""Wirelength objective: weighted half-perimeter wirelength (HPWL).

The wirelength of a net is estimated by the half-perimeter of the bounding
box of its pins — the standard estimator for placement.  The total objective
is the net-weight-weighted sum over all nets.

Two access patterns are provided:

* :func:`full_hpwl` — vectorised full evaluation over all nets at once, used
  when a solution arrives over the (simulated) network or when caches need a
  rebuild;
* :class:`WirelengthState` — an incremental cache of per-net HPWL values that
  can evaluate the *delta* of a candidate swap in time proportional to the
  number of nets touching the two swapped cells, and commit it in the same
  time.  The tabu-search inner loop only ever uses deltas.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from .solution import Placement

__all__ = ["full_hpwl", "net_hpwl", "WirelengthState"]


def net_hpwl(placement: Placement, net_index: int) -> float:
    """HPWL of a single (unweighted) net under ``placement``."""
    netlist = placement.netlist
    layout = placement.layout
    members = netlist.net_members(net_index)
    slots = placement.cell_to_slot[members]
    xs = layout.slot_x[slots]
    ys = layout.slot_y[slots]
    return float(xs.max() - xs.min() + ys.max() - ys.min())


def full_hpwl(placement: Placement) -> Tuple[np.ndarray, float]:
    """Compute HPWL for every net and the weighted total.

    Returns
    -------
    per_net:
        Unweighted HPWL of each net (length ``num_nets``).
    total:
        Net-weight-weighted sum of the per-net values.
    """
    netlist = placement.netlist
    layout = placement.layout
    slots = placement.cell_to_slot[netlist.flat_members]
    xs = layout.slot_x[slots]
    ys = layout.slot_y[slots]
    ptr = netlist.net_ptr
    num_nets = netlist.num_nets
    per_net = np.empty(num_nets, dtype=np.float64)
    # np.maximum.reduceat / minimum.reduceat handle the CSR segments without a
    # Python loop over nets.
    if num_nets:
        starts = ptr[:-1]
        x_max = np.maximum.reduceat(xs, starts)
        x_min = np.minimum.reduceat(xs, starts)
        y_max = np.maximum.reduceat(ys, starts)
        y_min = np.minimum.reduceat(ys, starts)
        per_net[:] = (x_max - x_min) + (y_max - y_min)
    total = float(np.dot(per_net, netlist.net_weights)) if num_nets else 0.0
    return per_net, total


class WirelengthState:
    """Incremental HPWL cache bound to one :class:`Placement`.

    The cache holds the unweighted HPWL of every net and the weighted total.
    ``delta_for_swap`` answers "how would the total change if cells *a* and
    *b* exchanged slots?" without mutating anything; ``commit_swap`` must be
    called *after* the placement has actually been swapped to keep the cache
    in sync.
    """

    def __init__(self, placement: Placement) -> None:
        self._placement = placement
        self._netlist = placement.netlist
        self._layout = placement.layout
        self.rebuild()

    # ------------------------------------------------------------------ #
    @property
    def total(self) -> float:
        """Current weighted total HPWL."""
        return self._total

    @property
    def per_net(self) -> np.ndarray:
        """Current unweighted per-net HPWL values (read-only view)."""
        view = self._per_net.view()
        view.flags.writeable = False
        return view

    def rebuild(self) -> None:
        """Recompute the cache from scratch (used after bulk solution changes)."""
        self._per_net, self._total = full_hpwl(self._placement)

    # ------------------------------------------------------------------ #
    def _affected_nets(self, cell_a: int, cell_b: int) -> np.ndarray:
        nets_a = self._netlist.nets_of_cell(cell_a)
        nets_b = self._netlist.nets_of_cell(cell_b)
        if nets_a.size == 0:
            return nets_b
        if nets_b.size == 0:
            return nets_a
        return np.union1d(nets_a, nets_b)

    def _net_hpwl_with_override(
        self, net_index: int, cell_a: int, slot_a: int, cell_b: int, slot_b: int
    ) -> float:
        members = self._netlist.net_members(net_index)
        slots = self._placement.cell_to_slot[members].copy()
        # apply the hypothetical swap to the gathered slots only
        slots[members == cell_a] = slot_a
        slots[members == cell_b] = slot_b
        xs = self._layout.slot_x[slots]
        ys = self._layout.slot_y[slots]
        return float(xs.max() - xs.min() + ys.max() - ys.min())

    def delta_for_swap(self, cell_a: int, cell_b: int) -> float:
        """Weighted-HPWL change if ``cell_a`` and ``cell_b`` swapped slots.

        Negative values mean the swap *improves* (shortens) the wirelength.
        """
        if cell_a == cell_b:
            return 0.0
        slot_a = self._placement.slot_of(cell_a)
        slot_b = self._placement.slot_of(cell_b)
        weights = self._netlist.net_weights
        delta = 0.0
        for net in self._affected_nets(cell_a, cell_b):
            new_value = self._net_hpwl_with_override(int(net), cell_a, slot_b, cell_b, slot_a)
            delta += weights[net] * (new_value - self._per_net[net])
        return float(delta)

    def commit_swap(self, cell_a: int, cell_b: int) -> None:
        """Update the cache after ``placement.swap_cells(cell_a, cell_b)``.

        The placement must already reflect the swap.
        """
        if cell_a == cell_b:
            return
        weights = self._netlist.net_weights
        for net in self._affected_nets(cell_a, cell_b):
            new_value = net_hpwl(self._placement, int(net))
            self._total += weights[net] * (new_value - self._per_net[net])
            self._per_net[net] = new_value

    def recompute_nets(self, nets: Iterable[int]) -> None:
        """Refresh specific nets (used when a whole new solution is installed)."""
        weights = self._netlist.net_weights
        for net in nets:
            new_value = net_hpwl(self._placement, int(net))
            self._total += weights[net] * (new_value - self._per_net[net])
            self._per_net[net] = new_value
