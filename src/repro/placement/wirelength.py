"""Wirelength objective: weighted half-perimeter wirelength (HPWL).

The wirelength of a net is estimated by the half-perimeter of the bounding
box of its pins — the standard estimator for placement.  The total objective
is the net-weight-weighted sum over all nets.

Three access patterns are provided:

* :func:`full_hpwl` — vectorised full evaluation over all nets at once, used
  when a solution arrives over the (simulated) network or when caches need a
  rebuild;
* :class:`WirelengthState` — an incremental cache of per-net bounding boxes
  (``x_min/x_max/y_min/y_max`` plus the number of members sitting on each
  bbox edge) that can evaluate the *delta* of a candidate swap with O(affected
  nets) arithmetic and no member re-gather in the common case;
* :meth:`WirelengthState.deltas_for_swaps` — the batched kernel: it scores an
  entire candidate neighbourhood in a handful of NumPy operations (flat CSR
  cell→net expansion, no per-trial ``union1d``), falling back to a vectorised
  segment reduce only for the rare trials where a moved cell is the sole
  support of a bbox edge.

The tabu-search inner loop only ever uses deltas, so this module is the
hottest code path of the whole reproduction: every CLW trial swap lands here.
"""

from __future__ import annotations

import logging
import os
from typing import Iterable, Tuple

import numpy as np

from .. import accel
from ..metrics.trace import TransferStats
from . import _kernels
from .solution import Placement

__all__ = [
    "full_hpwl",
    "net_hpwl",
    "net_bboxes",
    "WirelengthState",
    "deltas_for_swaps_reference",
]

logger = logging.getLogger(__name__)


def net_hpwl(placement: Placement, net_index: int) -> float:
    """HPWL of a single (unweighted) net under ``placement``."""
    netlist = placement.netlist
    layout = placement.layout
    members = netlist.net_members(net_index)
    slots = placement.cell_to_slot[members]
    xs = layout.slot_x[slots]
    ys = layout.slot_y[slots]
    return float(xs.max() - xs.min() + ys.max() - ys.min())


def full_hpwl(placement: Placement) -> Tuple[np.ndarray, float]:
    """Compute HPWL for every net and the weighted total.

    Returns
    -------
    per_net:
        Unweighted HPWL of each net (length ``num_nets``).
    total:
        Net-weight-weighted sum of the per-net values.
    """
    netlist = placement.netlist
    layout = placement.layout
    slots = placement.cell_to_slot[netlist.flat_members]
    xs = layout.slot_x[slots]
    ys = layout.slot_y[slots]
    ptr = netlist.net_ptr
    num_nets = netlist.num_nets
    per_net = np.empty(num_nets, dtype=np.float64)
    # np.maximum.reduceat / minimum.reduceat handle the CSR segments without a
    # Python loop over nets.
    if num_nets:
        starts = ptr[:-1]
        x_max = np.maximum.reduceat(xs, starts)
        x_min = np.minimum.reduceat(xs, starts)
        y_max = np.maximum.reduceat(ys, starts)
        y_min = np.minimum.reduceat(ys, starts)
        per_net[:] = (x_max - x_min) + (y_max - y_min)
    total = float(np.dot(per_net, netlist.net_weights)) if num_nets else 0.0
    return per_net, total


def net_bboxes(
    placement: Placement, nets: np.ndarray | None = None
) -> Tuple[np.ndarray, ...]:
    """Bounding boxes (and edge multiplicities) of ``nets`` in one pass.

    Returns eight arrays aligned with ``nets`` (or with all nets when ``nets``
    is ``None``): ``x_min, x_max, y_min, y_max`` and the number of member
    pins sitting exactly on each of the four bbox edges.  The multiplicity
    counts are what make O(1) incremental updates possible: a pin may leave a
    bbox edge without shrinking the box whenever other pins still support it.
    """
    netlist = placement.netlist
    layout = placement.layout
    if nets is None:
        members = netlist.flat_members
        counts = netlist.net_degrees
    else:
        members, counts = netlist.net_members_of(nets)
    num = int(counts.size)
    if num == 0:
        zero_f = np.zeros(0, dtype=np.float64)
        zero_i = np.zeros(0, dtype=np.int64)
        return zero_f, zero_f.copy(), zero_f.copy(), zero_f.copy(), zero_i, zero_i.copy(), zero_i.copy(), zero_i.copy()
    slots = placement.cell_to_slot[members]
    xs = layout.slot_x[slots]
    ys = layout.slot_y[slots]
    starts = np.zeros(num, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    x_min = np.minimum.reduceat(xs, starts)
    x_max = np.maximum.reduceat(xs, starts)
    y_min = np.minimum.reduceat(ys, starts)
    y_max = np.maximum.reduceat(ys, starts)
    n_x_min = np.add.reduceat((xs == np.repeat(x_min, counts)).astype(np.int64), starts)
    n_x_max = np.add.reduceat((xs == np.repeat(x_max, counts)).astype(np.int64), starts)
    n_y_min = np.add.reduceat((ys == np.repeat(y_min, counts)).astype(np.int64), starts)
    n_y_max = np.add.reduceat((ys == np.repeat(y_max, counts)).astype(np.int64), starts)
    return x_min, x_max, y_min, y_max, n_x_min, n_x_max, n_y_min, n_y_max


def _shrink_min(cur: np.ndarray, support: np.ndarray, frm: np.ndarray, to: np.ndarray):
    """Fast-path new minimum after one pin moves ``frm → to``.

    Returns ``(new_min, needs_fallback)``.  The fast path is exact except when
    the moving pin was the *only* support of the current minimum and it lands
    strictly inside the box — then the true new minimum lies somewhere among
    the remaining pins and a segment reduce is required.
    """
    new = np.minimum(cur, to)
    fallback = (frm == cur) & (support <= 1) & (to > cur)
    return new, fallback


def _shrink_max(cur: np.ndarray, support: np.ndarray, frm: np.ndarray, to: np.ndarray):
    """Fast-path new maximum after one pin moves ``frm → to`` (see _shrink_min)."""
    new = np.maximum(cur, to)
    fallback = (frm == cur) & (support <= 1) & (to < cur)
    return new, fallback


class WirelengthState:
    """Incremental HPWL cache bound to one :class:`Placement`.

    The cache holds, for every net, the bounding box of its pins and the
    number of pins on each bbox edge, plus the unweighted HPWL and the
    weighted total.  ``delta_for_swap`` / ``deltas_for_swaps`` answer "how
    would the total change if cells *a* and *b* exchanged slots?" without
    mutating anything; ``commit_swap`` must be called *after* the placement
    has actually been swapped to keep the cache in sync.
    """

    #: Largest ``num_cells * num_nets`` for which the dense boolean
    #: cell-net incidence matrix is built (64 MB of bools at the cap); the
    #: batched kernel uses it to answer "is the swap partner also on this
    #: net?" with one gather.  Beyond the budget the kernel switches to the
    #: sparse CSR sorted-key path (O(pins) memory, binary-search lookups).
    INCIDENCE_BUDGET = 64_000_000

    #: Largest pin count for which the scalar commit path's Python list
    #: caches (net members, per-cell nets, coordinates) may be built; bigger
    #: instances route committed swaps through the vectorised segment
    #: reduce, keeping commit memory bounded by the netlist's CSR arrays.
    SCALAR_COMMIT_MAX_PINS = 1 << 20

    #: Shared-net detection modes already announced via the module logger —
    #: the selection is logged once per mode per process, not per instance.
    _logged_modes: set = set()

    def __init__(
        self,
        placement: Placement,
        *,
        incidence: str | None = None,
        device: str | None = None,
    ) -> None:
        self._placement = placement
        self._netlist = placement.netlist
        self._layout = placement.layout
        # The batched kernel runs through the accel dispatch layer (xp =
        # numpy | cupy); on cuda the incidence structure and the bbox caches
        # live device-resident and only the flat-expanded candidate indices
        # cross the boundary per call.
        self._xb = accel.ArrayBackend(device)
        self._dev_static: tuple | None = None
        self._dev_bbox: dict | None = None
        # Static structure for the scalar commit path (plain Python lists:
        # no per-item ndarray boxing, so the per-commit net scan beats
        # small-array NumPy several times over).  Built lazily on the first
        # committed swap — batch-only consumers (CLW trial scoring) never
        # pay the O(pins) list construction or hold the boxed copies.
        self._commit_lists: tuple | None = None
        num_cells = placement.num_cells
        num_nets = self._netlist.num_nets
        mode = incidence if incidence is not None else os.environ.get("REPRO_INCIDENCE", "auto")
        if mode not in ("auto", "dense", "csr"):
            raise ValueError(
                f"incidence mode must be 'auto', 'dense' or 'csr', got {mode!r}"
            )
        if mode == "auto":
            mode = "dense" if 0 < num_cells * num_nets <= self.INCIDENCE_BUDGET else "csr"
        self._incidence_mode = mode
        self._incidence: np.ndarray | None = None
        self._csr_keys: np.ndarray | None = None
        flat_nets, counts = self._netlist.nets_of_cells_flat(
            np.arange(num_cells, dtype=np.int64)
        )
        if mode == "dense":
            incidence_matrix = np.zeros((num_cells, num_nets), dtype=bool)
            incidence_matrix[
                np.repeat(np.arange(num_cells, dtype=np.int64), counts), flat_nets
            ] = True
            self._incidence = incidence_matrix
        else:
            # Per-cell net lists are sorted ascending (nets are appended in
            # index order when the netlist builds its incidence), so the
            # concatenated `cell * num_nets + net` keys are globally sorted
            # and one binary search answers the shared-net test in
            # O(pins) memory instead of O(cells * nets).
            self._csr_keys = (
                np.repeat(np.arange(num_cells, dtype=np.int64), counts)
                * np.int64(num_nets)
                + flat_nets
            )
        if mode not in WirelengthState._logged_modes:
            WirelengthState._logged_modes.add(mode)
            logger.info(
                "wirelength shared-net detection: %s path selected "
                "(first instance: %d cells x %d nets, jit=%s)",
                mode, num_cells, num_nets, _kernels.jit_enabled(),
            )
        self.rebuild()

    @property
    def incidence_mode(self) -> str:
        """Active shared-net detection path: ``"dense"`` or ``"csr"``.

        Benchmarks assert on this so they provably measure the path they
        meant to (the dense→CSR switch used to be silent).
        """
        return self._incidence_mode

    # ------------------------------------------------------------------ #
    @property
    def total(self) -> float:
        """Current weighted total HPWL."""
        return self._total

    @property
    def per_net(self) -> np.ndarray:
        """Current unweighted per-net HPWL values (read-only view)."""
        view = self._per_net.view()
        view.flags.writeable = False
        return view

    def rebuild(self) -> None:
        """Recompute the cache from scratch (used after bulk solution changes)."""
        (
            self._x_min,
            self._x_max,
            self._y_min,
            self._y_max,
            self._n_x_min,
            self._n_x_max,
            self._n_y_min,
            self._n_y_max,
        ) = net_bboxes(self._placement)
        self._per_net = (self._x_max - self._x_min) + (self._y_max - self._y_min)
        weights = self._netlist.net_weights
        self._total = float(np.dot(self._per_net, weights)) if self._per_net.size else 0.0
        if self._xb.is_cuda:  # pragma: no cover - cupy only
            self._device_sync()

    # ------------------------------------------------------------------ #
    # accel plumbing
    # ------------------------------------------------------------------ #
    @property
    def device(self) -> str:
        """Resolved execution device of the batch kernel (``cpu``/``cuda``)."""
        return self._xb.device

    def transfer_stats(self) -> TransferStats:
        """Host↔device traffic this state has caused (all-zero on CPU)."""
        return self._xb.transfer_stats()

    def _device_sync(self, nets: np.ndarray | None = None) -> None:  # pragma: no cover - cupy only
        """Refresh the device-resident bbox/HPWL mirrors after a host mutation.

        ``nets`` scatters just those entries (committed swaps touch a
        handful of nets); ``None`` re-ships the nine cache arrays wholesale
        (rebuilds, restores).  CPU backends never call this — the kernel
        reads the live host arrays directly.
        """
        xb = self._xb
        if self._dev_static is None:
            self._dev_static = (
                xb.to_device(self._incidence) if self._incidence is not None else None,
                xb.to_device(self._csr_keys) if self._csr_keys is not None else None,
                xb.to_device(self._netlist.net_weights),
            )
        hosts = (
            self._x_min, self._x_max, self._y_min, self._y_max,
            self._n_x_min, self._n_x_max, self._n_y_min, self._n_y_max,
            self._per_net,
        )
        names = (
            "x_min", "x_max", "y_min", "y_max",
            "n_x_min", "n_x_max", "n_y_min", "n_y_max",
            "per_net",
        )
        if nets is None or self._dev_bbox is None:
            self._dev_bbox = {
                name: xb.to_device(host) for name, host in zip(names, hosts)
            }
            return
        idx = xb.to_device(np.asarray(nets, dtype=np.int64))
        for name, host in zip(names, hosts):
            self._dev_bbox[name][idx] = xb.to_device(host[nets])

    def _hpwl_arrays(self) -> accel.HpwlArrays:
        """Backend-space :class:`~repro.accel.kernels.HpwlArrays` pack.

        On CPU the fields *are* the live host arrays (rebuilt-on-call refs,
        so rebinds by ``rebuild``/``restore_state`` are always picked up);
        on cuda they are the device mirrors maintained by
        :meth:`_device_sync`.
        """
        if self._xb.is_cuda:  # pragma: no cover - cupy only
            incidence_d, csr_keys_d, weights_d = self._dev_static
            bbox = self._dev_bbox
            return accel.HpwlArrays(
                num_nets=self._netlist.num_nets,
                incidence=incidence_d,
                csr_keys=csr_keys_d,
                x_min=bbox["x_min"], x_max=bbox["x_max"],
                y_min=bbox["y_min"], y_max=bbox["y_max"],
                n_x_min=bbox["n_x_min"], n_x_max=bbox["n_x_max"],
                n_y_min=bbox["n_y_min"], n_y_max=bbox["n_y_max"],
                per_net=bbox["per_net"],
                net_weights=weights_d,
            )
        return accel.HpwlArrays(
            num_nets=self._netlist.num_nets,
            incidence=self._incidence,
            csr_keys=self._csr_keys,
            x_min=self._x_min, x_max=self._x_max,
            y_min=self._y_min, y_max=self._y_max,
            n_x_min=self._n_x_min, n_x_max=self._n_x_max,
            n_y_min=self._n_y_min, n_y_max=self._n_y_max,
            per_net=self._per_net,
            net_weights=self._netlist.net_weights,
        )

    # ------------------------------------------------------------------ #
    # snapshot / restore (used by the search loop to try candidates cheaply)
    # ------------------------------------------------------------------ #
    def save_state(self) -> tuple:
        """Copy of the full cache, restorable via :meth:`restore_state`."""
        return (
            self._per_net.copy(),
            self._total,
            self._x_min.copy(),
            self._x_max.copy(),
            self._y_min.copy(),
            self._y_max.copy(),
            self._n_x_min.copy(),
            self._n_x_max.copy(),
            self._n_y_min.copy(),
            self._n_y_max.copy(),
        )

    def restore_state(self, state: tuple) -> None:
        """Restore a cache snapshot (the placement must be restored separately)."""
        (per_net, total, x_min, x_max, y_min, y_max, n_x_min, n_x_max, n_y_min, n_y_max) = state
        self._per_net = per_net.copy()
        self._total = total
        self._x_min = x_min.copy()
        self._x_max = x_max.copy()
        self._y_min = y_min.copy()
        self._y_max = y_max.copy()
        self._n_x_min = n_x_min.copy()
        self._n_x_max = n_x_max.copy()
        self._n_y_min = n_y_min.copy()
        self._n_y_max = n_y_max.copy()
        if self._xb.is_cuda:  # pragma: no cover - cupy only
            self._device_sync()

    # ------------------------------------------------------------------ #
    # batched trial evaluation — the hot kernel
    # ------------------------------------------------------------------ #
    def deltas_for_swaps(self, cells_a, cells_b) -> np.ndarray:
        """Weighted-HPWL change of every candidate swap ``(a_i, b_i)``.

        Both arguments are integer arrays of equal length; the result is a
        float array of per-pair deltas (negative = improvement).  Every pair
        is evaluated independently against the *current* placement, exactly
        like repeated calls to :meth:`delta_for_swap`, but the whole batch is
        computed with vectorised NumPy:

        1. expand both endpoints of every pair to flat ``(pair, net)`` items
           via the CSR cell→net incidence;
        2. drop items of nets containing *both* endpoints (a swap permutes
           their pins, so their bbox is unchanged) — one dense incidence
           gather when the matrix fits :attr:`INCIDENCE_BUDGET`, otherwise a
           binary search of the sorted CSR incidence keys (no per-pair
           ``union1d``, no O(cells x nets) memory);
        3. update each item's bbox edge in O(1) using the cached edge
           multiplicities;
        4. re-reduce only the items where the moved pin was the sole support
           of an edge it leaves (a single ``reduceat`` over those segments).

        Step 1 (the CSR expansion) runs on the host; steps 2–4 are
        :func:`repro.accel.kernels.hpwl_batch_deltas`, the xp-generic kernel
        shared with the cuda backend.  Under NumPy it executes the identical
        operations in the identical order as the direct kernel it replaced
        (pinned bit-identical against :func:`deltas_for_swaps_reference`);
        the segment-reduce fallback of step 4 always reduces on the host
        (cupy has no ``reduceat``) — it is rare by construction.
        """
        a = np.atleast_1d(np.asarray(cells_a, dtype=np.int64))
        b = np.atleast_1d(np.asarray(cells_b, dtype=np.int64))
        if a.shape != b.shape:
            raise ValueError(f"cells_a and cells_b must match, got {a.shape} vs {b.shape}")
        num_pairs = int(a.size)
        out = np.zeros(num_pairs, dtype=np.float64)
        if num_pairs == 0 or self._netlist.num_nets == 0:
            return out

        netlist = self._netlist
        cts = self._placement.cell_to_slot
        slot_x = self._layout.slot_x
        slot_y = self._layout.slot_y
        ax = slot_x[cts[a]]
        ay = slot_y[cts[a]]
        bx = slot_x[cts[b]]
        by = slot_y[cts[b]]

        # --- step 1: flat (pair, net) items for both endpoints ------------- #
        nets_a, deg_a = netlist.nets_of_cells_flat(a)
        nets_b, deg_b = netlist.nets_of_cells_flat(b)
        pair_ids = np.arange(num_pairs, dtype=np.int64)
        pair = np.concatenate([np.repeat(pair_ids, deg_a), np.repeat(pair_ids, deg_b)])
        net = np.concatenate([nets_a, nets_b])
        moved = np.concatenate([np.repeat(a, deg_a), np.repeat(b, deg_b)])
        from_x = np.concatenate([np.repeat(ax, deg_a), np.repeat(bx, deg_b)])
        from_y = np.concatenate([np.repeat(ay, deg_a), np.repeat(by, deg_b)])
        to_x = np.concatenate([np.repeat(bx, deg_a), np.repeat(ax, deg_b)])
        to_y = np.concatenate([np.repeat(by, deg_a), np.repeat(ay, deg_b)])
        if net.size == 0:
            return out

        # --- steps 2-4: the xp-generic batch kernel ------------------------ #
        # An item is inactive when the pair is a self-swap or when the swap
        # partner sits on the same net (the swap permutes that net's pins).
        # Inactive items are *not* filtered out — they flow through the O(1)
        # edge updates (where a self-swap's from == to makes the delta vanish
        # naturally) and are zeroed in the final per-item reduction, which is
        # far cheaper than re-gathering seven arrays through a boolean mask
        # and needs no sort to find the duplicates.
        active = (a != b)[pair]
        other = np.concatenate([np.repeat(b, deg_a), np.repeat(a, deg_b)])
        return accel.hpwl_batch_deltas(
            self._xb,
            self._hpwl_arrays(),
            num_pairs=num_pairs,
            pair=pair,
            net=net,
            other=other,
            moved=moved,
            from_x=from_x,
            from_y=from_y,
            to_x=to_x,
            to_y=to_y,
            active=active,
            cts=cts,
            slot_x=slot_x,
            slot_y=slot_y,
            gather_members=netlist.net_members_of,
            shared_mask_cpu=_kernels.shared_net_mask,
            bbox_reduce_cpu=_kernels.fallback_bbox_reduce,
        )

    def delta_for_swap(self, cell_a: int, cell_b: int) -> float:
        """Weighted-HPWL change if ``cell_a`` and ``cell_b`` swapped slots.

        Negative values mean the swap *improves* (shortens) the wirelength.
        A single-pair call into the batched kernel, so scalar and batched
        evaluation agree bit-for-bit.
        """
        if cell_a == cell_b:
            return 0.0
        return float(self.deltas_for_swaps(
            np.array([cell_a], dtype=np.int64), np.array([cell_b], dtype=np.int64)
        )[0])

    # ------------------------------------------------------------------ #
    # committed updates
    # ------------------------------------------------------------------ #
    def _scalar_commit_lists(self) -> tuple:
        """Python-list caches backing the scalar commit path (built lazily)."""
        if self._commit_lists is None:
            self._commit_lists = (
                self._layout.slot_x.tolist(),
                self._layout.slot_y.tolist(),
                [
                    self._netlist.net_members(i).tolist()
                    for i in range(self._netlist.num_nets)
                ],
                [
                    self._netlist.nets_of_cell(c).tolist()
                    for c in range(self._placement.num_cells)
                ],
                self._netlist.net_weights.tolist(),
            )
        return self._commit_lists

    def commit_swap(self, cell_a: int, cell_b: int) -> None:
        """Update the cache after ``placement.swap_cells(cell_a, cell_b)``.

        The placement must already reflect the swap.  Each affected net's
        bbox, edge multiplicities and HPWL are recomputed *in place* with a
        scalar scan over its (few) member pins — the nets of the paper
        circuits average ~3 pins, where one Python pass beats the dispatch
        overhead of a vectorised segment reduce several times over.  Nets
        containing both cells are skipped: the swap permutes their pins.
        Instances beyond :attr:`SCALAR_COMMIT_MAX_PINS` never build the
        boxed list caches; their commits go through the vectorised
        :meth:`recompute_nets` instead (same result, bounded memory).
        """
        if cell_a == cell_b:
            return
        if self._netlist.flat_members.size > self.SCALAR_COMMIT_MAX_PINS:
            nets_a_arr = self._netlist.nets_of_cell(cell_a)
            nets_b_arr = self._netlist.nets_of_cell(cell_b)
            self.recompute_nets(np.setxor1d(nets_a_arr, nets_b_arr))
            return
        _slot_x, _slot_y, _members, cell_nets_list, _weights = self._scalar_commit_lists()
        nets_a = cell_nets_list[cell_a]
        nets_b = cell_nets_list[cell_b]
        if nets_a and nets_b:
            in_b = set(nets_b)
            affected = [n for n in nets_a if n not in in_b]
            in_a = set(nets_a)
            affected += [n for n in nets_b if n not in in_a]
        else:
            affected = nets_a + nets_b
        if not affected:
            return
        cts = self._placement.cell_to_slot
        sx = _slot_x
        sy = _slot_y
        members_list = _members
        weights = _weights
        per_net = self._per_net
        total_delta = 0.0
        for net in affected:
            members = members_list[net]
            slot = cts[members[0]]
            x = sx[slot]
            y = sy[slot]
            x_min = x_max = x
            y_min = y_max = y
            n_x_min = n_x_max = n_y_min = n_y_max = 1
            for m in members[1:]:
                slot = cts[m]
                x = sx[slot]
                y = sy[slot]
                if x < x_min:
                    x_min = x
                    n_x_min = 1
                elif x == x_min:
                    n_x_min += 1
                if x > x_max:
                    x_max = x
                    n_x_max = 1
                elif x == x_max:
                    n_x_max += 1
                if y < y_min:
                    y_min = y
                    n_y_min = 1
                elif y == y_min:
                    n_y_min += 1
                if y > y_max:
                    y_max = y
                    n_y_max = 1
                elif y == y_max:
                    n_y_max += 1
            new_hpwl = (x_max - x_min) + (y_max - y_min)
            total_delta += weights[net] * (new_hpwl - per_net[net])
            per_net[net] = new_hpwl
            self._x_min[net] = x_min
            self._x_max[net] = x_max
            self._y_min[net] = y_min
            self._y_max[net] = y_max
            self._n_x_min[net] = n_x_min
            self._n_x_max[net] = n_x_max
            self._n_y_min[net] = n_y_min
            self._n_y_max[net] = n_y_max
        self._total += float(total_delta)
        if self._xb.is_cuda:  # pragma: no cover - cupy only
            self._device_sync(np.asarray(affected, dtype=np.int64))

    def recompute_cells(self, cells: np.ndarray) -> None:
        """Refresh every net touching any of ``cells`` from the placement.

        One vectorised segment reduce over the union of incident nets — the
        bulk path :meth:`~repro.placement.cost.CostEvaluator.apply_swaps` uses
        when committing a whole received swap sequence at once.
        """
        cells = np.asarray(cells, dtype=np.int64)
        if cells.size == 0:
            return
        nets, _counts = self._netlist.nets_of_cells_flat(cells)
        self.recompute_nets(np.unique(nets))

    def verify_consistency(self, *, atol: float = 1e-6) -> None:
        """Check the bbox/multiplicity caches against a fresh recompute.

        The totals alone cannot reveal a stale edge multiplicity (it only
        changes which fast/fallback branch a future trial takes), so this
        compares every cached array.  Raises ``ValueError`` on divergence.
        """
        fresh = net_bboxes(self._placement)
        cached = (
            self._x_min, self._x_max, self._y_min, self._y_max,
            self._n_x_min, self._n_x_max, self._n_y_min, self._n_y_max,
        )
        names = ("x_min", "x_max", "y_min", "y_max",
                 "n_x_min", "n_x_max", "n_y_min", "n_y_max")
        for name, have, want in zip(names, cached, fresh):
            if not np.allclose(have, want, atol=atol):
                bad = int(np.flatnonzero(~np.isclose(have, want, atol=atol))[0])
                raise ValueError(
                    f"wirelength bbox cache drift in {name} at net {bad}: "
                    f"cached={have[bad]}, exact={want[bad]}"
                )

    def recompute_nets(self, nets: Iterable[int]) -> None:
        """Refresh specific nets from the placement's current state.

        One vectorised segment reduce over all affected nets — committed swaps
        are rare relative to trials, so exact bbox + multiplicity recomputation
        here keeps the fast trial path simple.
        """
        nets = np.unique(np.asarray(tuple(nets) if not isinstance(nets, np.ndarray) else nets, dtype=np.int64))
        if nets.size == 0:
            return
        x_min, x_max, y_min, y_max, n_x_min, n_x_max, n_y_min, n_y_max = net_bboxes(
            self._placement, nets
        )
        new_per = (x_max - x_min) + (y_max - y_min)
        weights = self._netlist.net_weights[nets]
        self._total += float(np.dot(weights, new_per - self._per_net[nets]))
        self._per_net[nets] = new_per
        self._x_min[nets] = x_min
        self._x_max[nets] = x_max
        self._y_min[nets] = y_min
        self._y_max[nets] = y_max
        self._n_x_min[nets] = n_x_min
        self._n_x_max[nets] = n_x_max
        self._n_y_min[nets] = n_y_min
        self._n_y_max[nets] = n_y_max
        if self._xb.is_cuda:  # pragma: no cover - cupy only
            self._device_sync(nets)


# ---------------------------------------------------------------------- #
# frozen reference kernel
# ---------------------------------------------------------------------- #
def deltas_for_swaps_reference(
    state: WirelengthState, cells_a, cells_b
) -> np.ndarray:
    """The pre-dispatch direct NumPy HPWL batch kernel, frozen verbatim.

    The kernel body :meth:`WirelengthState.deltas_for_swaps` shipped before
    the accel layer existed, kept as the bit-identity oracle for the
    backend-parameterised contract battery and as the dispatch-tax baseline
    of ``benchmarks/bench_gpu_kernels.py``.  Reads the state's host-side
    caches directly and never touches the accel layer.
    """
    a = np.atleast_1d(np.asarray(cells_a, dtype=np.int64))
    b = np.atleast_1d(np.asarray(cells_b, dtype=np.int64))
    if a.shape != b.shape:
        raise ValueError(f"cells_a and cells_b must match, got {a.shape} vs {b.shape}")
    num_pairs = int(a.size)
    out = np.zeros(num_pairs, dtype=np.float64)
    netlist = state._netlist
    if num_pairs == 0 or netlist.num_nets == 0:
        return out

    cts = state._placement.cell_to_slot
    slot_x = state._layout.slot_x
    slot_y = state._layout.slot_y
    ax = slot_x[cts[a]]
    ay = slot_y[cts[a]]
    bx = slot_x[cts[b]]
    by = slot_y[cts[b]]

    # --- step 1: flat (pair, net) items for both endpoints ------------- #
    nets_a, deg_a = netlist.nets_of_cells_flat(a)
    nets_b, deg_b = netlist.nets_of_cells_flat(b)
    pair_ids = np.arange(num_pairs, dtype=np.int64)
    pair = np.concatenate([np.repeat(pair_ids, deg_a), np.repeat(pair_ids, deg_b)])
    net = np.concatenate([nets_a, nets_b])
    moved = np.concatenate([np.repeat(a, deg_a), np.repeat(b, deg_b)])
    from_x = np.concatenate([np.repeat(ax, deg_a), np.repeat(bx, deg_b)])
    from_y = np.concatenate([np.repeat(ay, deg_a), np.repeat(by, deg_b)])
    to_x = np.concatenate([np.repeat(bx, deg_a), np.repeat(ax, deg_b)])
    to_y = np.concatenate([np.repeat(by, deg_a), np.repeat(ay, deg_b)])
    if net.size == 0:
        return out

    # --- step 2: neutralise self-swaps and shared nets ----------------- #
    active = (a != b)[pair]
    other = np.concatenate([np.repeat(b, deg_a), np.repeat(a, deg_b)])
    if state._incidence is not None:
        active &= ~state._incidence[other, net]
    else:  # sparse path: binary search of the sorted incidence keys
        keys = other * np.int64(netlist.num_nets) + net
        active &= ~_kernels.shared_net_mask(state._csr_keys, keys)
    if not active.any():
        return out

    # --- step 3: O(1) bbox-edge updates from the cache ----------------- #
    new_x_min, fb_x_min = _shrink_min(state._x_min[net], state._n_x_min[net], from_x, to_x)
    new_x_max, fb_x_max = _shrink_max(state._x_max[net], state._n_x_max[net], from_x, to_x)
    new_y_min, fb_y_min = _shrink_min(state._y_min[net], state._n_y_min[net], from_y, to_y)
    new_y_max, fb_y_max = _shrink_max(state._y_max[net], state._n_y_max[net], from_y, to_y)

    # --- step 4: segment-reduce fallback for vacated edges ------------- #
    fallback = (fb_x_min | fb_x_max | fb_y_min | fb_y_max) & active
    if fallback.any():
        idx = np.flatnonzero(fallback)
        members, counts = netlist.net_members_of(net[idx])
        fb_x_lo, fb_x_hi, fb_y_lo, fb_y_hi = _kernels.fallback_bbox_reduce(
            members, counts, moved[idx], to_x[idx], to_y[idx], cts, slot_x, slot_y
        )
        new_x_min[idx] = fb_x_lo
        new_x_max[idx] = fb_x_hi
        new_y_min[idx] = fb_y_lo
        new_y_max[idx] = fb_y_hi

    new_hpwl = (new_x_max - new_x_min) + (new_y_max - new_y_min)
    per_item = netlist.net_weights[net] * (new_hpwl - state._per_net[net])
    per_item *= active  # zero the contributions of masked items
    out[:] = np.bincount(pair, weights=per_item, minlength=num_pairs)
    return out
