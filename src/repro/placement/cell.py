"""Primitive netlist entities: cells, pins and nets.

The VLSI standard-cell placement problem operates on a *netlist*: a set of
cells (logic gates, flip-flops, primary I/O pads) connected by nets
(electrically equivalent wires).  The placement engine only needs a small,
abstract view of these objects:

* a cell has a *name*, a *width* (standard cells share a common height, so
  area is driven by width), an *intrinsic delay* and a *kind* (combinational,
  sequential, primary input, primary output);
* a net has a *name*, a single *driver* cell and a set of *sink* cells, plus a
  routing-weight used by the wirelength objective.

These are deliberately plain ``dataclasses``; the heavy numeric state
(positions, bounding boxes, delay arrays) lives in NumPy arrays owned by the
:class:`~repro.placement.netlist.Netlist` and
:class:`~repro.placement.solution.Placement` classes so that the hot
incremental-cost code can be vectorised.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

__all__ = ["CellKind", "Cell", "Net"]


class CellKind(enum.Enum):
    """Functional class of a cell, used by the timing model.

    * ``COMBINATIONAL`` — ordinary logic gate; lies on combinational paths.
    * ``SEQUENTIAL`` — flip-flop/latch; acts as both a path endpoint and a
      path start point for static timing analysis.
    * ``PRIMARY_INPUT`` — input pad; a timing start point with zero delay.
    * ``PRIMARY_OUTPUT`` — output pad; a timing end point with zero delay.
    """

    COMBINATIONAL = "comb"
    SEQUENTIAL = "seq"
    PRIMARY_INPUT = "pi"
    PRIMARY_OUTPUT = "po"

    @property
    def is_timing_start(self) -> bool:
        """Whether timing paths may *begin* at cells of this kind."""
        return self in (CellKind.PRIMARY_INPUT, CellKind.SEQUENTIAL)

    @property
    def is_timing_end(self) -> bool:
        """Whether timing paths may *end* at cells of this kind."""
        return self in (CellKind.PRIMARY_OUTPUT, CellKind.SEQUENTIAL)

    @property
    def is_pad(self) -> bool:
        """Whether the cell is an I/O pad (fixed in many flows; movable here)."""
        return self in (CellKind.PRIMARY_INPUT, CellKind.PRIMARY_OUTPUT)


@dataclass(frozen=True, slots=True)
class Cell:
    """A standard cell (or I/O pad) in the netlist.

    Attributes
    ----------
    name:
        Unique name within the netlist (e.g. ``"G17"``).
    index:
        Dense integer id assigned by the :class:`Netlist`; used to index the
        NumPy arrays that hold per-cell numeric data.
    width:
        Cell width in abstract layout units (standard cells share one height).
    delay:
        Intrinsic cell delay in abstract time units, used by the static timing
        analysis.  Pads have zero delay.
    kind:
        Functional class, see :class:`CellKind`.
    """

    name: str
    index: int
    width: float = 1.0
    delay: float = 1.0
    kind: CellKind = CellKind.COMBINATIONAL

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"cell {self.name!r}: width must be positive, got {self.width}")
        if self.delay < 0:
            raise ValueError(f"cell {self.name!r}: delay must be non-negative, got {self.delay}")
        if self.index < 0:
            raise ValueError(f"cell {self.name!r}: index must be non-negative, got {self.index}")

    @property
    def is_movable(self) -> bool:
        """All cells (including pads) are movable in this reproduction."""
        return True


@dataclass(frozen=True, slots=True)
class Net:
    """A net (hyper-edge) connecting a driver cell to one or more sink cells.

    Attributes
    ----------
    name:
        Unique net name.
    index:
        Dense integer id assigned by the :class:`Netlist`.
    driver:
        Index of the driving cell.
    sinks:
        Indices of the sink cells (non-empty, no duplicates, never containing
        the driver).
    weight:
        Relative routing importance used by the wirelength objective.
    """

    name: str
    index: int
    driver: int
    sinks: Tuple[int, ...]
    weight: float = 1.0
    _members: Tuple[int, ...] = field(default=(), repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.sinks:
            raise ValueError(f"net {self.name!r}: must have at least one sink")
        if self.driver in self.sinks:
            raise ValueError(f"net {self.name!r}: driver {self.driver} also listed as sink")
        if len(set(self.sinks)) != len(self.sinks):
            raise ValueError(f"net {self.name!r}: duplicate sinks {self.sinks}")
        if self.weight <= 0:
            raise ValueError(f"net {self.name!r}: weight must be positive, got {self.weight}")
        object.__setattr__(self, "_members", (self.driver,) + tuple(self.sinks))

    @property
    def members(self) -> Tuple[int, ...]:
        """Driver followed by all sinks."""
        return self._members

    @property
    def degree(self) -> int:
        """Number of cells attached to the net (driver + sinks)."""
        return 1 + len(self.sinks)
