"""VLSI standard-cell placement substrate.

This subpackage implements everything the parallel tabu search needs from the
placement problem: netlist representation, benchmark circuits, row-based
layout geometry, placement solutions with O(1) swap moves, the three crisp
objectives (wirelength, critical-path delay, area) with incremental
evaluation, and the fuzzy goal-based scalar cost.
"""

from .area import AreaState, full_area, row_widths
from .cell import Cell, CellKind, Net
from .cost import CostEvaluator, CostModelParams, EvaluatorState, ObjectiveVector, make_evaluator
from .generator import CircuitSpec, build_chain_netlist, generate_circuit
from .io import (
    netlist_from_string,
    netlist_to_string,
    read_netlist,
    read_placement,
    write_netlist,
    write_placement,
)
from .iscas import (
    BENCHMARK_SPECS,
    PAPER_CIRCUITS,
    benchmark_names,
    load_benchmark,
    paper_benchmarks,
)
from .layout import Layout, LayoutSpec
from .netlist import Netlist, NetlistBuilder, NetlistStats
from .solution import Placement, random_placement
from .timing import TimingAnalyzer, TimingModel, TimingResult, TimingState
from .wirelength import WirelengthState, full_hpwl, net_bboxes, net_hpwl

__all__ = [
    "Cell",
    "CellKind",
    "Net",
    "Netlist",
    "NetlistBuilder",
    "NetlistStats",
    "CircuitSpec",
    "build_chain_netlist",
    "generate_circuit",
    "netlist_from_string",
    "netlist_to_string",
    "read_netlist",
    "read_placement",
    "write_netlist",
    "write_placement",
    "BENCHMARK_SPECS",
    "PAPER_CIRCUITS",
    "benchmark_names",
    "load_benchmark",
    "paper_benchmarks",
    "Layout",
    "LayoutSpec",
    "Placement",
    "random_placement",
    "WirelengthState",
    "full_hpwl",
    "net_bboxes",
    "net_hpwl",
    "TimingAnalyzer",
    "TimingModel",
    "TimingResult",
    "TimingState",
    "AreaState",
    "full_area",
    "row_widths",
    "CostEvaluator",
    "CostModelParams",
    "EvaluatorState",
    "ObjectiveVector",
    "make_evaluator",
]
