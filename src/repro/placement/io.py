"""Plain-text serialisation of netlists and placements.

The original ISCAS-89 benchmarks ship as text netlists; this module provides
an equivalent (deliberately simple) exchange format so that circuits generated
here can be saved, inspected, diffed and reloaded, and so that placements
produced by a long run can be archived next to the experiment logs.

Netlist format (``.nl``)::

    # comment lines start with '#'
    circuit <name>
    cell <name> <kind> <width> <delay>
    ...
    net <name> <weight> <driver> <sink> [<sink> ...]
    ...

Placement format (``.pl``)::

    placement <circuit-name>
    <cell-name> <slot-index>
    ...

Both formats are line-oriented, whitespace-separated and stable under
round-tripping (``write → read → write`` produces identical text).
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import Dict, List, TextIO, Union

import numpy as np

from ..errors import NetlistError, PlacementError
from .cell import CellKind
from .layout import Layout
from .netlist import Netlist, NetlistBuilder
from .solution import Placement

__all__ = [
    "write_netlist",
    "read_netlist",
    "netlist_to_string",
    "netlist_from_string",
    "write_placement",
    "read_placement",
]

PathOrFile = Union[str, Path, TextIO]

_KIND_TO_TOKEN = {
    CellKind.COMBINATIONAL: "comb",
    CellKind.SEQUENTIAL: "seq",
    CellKind.PRIMARY_INPUT: "pi",
    CellKind.PRIMARY_OUTPUT: "po",
}
_TOKEN_TO_KIND = {token: kind for kind, token in _KIND_TO_TOKEN.items()}


def _open_for_write(target: PathOrFile):
    if isinstance(target, (str, Path)):
        return open(target, "w", encoding="utf-8"), True
    return target, False


def _open_for_read(source: PathOrFile):
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="utf-8"), True
    return source, False


# --------------------------------------------------------------------------- #
# netlists
# --------------------------------------------------------------------------- #
def write_netlist(netlist: Netlist, target: PathOrFile) -> None:
    """Write ``netlist`` to a file path or an open text stream."""
    stream, should_close = _open_for_write(target)
    try:
        stream.write(f"# repro netlist format v1\ncircuit {netlist.name}\n")
        for cell in netlist.cells:
            stream.write(
                f"cell {cell.name} {_KIND_TO_TOKEN[cell.kind]} "
                f"{cell.width!r} {cell.delay!r}\n"
            )
        for net in netlist.nets:
            driver = netlist.cell(net.driver).name
            sinks = " ".join(netlist.cell(s).name for s in net.sinks)
            stream.write(f"net {net.name} {net.weight!r} {driver} {sinks}\n")
    finally:
        if should_close:
            stream.close()


def netlist_to_string(netlist: Netlist) -> str:
    """Serialise a netlist to a string."""
    buffer = _io.StringIO()
    write_netlist(netlist, buffer)
    return buffer.getvalue()


def read_netlist(source: PathOrFile) -> Netlist:
    """Read a netlist written by :func:`write_netlist`."""
    stream, should_close = _open_for_read(source)
    try:
        builder: NetlistBuilder | None = None
        for line_number, raw_line in enumerate(stream, start=1):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            tokens = line.split()
            keyword = tokens[0]
            if keyword == "circuit":
                if len(tokens) != 2:
                    raise NetlistError(f"line {line_number}: malformed circuit line {line!r}")
                builder = NetlistBuilder(tokens[1])
            elif keyword == "cell":
                if builder is None:
                    raise NetlistError(f"line {line_number}: 'cell' before 'circuit'")
                if len(tokens) != 5:
                    raise NetlistError(f"line {line_number}: malformed cell line {line!r}")
                _, name, kind_token, width, delay = tokens
                if kind_token not in _TOKEN_TO_KIND:
                    raise NetlistError(
                        f"line {line_number}: unknown cell kind {kind_token!r}"
                    )
                builder.add_cell(
                    name,
                    kind=_TOKEN_TO_KIND[kind_token],
                    width=float(width),
                    delay=float(delay),
                )
            elif keyword == "net":
                if builder is None:
                    raise NetlistError(f"line {line_number}: 'net' before 'circuit'")
                if len(tokens) < 5:
                    raise NetlistError(f"line {line_number}: malformed net line {line!r}")
                _, name, weight, driver, *sinks = tokens
                builder.add_net(name, driver=driver, sinks=sinks, weight=float(weight))
            else:
                raise NetlistError(f"line {line_number}: unknown keyword {keyword!r}")
        if builder is None:
            raise NetlistError("netlist file contains no 'circuit' line")
        return builder.build()
    finally:
        if should_close:
            stream.close()


def netlist_from_string(text: str) -> Netlist:
    """Parse a netlist from a string produced by :func:`netlist_to_string`."""
    return read_netlist(_io.StringIO(text))


# --------------------------------------------------------------------------- #
# placements
# --------------------------------------------------------------------------- #
def write_placement(placement: Placement, target: PathOrFile) -> None:
    """Write a placement (cell → slot assignment) to a path or stream."""
    stream, should_close = _open_for_write(target)
    try:
        netlist = placement.netlist
        stream.write(f"# repro placement format v1\nplacement {netlist.name}\n")
        for cell in netlist.cells:
            stream.write(f"{cell.name} {placement.slot_of(cell.index)}\n")
    finally:
        if should_close:
            stream.close()


def read_placement(source: PathOrFile, layout: Layout) -> Placement:
    """Read a placement written by :func:`write_placement` for ``layout``."""
    stream, should_close = _open_for_read(source)
    try:
        netlist = layout.netlist
        name_to_index: Dict[str, int] = {cell.name: cell.index for cell in netlist.cells}
        assignment = np.full(netlist.num_cells, -1, dtype=np.int64)
        circuit_name: str | None = None
        for line_number, raw_line in enumerate(stream, start=1):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            tokens = line.split()
            if tokens[0] == "placement":
                if len(tokens) != 2:
                    raise PlacementError(f"line {line_number}: malformed placement header")
                circuit_name = tokens[1]
                if circuit_name != netlist.name:
                    raise PlacementError(
                        f"placement file is for circuit {circuit_name!r}, "
                        f"layout is for {netlist.name!r}"
                    )
                continue
            if len(tokens) != 2:
                raise PlacementError(f"line {line_number}: malformed assignment {line!r}")
            cell_name, slot = tokens
            if cell_name not in name_to_index:
                raise PlacementError(
                    f"line {line_number}: cell {cell_name!r} not in circuit {netlist.name!r}"
                )
            assignment[name_to_index[cell_name]] = int(slot)
        if np.any(assignment < 0):
            missing = [c.name for c in netlist.cells if assignment[c.index] < 0]
            raise PlacementError(f"placement file misses cells: {missing[:5]} ...")
        return Placement(layout, assignment)
    finally:
        if should_close:
            stream.close()
