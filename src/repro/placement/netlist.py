"""Netlist container: the hypergraph of cells and nets.

The :class:`Netlist` owns the immutable structure of the circuit and exposes
both an object view (:class:`~repro.placement.cell.Cell` /
:class:`~repro.placement.cell.Net`) and a vectorised view (NumPy arrays of
widths, delays, and a flat CSR-like net-membership encoding) that the
objective functions use in their hot loops.

A :class:`NetlistBuilder` provides a forgiving, name-based construction API;
:meth:`NetlistBuilder.build` validates the structure and freezes it into a
:class:`Netlist`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from ..errors import NetlistError
from .cell import Cell, CellKind, Net

__all__ = ["Netlist", "NetlistBuilder", "NetlistStats", "csr_rows"]


def csr_rows(flat: np.ndarray, ptr: np.ndarray, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Gather several variable-length rows of a CSR structure at once.

    Returns ``(values, counts)`` where ``values`` is the concatenation of
    ``flat[ptr[r]:ptr[r+1]]`` for every ``r`` in ``rows`` and ``counts[i]`` is
    the length of the ``i``-th row.  This is the core expansion primitive of
    the batched swap-evaluation kernels: it replaces a Python loop over rows
    with three vectorised operations.
    """
    rows = np.asarray(rows, dtype=np.int64)
    starts = ptr[rows]
    counts = ptr[rows + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=flat.dtype), counts
    # Index arithmetic: for each output position, the offset within its row is
    # a global arange minus the cumulative length of all preceding rows.
    offsets = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    return flat[np.repeat(starts, counts) + within], counts


@dataclass(frozen=True, slots=True)
class NetlistStats:
    """Summary statistics of a netlist, handy for logging and tests."""

    name: str
    num_cells: int
    num_nets: int
    num_pins: int
    avg_net_degree: float
    max_net_degree: int
    avg_cell_fanout: float
    total_cell_width: float
    num_primary_inputs: int
    num_primary_outputs: int
    num_sequential: int

    def as_dict(self) -> Dict[str, float]:
        """Return the statistics as a plain dictionary (for reports)."""
        return {
            "name": self.name,
            "num_cells": self.num_cells,
            "num_nets": self.num_nets,
            "num_pins": self.num_pins,
            "avg_net_degree": self.avg_net_degree,
            "max_net_degree": self.max_net_degree,
            "avg_cell_fanout": self.avg_cell_fanout,
            "total_cell_width": self.total_cell_width,
            "num_primary_inputs": self.num_primary_inputs,
            "num_primary_outputs": self.num_primary_outputs,
            "num_sequential": self.num_sequential,
        }


class Netlist:
    """Immutable hypergraph of cells and nets.

    Instances are normally created through :class:`NetlistBuilder` or the
    synthetic circuit generator (:mod:`repro.placement.generator`).

    Parameters
    ----------
    name:
        Human-readable circuit name (e.g. ``"c532"``).
    cells:
        Sequence of :class:`Cell` whose ``index`` equals their position.
    nets:
        Sequence of :class:`Net` whose ``index`` equals their position and
        whose member indices refer to ``cells``.
    """

    #: Encoding order of :class:`CellKind` in the shared-memory array form.
    _KIND_ORDER = (
        CellKind.COMBINATIONAL,
        CellKind.SEQUENTIAL,
        CellKind.PRIMARY_INPUT,
        CellKind.PRIMARY_OUTPUT,
    )

    def __init__(self, name: str, cells: Sequence[Cell], nets: Sequence[Net]) -> None:
        self._name = name
        self._cells: Tuple[Cell, ...] = tuple(cells)
        self._nets: Tuple[Net, ...] = tuple(nets)
        self._validate()
        self._build_arrays()
        self._build_adjacency()

    # ------------------------------------------------------------------ #
    # array (shared-memory) round trip
    # ------------------------------------------------------------------ #
    def export_arrays(self) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
        """Split the netlist into numeric arrays and small Python metadata.

        The arrays carry everything size-proportional (per-cell attributes
        and both CSR incidence structures); ``meta`` carries the names.  The
        multiprocessing backend places the arrays in shared memory so a spawn
        ships a handle instead of a pickle — see :meth:`from_arrays`.
        """
        kind_index = {kind: code for code, kind in enumerate(self._KIND_ORDER)}
        arrays = {
            "cell_widths": self._widths,
            "cell_delays": self._delays,
            "cell_kinds": np.array(
                [kind_index[c.kind] for c in self._cells], dtype=np.int8
            ),
            "net_weights": self._net_weights,
            "net_ptr": self._net_ptr,
            "flat_members": self._flat_members,
            "cell_net_ptr": self._cell_net_ptr,
            "cell_net_flat": self._cell_net_flat,
        }
        meta = {
            "name": self._name,
            "cell_names": [c.name for c in self._cells],
            "net_names": [n.name for n in self._nets],
        }
        return arrays, meta

    @classmethod
    def from_arrays(
        cls, arrays: Dict[str, np.ndarray], meta: Dict[str, object]
    ) -> "Netlist":
        """Rebuild a netlist around (possibly shared-memory) arrays.

        The numeric members reference ``arrays`` directly — no copies, so
        views into a shared block stay zero-copy — and validation is skipped:
        the arrays came from a validated instance's :meth:`export_arrays`.
        Only the object view (cells, nets, fan-in/fan-out tuples) is rebuilt.
        """
        netlist = object.__new__(cls)
        netlist._name = meta["name"]
        widths = arrays["cell_widths"]
        delays = arrays["cell_delays"]
        kinds = arrays["cell_kinds"]
        cell_names = meta["cell_names"]
        netlist._cells = tuple(
            Cell(
                name=cell_names[index],
                index=index,
                width=float(widths[index]),
                delay=float(delays[index]),
                kind=cls._KIND_ORDER[int(kinds[index])],
            )
            for index in range(len(cell_names))
        )
        net_names = meta["net_names"]
        net_ptr = arrays["net_ptr"]
        flat = arrays["flat_members"].tolist()
        weights = arrays["net_weights"]
        nets = []
        for index in range(len(net_names)):
            members = flat[int(net_ptr[index]) : int(net_ptr[index + 1])]
            nets.append(
                Net(
                    name=net_names[index],
                    index=index,
                    driver=members[0],
                    sinks=tuple(members[1:]),
                    weight=float(weights[index]),
                )
            )
        netlist._nets = tuple(nets)
        netlist._widths = widths
        netlist._delays = delays
        netlist._net_weights = weights
        netlist._net_ptr = net_ptr
        netlist._flat_members = arrays["flat_members"]
        netlist._net_degrees = np.diff(net_ptr)
        netlist._cell_net_ptr = arrays["cell_net_ptr"]
        netlist._cell_net_flat = arrays["cell_net_flat"]
        # fanout/fanin tuples (timing structure) from the rebuilt nets
        fanout: List[List[int]] = [[] for _ in netlist._cells]
        fanin: List[List[int]] = [[] for _ in netlist._cells]
        for net in netlist._nets:
            for sink in net.sinks:
                fanout[net.driver].append(sink)
                fanin[sink].append(net.driver)
        netlist._fanout = tuple(tuple(lst) for lst in fanout)
        netlist._fanin = tuple(tuple(lst) for lst in fanin)
        return netlist

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def _validate(self) -> None:
        if not self._cells:
            raise NetlistError(f"netlist {self._name!r}: must contain at least one cell")
        names = set()
        for pos, cell in enumerate(self._cells):
            if cell.index != pos:
                raise NetlistError(
                    f"netlist {self._name!r}: cell {cell.name!r} has index {cell.index}, expected {pos}"
                )
            if cell.name in names:
                raise NetlistError(f"netlist {self._name!r}: duplicate cell name {cell.name!r}")
            names.add(cell.name)
        net_names = set()
        n = len(self._cells)
        for pos, net in enumerate(self._nets):
            if net.index != pos:
                raise NetlistError(
                    f"netlist {self._name!r}: net {net.name!r} has index {net.index}, expected {pos}"
                )
            if net.name in net_names:
                raise NetlistError(f"netlist {self._name!r}: duplicate net name {net.name!r}")
            net_names.add(net.name)
            for member in net.members:
                if not (0 <= member < n):
                    raise NetlistError(
                        f"netlist {self._name!r}: net {net.name!r} references unknown cell index {member}"
                    )

    def _build_arrays(self) -> None:
        self._widths = np.array([c.width for c in self._cells], dtype=np.float64)
        self._delays = np.array([c.delay for c in self._cells], dtype=np.float64)
        self._net_weights = np.array([net.weight for net in self._nets], dtype=np.float64)
        # CSR-style flattened net membership: members of net i are
        # flat_members[net_ptr[i]:net_ptr[i+1]].
        counts = np.array([net.degree for net in self._nets], dtype=np.int64)
        self._net_degrees = counts
        self._net_ptr = np.zeros(len(self._nets) + 1, dtype=np.int64)
        np.cumsum(counts, out=self._net_ptr[1:])
        if self._nets:
            self._flat_members = np.concatenate(
                [np.asarray(net.members, dtype=np.int64) for net in self._nets]
            )
        else:
            self._flat_members = np.zeros(0, dtype=np.int64)

    def _build_adjacency(self) -> None:
        # cell -> nets incident to it (CSR as well)
        incidence: List[List[int]] = [[] for _ in self._cells]
        for net in self._nets:
            for member in net.members:
                incidence[member].append(net.index)
        counts = np.array([len(lst) for lst in incidence], dtype=np.int64)
        self._cell_net_ptr = np.zeros(len(self._cells) + 1, dtype=np.int64)
        np.cumsum(counts, out=self._cell_net_ptr[1:])
        if any(incidence):
            self._cell_net_flat = np.concatenate(
                [np.asarray(lst, dtype=np.int64) if lst else np.zeros(0, dtype=np.int64) for lst in incidence]
            )
        else:
            self._cell_net_flat = np.zeros(0, dtype=np.int64)
        # fanout structure for timing: driver -> sinks per net
        fanout: List[List[int]] = [[] for _ in self._cells]
        fanin: List[List[int]] = [[] for _ in self._cells]
        for net in self._nets:
            for sink in net.sinks:
                fanout[net.driver].append(sink)
                fanin[sink].append(net.driver)
        self._fanout = tuple(tuple(lst) for lst in fanout)
        self._fanin = tuple(tuple(lst) for lst in fanin)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Circuit name."""
        return self._name

    @property
    def num_cells(self) -> int:
        """Number of cells (including pads)."""
        return len(self._cells)

    @property
    def num_nets(self) -> int:
        """Number of nets."""
        return len(self._nets)

    @property
    def num_pins(self) -> int:
        """Total number of pins (sum of net degrees)."""
        return int(self._net_ptr[-1])

    @property
    def cells(self) -> Tuple[Cell, ...]:
        """All cells, ordered by index."""
        return self._cells

    @property
    def nets(self) -> Tuple[Net, ...]:
        """All nets, ordered by index."""
        return self._nets

    def cell(self, index: int) -> Cell:
        """Return the cell with the given dense index."""
        return self._cells[index]

    def net(self, index: int) -> Net:
        """Return the net with the given dense index."""
        return self._nets[index]

    def cell_by_name(self, name: str) -> Cell:
        """Look up a cell by name (O(n); intended for tests and tooling)."""
        for cell in self._cells:
            if cell.name == name:
                return cell
        raise NetlistError(f"netlist {self._name!r}: no cell named {name!r}")

    def __iter__(self) -> Iterator[Cell]:
        return iter(self._cells)

    def __len__(self) -> int:
        return len(self._cells)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Netlist(name={self._name!r}, cells={self.num_cells}, nets={self.num_nets})"

    # ------------------------------------------------------------------ #
    # vectorised views used by the objective functions
    # ------------------------------------------------------------------ #
    @property
    def cell_widths(self) -> np.ndarray:
        """Array of cell widths, indexed by cell index (read-only view)."""
        view = self._widths.view()
        view.flags.writeable = False
        return view

    @property
    def cell_delays(self) -> np.ndarray:
        """Array of intrinsic cell delays (read-only view)."""
        view = self._delays.view()
        view.flags.writeable = False
        return view

    @property
    def net_weights(self) -> np.ndarray:
        """Array of net weights (read-only view)."""
        view = self._net_weights.view()
        view.flags.writeable = False
        return view

    @property
    def net_ptr(self) -> np.ndarray:
        """CSR row pointer into :attr:`flat_members` (length ``num_nets + 1``)."""
        view = self._net_ptr.view()
        view.flags.writeable = False
        return view

    @property
    def flat_members(self) -> np.ndarray:
        """Flattened net membership array (driver first, then sinks, per net)."""
        view = self._flat_members.view()
        view.flags.writeable = False
        return view

    @property
    def cell_net_ptr(self) -> np.ndarray:
        """CSR row pointer into :attr:`cell_net_flat` (length ``num_cells + 1``)."""
        view = self._cell_net_ptr.view()
        view.flags.writeable = False
        return view

    @property
    def cell_net_flat(self) -> np.ndarray:
        """Flattened cell→net incidence array (nets of cell ``c`` are
        ``cell_net_flat[cell_net_ptr[c]:cell_net_ptr[c+1]]``)."""
        view = self._cell_net_flat.view()
        view.flags.writeable = False
        return view

    @property
    def net_degrees(self) -> np.ndarray:
        """Number of members of each net (read-only view)."""
        view = self._net_degrees.view()
        view.flags.writeable = False
        return view

    def net_members(self, net_index: int) -> np.ndarray:
        """Cell indices attached to ``net_index`` (driver first)."""
        start, stop = self._net_ptr[net_index], self._net_ptr[net_index + 1]
        return self._flat_members[start:stop]

    def net_members_of(self, net_indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Members of several nets at once: ``(flat_cells, counts)``."""
        return csr_rows(self._flat_members, self._net_ptr, net_indices)

    def nets_of_cells_flat(self, cell_indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Incident nets of several cells at once: ``(flat_nets, counts)``.

        Unlike :meth:`nets_of_cells` this keeps per-cell segments (no
        deduplication across cells), which is what the batch kernels need.
        Within one cell's segment every net appears exactly once because net
        members are validated to be distinct.
        """
        return csr_rows(self._cell_net_flat, self._cell_net_ptr, cell_indices)

    def nets_of_cell(self, cell_index: int) -> np.ndarray:
        """Indices of the nets incident to ``cell_index``."""
        start, stop = self._cell_net_ptr[cell_index], self._cell_net_ptr[cell_index + 1]
        return self._cell_net_flat[start:stop]

    def nets_of_cells(self, cell_indices: Iterable[int]) -> np.ndarray:
        """Union (deduplicated) of nets incident to any of ``cell_indices``."""
        pieces = [self.nets_of_cell(int(c)) for c in cell_indices]
        if not pieces:
            return np.zeros(0, dtype=np.int64)
        return np.unique(np.concatenate(pieces))

    def fanout(self, cell_index: int) -> Tuple[int, ...]:
        """Cells driven (directly) by ``cell_index``."""
        return self._fanout[cell_index]

    def fanin(self, cell_index: int) -> Tuple[int, ...]:
        """Cells directly driving ``cell_index``."""
        return self._fanin[cell_index]

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def stats(self) -> NetlistStats:
        """Compute summary statistics (cheap; O(cells + pins))."""
        degrees = np.diff(self._net_ptr)
        fanouts = np.array([len(f) for f in self._fanout], dtype=np.float64)
        return NetlistStats(
            name=self._name,
            num_cells=self.num_cells,
            num_nets=self.num_nets,
            num_pins=self.num_pins,
            avg_net_degree=float(degrees.mean()) if self.num_nets else 0.0,
            max_net_degree=int(degrees.max()) if self.num_nets else 0,
            avg_cell_fanout=float(fanouts.mean()),
            total_cell_width=float(self._widths.sum()),
            num_primary_inputs=sum(1 for c in self._cells if c.kind is CellKind.PRIMARY_INPUT),
            num_primary_outputs=sum(1 for c in self._cells if c.kind is CellKind.PRIMARY_OUTPUT),
            num_sequential=sum(1 for c in self._cells if c.kind is CellKind.SEQUENTIAL),
        )


class NetlistBuilder:
    """Incremental, name-based netlist construction.

    Example
    -------
    >>> builder = NetlistBuilder("tiny")
    >>> builder.add_cell("a", kind=CellKind.PRIMARY_INPUT, delay=0.0)
    >>> builder.add_cell("g1")
    >>> builder.add_cell("z", kind=CellKind.PRIMARY_OUTPUT, delay=0.0)
    >>> builder.add_net("n1", driver="a", sinks=["g1"])
    >>> builder.add_net("n2", driver="g1", sinks=["z"])
    >>> netlist = builder.build()
    >>> netlist.num_cells, netlist.num_nets
    (3, 2)
    """

    def __init__(self, name: str) -> None:
        self._name = name
        self._cells: List[Cell] = []
        self._cell_index: Dict[str, int] = {}
        self._net_specs: List[Tuple[str, str, Tuple[str, ...], float]] = []
        self._net_names: set[str] = set()

    @property
    def num_cells(self) -> int:
        """Number of cells added so far."""
        return len(self._cells)

    def add_cell(
        self,
        name: str,
        *,
        width: float = 1.0,
        delay: float = 1.0,
        kind: CellKind = CellKind.COMBINATIONAL,
    ) -> int:
        """Add a cell and return its dense index."""
        if name in self._cell_index:
            raise NetlistError(f"builder {self._name!r}: duplicate cell name {name!r}")
        index = len(self._cells)
        self._cells.append(Cell(name=name, index=index, width=width, delay=delay, kind=kind))
        self._cell_index[name] = index
        return index

    def add_net(
        self,
        name: str,
        *,
        driver: str,
        sinks: Iterable[str],
        weight: float = 1.0,
    ) -> None:
        """Add a net connecting named cells (cells must already exist)."""
        if name in self._net_names:
            raise NetlistError(f"builder {self._name!r}: duplicate net name {name!r}")
        sinks = tuple(sinks)
        if driver not in self._cell_index:
            raise NetlistError(f"builder {self._name!r}: net {name!r} driver {driver!r} unknown")
        for sink in sinks:
            if sink not in self._cell_index:
                raise NetlistError(f"builder {self._name!r}: net {name!r} sink {sink!r} unknown")
        self._net_names.add(name)
        self._net_specs.append((name, driver, sinks, weight))

    def build(self) -> Netlist:
        """Validate and freeze the accumulated cells/nets into a :class:`Netlist`."""
        nets = []
        for pos, (name, driver, sinks, weight) in enumerate(self._net_specs):
            nets.append(
                Net(
                    name=name,
                    index=pos,
                    driver=self._cell_index[driver],
                    sinks=tuple(self._cell_index[s] for s in sinks),
                    weight=weight,
                )
            )
        return Netlist(self._name, self._cells, nets)
