"""Placement solution: the assignment of cells to layout slots.

A :class:`Placement` is the mutable search state of the tabu search.  It keeps
both directions of the assignment (``cell → slot`` and ``slot → cell``) as
NumPy integer arrays so that

* the wirelength/timing objectives can gather all cell coordinates in one
  vectorised indexing operation, and
* a *swap move* — the paper's elementary move: exchange the locations of two
  cells — is O(1) to apply and to undo.

Placements are cheap to copy (two integer arrays), which matters because the
parallel algorithm ships candidate solutions between CLWs, TSWs and the
master many times per global iteration.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from .._rng import make_rng
from ..errors import PlacementError
from .layout import Layout

__all__ = ["Placement", "random_placement"]

#: Sentinel stored in ``slot_to_cell`` for an empty slot.
EMPTY_SLOT: int = -1


class Placement:
    """Assignment of every cell to a distinct layout slot.

    Parameters
    ----------
    layout:
        The slot geometry.
    cell_to_slot:
        Array of length ``num_cells`` giving the slot of each cell.  Must be a
        permutation of distinct, in-range slot indices.
    """

    __slots__ = ("_layout", "_cell_to_slot", "_slot_to_cell")

    def __init__(self, layout: Layout, cell_to_slot: Sequence[int] | np.ndarray) -> None:
        self._layout = layout
        cts = np.asarray(cell_to_slot, dtype=np.int64).copy()
        n_cells = layout.netlist.num_cells
        if cts.shape != (n_cells,):
            raise PlacementError(
                f"cell_to_slot must have shape ({n_cells},), got {cts.shape}"
            )
        if cts.min(initial=0) < 0 or cts.max(initial=-1) >= layout.num_slots:
            raise PlacementError("cell_to_slot contains out-of-range slot indices")
        if len(np.unique(cts)) != n_cells:
            raise PlacementError("cell_to_slot assigns two cells to the same slot")
        self._cell_to_slot = cts
        stc = np.full(layout.num_slots, EMPTY_SLOT, dtype=np.int64)
        stc[cts] = np.arange(n_cells, dtype=np.int64)
        self._slot_to_cell = stc

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def layout(self) -> Layout:
        """The slot geometry this placement refers to."""
        return self._layout

    @property
    def netlist(self):
        """The circuit being placed."""
        return self._layout.netlist

    @property
    def num_cells(self) -> int:
        """Number of placed cells."""
        return self._cell_to_slot.shape[0]

    @property
    def cell_to_slot(self) -> np.ndarray:
        """Slot index of each cell (read-only view)."""
        view = self._cell_to_slot.view()
        view.flags.writeable = False
        return view

    @property
    def slot_to_cell(self) -> np.ndarray:
        """Cell index in each slot, ``-1`` when empty (read-only view)."""
        view = self._slot_to_cell.view()
        view.flags.writeable = False
        return view

    def slot_of(self, cell: int) -> int:
        """Slot currently holding ``cell``."""
        return int(self._cell_to_slot[cell])

    def cell_at(self, slot: int) -> int:
        """Cell currently in ``slot`` (``-1`` if empty)."""
        return int(self._slot_to_cell[slot])

    def cell_x(self) -> np.ndarray:
        """x coordinate of every cell (new array, length ``num_cells``)."""
        return self._layout.slot_x[self._cell_to_slot]

    def cell_y(self) -> np.ndarray:
        """y coordinate of every cell (new array, length ``num_cells``)."""
        return self._layout.slot_y[self._cell_to_slot]

    def cell_row(self) -> np.ndarray:
        """Row index of every cell (new array, length ``num_cells``)."""
        return self._layout.slot_row[self._cell_to_slot]

    def position_of(self, cell: int) -> Tuple[float, float]:
        """``(x, y)`` coordinate of a single cell."""
        slot = self._cell_to_slot[cell]
        return float(self._layout.slot_x[slot]), float(self._layout.slot_y[slot])

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def swap_cells(self, cell_a: int, cell_b: int) -> None:
        """Exchange the slots of ``cell_a`` and ``cell_b`` (the paper's move).

        Swapping a cell with itself is a no-op.  The operation is its own
        inverse, which the tabu-search move machinery relies on.
        """
        if cell_a == cell_b:
            return
        n = self.num_cells
        if not (0 <= cell_a < n and 0 <= cell_b < n):
            raise PlacementError(f"swap_cells: cell indices ({cell_a}, {cell_b}) out of range")
        slot_a = self._cell_to_slot[cell_a]
        slot_b = self._cell_to_slot[cell_b]
        self._cell_to_slot[cell_a] = slot_b
        self._cell_to_slot[cell_b] = slot_a
        self._slot_to_cell[slot_a] = cell_b
        self._slot_to_cell[slot_b] = cell_a

    def apply_swaps(self, swaps: Iterable[Tuple[int, int]]) -> None:
        """Apply a sequence of swaps in order (a *compound move*)."""
        for a, b in swaps:
            self.swap_cells(a, b)

    def undo_swaps(self, swaps: Sequence[Tuple[int, int]]) -> None:
        """Undo a previously applied sequence of swaps (applied in reverse)."""
        for a, b in reversed(list(swaps)):
            self.swap_cells(a, b)

    def set_assignment(self, cell_to_slot: Sequence[int] | np.ndarray) -> None:
        """Replace the whole assignment in place (used when a better solution
        arrives over the simulated network).

        The new assignment is validated exactly like in the constructor.
        """
        cts = np.asarray(cell_to_slot, dtype=np.int64)
        n_cells = self.num_cells
        if cts.shape != (n_cells,):
            raise PlacementError(
                f"set_assignment: expected shape ({n_cells},), got {cts.shape}"
            )
        if cts.min(initial=0) < 0 or cts.max(initial=-1) >= self._layout.num_slots:
            raise PlacementError("set_assignment: out-of-range slot indices")
        if len(np.unique(cts)) != n_cells:
            raise PlacementError("set_assignment: two cells share the same slot")
        self._cell_to_slot[:] = cts
        self._slot_to_cell[:] = EMPTY_SLOT
        self._slot_to_cell[cts] = np.arange(n_cells, dtype=np.int64)

    def save_state(self) -> Tuple[np.ndarray, np.ndarray]:
        """Copies of both assignment directions, for :meth:`restore_state`.

        Unlike :meth:`to_array` / :meth:`set_assignment` the save/restore pair
        skips re-validation and re-derivation of ``slot_to_cell`` — it exists
        so the tabu search can rewind trial compound moves cheaply.
        """
        return self._cell_to_slot.copy(), self._slot_to_cell.copy()

    def restore_state(self, state: Tuple[np.ndarray, np.ndarray]) -> None:
        """Restore an assignment snapshot produced by :meth:`save_state`."""
        cell_to_slot, slot_to_cell = state
        self._cell_to_slot[:] = cell_to_slot
        self._slot_to_cell[:] = slot_to_cell

    # ------------------------------------------------------------------ #
    # copying / serialisation / comparison
    # ------------------------------------------------------------------ #
    def copy(self) -> "Placement":
        """Deep copy (the arrays are duplicated)."""
        clone = object.__new__(Placement)
        clone._layout = self._layout
        clone._cell_to_slot = self._cell_to_slot.copy()
        clone._slot_to_cell = self._slot_to_cell.copy()
        return clone

    def assignment_tuple(self) -> Tuple[int, ...]:
        """Hashable snapshot of the assignment (used by tests and tabu memory)."""
        return tuple(int(s) for s in self._cell_to_slot)

    def to_array(self) -> np.ndarray:
        """Return a copy of the ``cell → slot`` array (for message passing)."""
        return self._cell_to_slot.copy()

    @classmethod
    def from_array(cls, layout: Layout, array: np.ndarray) -> "Placement":
        """Rebuild a placement from an array produced by :meth:`to_array`."""
        return cls(layout, array)

    def equals(self, other: "Placement") -> bool:
        """Whether both placements assign every cell to the same slot."""
        return bool(np.array_equal(self._cell_to_slot, other._cell_to_slot))

    def validate(self) -> None:
        """Re-check internal consistency (used by property-based tests)."""
        stc = self._slot_to_cell
        cts = self._cell_to_slot
        occupied = np.flatnonzero(stc != EMPTY_SLOT)
        if len(occupied) != self.num_cells:
            raise PlacementError("slot_to_cell occupancy does not match number of cells")
        if not np.array_equal(cts[stc[occupied]], occupied):
            raise PlacementError("cell_to_slot and slot_to_cell are inconsistent")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Placement(circuit={self.netlist.name!r}, cells={self.num_cells})"


def random_placement(layout: Layout, seed: int = 0) -> Placement:
    """Create a uniformly random initial placement.

    The paper's master process generates one initial solution and hands the
    *same* solution to every TSW; determinism here ensures all workers start
    identically for a given seed.
    """
    rng = make_rng(seed, "initial-placement", layout.netlist.name)
    slots = rng.permutation(layout.num_slots)[: layout.netlist.num_cells]
    return Placement(layout, slots)
