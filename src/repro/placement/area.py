"""Area objective for row-based standard-cell placement.

With cells of varying widths assigned to rows of slots, the chip outline must
be wide enough to hold the *widest* row.  The area objective therefore is::

    area = max_row_width * num_rows * row_height

which rewards placements that balance total cell width evenly across rows.
:class:`AreaState` maintains the per-row width sums incrementally so that a
swap's area delta costs O(1).
"""

from __future__ import annotations

import numpy as np

from .solution import Placement

__all__ = ["row_widths", "full_area", "AreaState"]


def row_widths(placement: Placement) -> np.ndarray:
    """Total cell width placed in each row (length ``num_rows``)."""
    rows = placement.cell_row()
    widths = placement.netlist.cell_widths
    return np.bincount(rows, weights=widths, minlength=placement.layout.num_rows)


def full_area(placement: Placement) -> float:
    """Chip area implied by the widest row."""
    layout = placement.layout
    widest = float(row_widths(placement).max())
    return widest * layout.num_rows * layout.spec.row_height


class AreaState:
    """Incremental area cost bound to one :class:`Placement`."""

    def __init__(self, placement: Placement) -> None:
        self._placement = placement
        self._layout = placement.layout
        self._widths = placement.netlist.cell_widths
        self.rebuild()

    def rebuild(self) -> None:
        """Recompute the per-row width sums from scratch."""
        self._row_widths = row_widths(self._placement)

    @property
    def per_row(self) -> np.ndarray:
        """Current per-row width sums (read-only view)."""
        view = self._row_widths.view()
        view.flags.writeable = False
        return view

    @property
    def max_row_width(self) -> float:
        """Width of the widest row."""
        return float(self._row_widths.max())

    @property
    def total(self) -> float:
        """Current area value."""
        return self.max_row_width * self._layout.num_rows * self._layout.spec.row_height

    # ------------------------------------------------------------------ #
    def _rows_of(self, cell_a: int, cell_b: int) -> tuple[int, int]:
        slot_row = self._layout.slot_row
        cts = self._placement.cell_to_slot
        return int(slot_row[cts[cell_a]]), int(slot_row[cts[cell_b]])

    def delta_for_swap(self, cell_a: int, cell_b: int) -> float:
        """Area change if ``cell_a`` and ``cell_b`` exchanged slots."""
        if cell_a == cell_b:
            return 0.0
        row_a, row_b = self._rows_of(cell_a, cell_b)
        if row_a == row_b:
            return 0.0
        wa = float(self._widths[cell_a])
        wb = float(self._widths[cell_b])
        new_rows = self._row_widths.copy()
        new_rows[row_a] += wb - wa
        new_rows[row_b] += wa - wb
        scale = self._layout.num_rows * self._layout.spec.row_height
        return float((new_rows.max() - self._row_widths.max()) * scale)

    def commit_swap(self, cell_a: int, cell_b: int) -> None:
        """Update the row sums after the placement swap was applied.

        Note: the placement has already been swapped, so the rows read from
        the placement are the *new* rows of each cell.
        """
        if cell_a == cell_b:
            return
        new_row_a, new_row_b = self._rows_of(cell_a, cell_b)
        if new_row_a == new_row_b:
            return
        wa = float(self._widths[cell_a])
        wb = float(self._widths[cell_b])
        # cell_a now sits in new_row_a (formerly cell_b's row) and vice versa.
        self._row_widths[new_row_a] += wa
        self._row_widths[new_row_b] -= wa
        self._row_widths[new_row_b] += wb
        self._row_widths[new_row_a] -= wb
