"""Area objective for row-based standard-cell placement.

With cells of varying widths assigned to rows of slots, the chip outline must
be wide enough to hold the *widest* row.  The area objective therefore is::

    area = max_row_width * num_rows * row_height

which rewards placements that balance total cell width evenly across rows.
:class:`AreaState` maintains the per-row width sums incrementally so that a
swap's area delta costs O(1).
"""

from __future__ import annotations

import numpy as np

from .solution import Placement

__all__ = ["row_widths", "full_area", "AreaState"]


def row_widths(placement: Placement) -> np.ndarray:
    """Total cell width placed in each row (length ``num_rows``)."""
    rows = placement.cell_row()
    widths = placement.netlist.cell_widths
    return np.bincount(rows, weights=widths, minlength=placement.layout.num_rows)


def full_area(placement: Placement) -> float:
    """Chip area implied by the widest row."""
    layout = placement.layout
    widest = float(row_widths(placement).max())
    return widest * layout.num_rows * layout.spec.row_height


class AreaState:
    """Incremental area cost bound to one :class:`Placement`."""

    def __init__(self, placement: Placement) -> None:
        self._placement = placement
        self._layout = placement.layout
        self._widths = placement.netlist.cell_widths
        self.rebuild()

    def rebuild(self) -> None:
        """Recompute the per-row width sums from scratch."""
        self._row_widths = row_widths(self._placement)

    @property
    def per_row(self) -> np.ndarray:
        """Current per-row width sums (read-only view)."""
        view = self._row_widths.view()
        view.flags.writeable = False
        return view

    @property
    def max_row_width(self) -> float:
        """Width of the widest row."""
        return float(self._row_widths.max())

    @property
    def total(self) -> float:
        """Current area value."""
        return self.max_row_width * self._layout.num_rows * self._layout.spec.row_height

    # ------------------------------------------------------------------ #
    # snapshot / restore (used by the search loop to try candidates cheaply)
    # ------------------------------------------------------------------ #
    def save_state(self) -> np.ndarray:
        """Copy of the per-row width sums, restorable via :meth:`restore_state`."""
        return self._row_widths.copy()

    def restore_state(self, state: np.ndarray) -> None:
        """Restore a snapshot (the placement must be restored separately)."""
        self._row_widths = state.copy()

    # ------------------------------------------------------------------ #
    def _rows_of(self, cell_a: int, cell_b: int) -> tuple[int, int]:
        slot_row = self._layout.slot_row
        cts = self._placement.cell_to_slot
        return int(slot_row[cts[cell_a]]), int(slot_row[cts[cell_b]])

    def deltas_for_swaps(self, cells_a, cells_b) -> np.ndarray:
        """Area change of every candidate swap ``(a_i, b_i)`` in one batch.

        A swap only changes the area when the two cells sit in different rows
        and the widest row changes.  Instead of rebuilding the per-row sums
        per trial, the kernel precomputes the three widest rows once; for any
        pair at most two rows change, so the new maximum is
        ``max(new_row_a, new_row_b, widest untouched row)`` and the widest
        untouched row is always among the top three.
        """
        a = np.atleast_1d(np.asarray(cells_a, dtype=np.int64))
        b = np.atleast_1d(np.asarray(cells_b, dtype=np.int64))
        num_pairs = int(a.size)
        out = np.zeros(num_pairs, dtype=np.float64)
        if num_pairs == 0:
            return out
        slot_row = self._layout.slot_row
        cts = self._placement.cell_to_slot
        rows_a = slot_row[cts[a]]
        rows_b = slot_row[cts[b]]
        active = (a != b) & (rows_a != rows_b)
        if not active.any():
            return out
        rw = self._row_widths
        cur_max = float(rw.max())
        # top-3 rows by width, padded so two excluded rows always leave a value
        k = min(3, rw.size)
        top = np.argpartition(rw, rw.size - k)[rw.size - k:]
        top = top[np.argsort(rw[top])[::-1]]
        top_rows = np.full(3, -1, dtype=np.int64)
        top_vals = np.full(3, -np.inf, dtype=np.float64)
        top_rows[:k] = top
        top_vals[:k] = rw[top]

        ra = rows_a[active]
        rb = rows_b[active]
        shift = self._widths[b[active]] - self._widths[a[active]]
        new_a = rw[ra] + shift
        new_b = rw[rb] - shift
        untouched = np.where(
            (top_rows[0] != ra) & (top_rows[0] != rb),
            top_vals[0],
            np.where((top_rows[1] != ra) & (top_rows[1] != rb), top_vals[1], top_vals[2]),
        )
        new_max = np.maximum(np.maximum(new_a, new_b), untouched)
        scale = self._layout.num_rows * self._layout.spec.row_height
        out[active] = (new_max - cur_max) * scale
        return out

    def delta_for_swap(self, cell_a: int, cell_b: int) -> float:
        """Area change if ``cell_a`` and ``cell_b`` exchanged slots."""
        if cell_a == cell_b:
            return 0.0
        return float(self.deltas_for_swaps(
            np.array([cell_a], dtype=np.int64), np.array([cell_b], dtype=np.int64)
        )[0])

    def apply_moved_cells(self, cells: np.ndarray, old_rows: np.ndarray) -> None:
        """Update row sums after a whole swap sequence moved ``cells``.

        ``old_rows`` are the rows the cells occupied *before* the sequence;
        the placement must already reflect the final assignment.  Intermediate
        hops cancel, so only the net start→end row change of each touched
        cell matters.
        """
        cells = np.asarray(cells, dtype=np.int64)
        if cells.size == 0:
            return
        new_rows = self._layout.slot_row[self._placement.cell_to_slot[cells]]
        moved = new_rows != old_rows
        if not moved.any():
            return
        widths = self._widths[cells[moved]]
        rows = self._layout.num_rows
        self._row_widths += np.bincount(
            new_rows[moved], weights=widths, minlength=rows
        ) - np.bincount(old_rows[moved], weights=widths, minlength=rows)

    def commit_swap(self, cell_a: int, cell_b: int) -> None:
        """Update the row sums after the placement swap was applied.

        Note: the placement has already been swapped, so the rows read from
        the placement are the *new* rows of each cell.
        """
        if cell_a == cell_b:
            return
        new_row_a, new_row_b = self._rows_of(cell_a, cell_b)
        if new_row_a == new_row_b:
            return
        wa = float(self._widths[cell_a])
        wb = float(self._widths[cell_b])
        # cell_a now sits in new_row_a (formerly cell_b's row) and vice versa.
        self._row_widths[new_row_a] += wa
        self._row_widths[new_row_b] -= wa
        self._row_widths[new_row_b] += wb
        self._row_widths[new_row_a] -= wb
