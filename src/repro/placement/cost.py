"""Multi-objective placement cost with fuzzy goal-based aggregation.

This module ties the three crisp objectives — weighted HPWL wirelength,
critical-path delay and row-balanced area — to the fuzzy goal machinery of
:mod:`repro.fuzzy` and exposes the single entry point used by the tabu-search
engine: :class:`CostEvaluator`.

The evaluator owns a :class:`~repro.placement.solution.Placement` together
with the incremental state of every objective, so that

* ``evaluate_swap(a, b)`` returns the *scalar cost* the solution would have if
  cells ``a`` and ``b`` exchanged slots (in time proportional to the nets
  touching the two cells), and
* ``commit_swap(a, b)`` actually applies the swap and keeps all caches
  consistent.

Because the fuzzy aggregation is non-linear, deltas of the scalar cost are
always computed by aggregating the hypothetical objective vector, never by
adding per-objective deltas directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Literal, Mapping, Optional

import numpy as np

from ..errors import CostModelError
from ..fuzzy import FuzzyGoal, FuzzyGoalAggregator
from .area import AreaState
from .layout import Layout
from .solution import Placement
from .timing import TimingAnalyzer, TimingModel, TimingState
from .wirelength import WirelengthState

__all__ = ["ObjectiveVector", "CostModelParams", "CostEvaluator", "EvaluatorState"]

#: Canonical objective names used throughout the library.
WIRELENGTH = "wirelength"
DELAY = "delay"
AREA = "area"


@dataclass(frozen=True, slots=True)
class ObjectiveVector:
    """Crisp values of the three placement objectives."""

    wirelength: float
    delay: float
    area: float

    def as_dict(self) -> Dict[str, float]:
        """Mapping from objective name to value (for the fuzzy aggregator)."""
        return {WIRELENGTH: self.wirelength, DELAY: self.delay, AREA: self.area}

    def dominates(self, other: "ObjectiveVector") -> bool:
        """Pareto dominance: no worse in all objectives and better in one."""
        no_worse = (
            self.wirelength <= other.wirelength
            and self.delay <= other.delay
            and self.area <= other.area
        )
        better = (
            self.wirelength < other.wirelength
            or self.delay < other.delay
            or self.area < other.area
        )
        return no_worse and better


@dataclass(frozen=True, slots=True)
class CostModelParams:
    """Configuration of the multi-objective cost model.

    The ``*_goal_factor`` / ``*_upper_factor`` pairs define, per objective,
    the fuzzy goal relative to the *reference* solution (normally the initial
    placement): the goal is ``goal_factor * reference`` and the membership
    falls to zero at ``upper_factor * reference``.

    ``aggregation`` selects between the paper's fuzzy goal-based cost and a
    plain normalised weighted sum (kept as an ablation baseline).
    """

    wire_goal_factor: float = 0.55
    wire_upper_factor: float = 1.10
    delay_goal_factor: float = 0.70
    delay_upper_factor: float = 1.10
    area_goal_factor: float = 0.85
    area_upper_factor: float = 1.10
    wire_weight: float = 2.0
    delay_weight: float = 1.0
    area_weight: float = 1.0
    beta: float = 0.7
    aggregation: Literal["fuzzy", "weighted_sum"] = "fuzzy"
    timing_refresh_interval: int = 8
    wire_delay_per_unit: float = 0.05

    def __post_init__(self) -> None:
        for label, goal, upper in (
            ("wire", self.wire_goal_factor, self.wire_upper_factor),
            ("delay", self.delay_goal_factor, self.delay_upper_factor),
            ("area", self.area_goal_factor, self.area_upper_factor),
        ):
            if not (0.0 < goal < upper):
                raise CostModelError(
                    f"{label}: need 0 < goal_factor < upper_factor, got {goal}, {upper}"
                )
        for label, weight in (
            ("wire_weight", self.wire_weight),
            ("delay_weight", self.delay_weight),
            ("area_weight", self.area_weight),
        ):
            if weight <= 0:
                raise CostModelError(f"{label} must be positive, got {weight}")
        if not (0.0 <= self.beta <= 1.0):
            raise CostModelError(f"beta must be in [0, 1], got {self.beta}")
        if self.aggregation not in ("fuzzy", "weighted_sum"):
            raise CostModelError(f"unknown aggregation {self.aggregation!r}")
        if self.timing_refresh_interval < 1:
            raise CostModelError("timing_refresh_interval must be >= 1")


@dataclass(frozen=True, slots=True)
class EvaluatorState:
    """Opaque snapshot of a :class:`CostEvaluator`'s full mutable state.

    Produced by :meth:`CostEvaluator.save_state` and consumed by
    :meth:`CostEvaluator.restore_state`; the tabu search uses it to rewind
    trial compound moves without paying full cache updates twice (commit +
    reverse commit) per candidate.
    """

    assignment: tuple
    wirelength: tuple
    area: np.ndarray
    timing: tuple
    cached_cost: Optional[float]


class CostEvaluator:
    """Scalar cost of a placement, with incremental swap evaluation.

    Parameters
    ----------
    placement:
        The (mutable) solution this evaluator is bound to.
    params:
        Cost-model configuration.
    reference:
        Objective values used to anchor the fuzzy goals and the weighted-sum
        normalisation.  Defaults to the objectives of ``placement`` at
        construction time.  All workers of a parallel run must share the same
        reference so their costs are comparable; the master computes it once
        and ships it together with the initial solution.
    device:
        Where the batched wirelength kernel executes (``"cpu"``, ``"cuda"``
        or ``None`` to defer to ``REPRO_DEVICE`` / the capability probe —
        see :mod:`repro.accel`).
    """

    def __init__(
        self,
        placement: Placement,
        params: CostModelParams | None = None,
        *,
        reference: Optional[ObjectiveVector] = None,
        device: Optional[str] = None,
    ) -> None:
        self._placement = placement
        self._params = params or CostModelParams()
        self._wirelength = WirelengthState(placement, device=device)
        analyzer = TimingAnalyzer(
            placement.netlist, TimingModel(self._params.wire_delay_per_unit)
        )
        self._timing = TimingState(
            placement, analyzer, refresh_interval=self._params.timing_refresh_interval
        )
        self._area = AreaState(placement)
        self._reference = reference or self.objectives()
        self._aggregator = self._build_aggregator(self._reference)
        # Constants for the scalar fast path of cost(): identical arithmetic
        # to FuzzyGoalAggregator.cost (same operation order, so bit-identical
        # results) without the per-call dict/array churn — cost() runs after
        # every committed swap.
        goals = self._aggregator.goals
        self._goal_bounds = tuple((g.goal, g.upper) for g in goals)
        self._goal_weights = tuple(g.weight for g in goals)
        self._goal_weight_sum = float(np.add.reduce(np.array(self._goal_weights)))
        self._beta = float(self._aggregator.beta)
        #: Number of swap evaluations performed (trials + commits).  The
        #: simulated cluster uses this as the "work units" a process consumed.
        self.evaluations: int = 0
        # Scalar cost of the *current* solution, invalidated on every
        # mutation; avoids re-running the fuzzy aggregation for repeated
        # cost() calls between commits (trial evaluation asks constantly).
        self._cached_cost: Optional[float] = None

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def _build_aggregator(self, reference: ObjectiveVector) -> FuzzyGoalAggregator:
        p = self._params
        goals = [
            FuzzyGoal.from_reference(
                WIRELENGTH, reference.wirelength,
                goal_factor=p.wire_goal_factor, upper_factor=p.wire_upper_factor,
                weight=p.wire_weight,
            ),
            FuzzyGoal.from_reference(
                DELAY, reference.delay,
                goal_factor=p.delay_goal_factor, upper_factor=p.delay_upper_factor,
                weight=p.delay_weight,
            ),
            FuzzyGoal.from_reference(
                AREA, reference.area,
                goal_factor=p.area_goal_factor, upper_factor=p.area_upper_factor,
                weight=p.area_weight,
            ),
        ]
        return FuzzyGoalAggregator(goals, beta=p.beta)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def placement(self) -> Placement:
        """The solution this evaluator is bound to."""
        return self._placement

    @property
    def num_cells(self) -> int:
        """Number of swappable items (protocol surface: ``SwapEvaluator``)."""
        return self._placement.num_cells

    @property
    def instance_name(self) -> str:
        """Circuit name (protocol surface: seeds worker RNG streams)."""
        return self._placement.netlist.name

    @property
    def params(self) -> CostModelParams:
        """Cost-model configuration."""
        return self._params

    @property
    def reference(self) -> ObjectiveVector:
        """Reference objective vector anchoring the goals."""
        return self._reference

    @property
    def aggregator(self) -> FuzzyGoalAggregator:
        """The fuzzy goal aggregator (also used in weighted-sum mode for goals)."""
        return self._aggregator

    @property
    def device(self) -> str:
        """Resolved execution device of the wirelength kernel (``cpu``/``cuda``)."""
        return self._wirelength.device

    def transfer_stats(self):
        """Host↔device traffic of the wirelength kernel (all-zero on CPU)."""
        return self._wirelength.transfer_stats()

    def objectives(self) -> ObjectiveVector:
        """Current crisp objective values from the incremental caches."""
        return ObjectiveVector(
            wirelength=self._wirelength.total,
            delay=self._timing.critical_delay,
            area=self._area.total,
        )

    def aggregate(self, objectives: ObjectiveVector) -> float:
        """Scalar cost (lower is better) of an arbitrary objective vector."""
        if self._params.aggregation == "fuzzy":
            return self._aggregator.cost(objectives.as_dict())
        # normalised weighted sum
        p = self._params
        ref = self._reference
        total_weight = p.wire_weight + p.delay_weight + p.area_weight
        return float(
            (
                p.wire_weight * objectives.wirelength / max(ref.wirelength, 1e-9)
                + p.delay_weight * objectives.delay / max(ref.delay, 1e-9)
                + p.area_weight * objectives.area / max(ref.area, 1e-9)
            )
            / total_weight
        )

    def aggregate_batch(
        self, wirelength: np.ndarray, delay: np.ndarray, area: np.ndarray
    ) -> np.ndarray:
        """Scalar costs of a whole batch of objective vectors at once."""
        if self._params.aggregation == "fuzzy":
            return self._aggregator.cost_batch(
                {WIRELENGTH: wirelength, DELAY: delay, AREA: area}
            )
        p = self._params
        ref = self._reference
        total_weight = p.wire_weight + p.delay_weight + p.area_weight
        return (
            p.wire_weight * np.asarray(wirelength, dtype=np.float64) / max(ref.wirelength, 1e-9)
            + p.delay_weight * np.asarray(delay, dtype=np.float64) / max(ref.delay, 1e-9)
            + p.area_weight * np.asarray(area, dtype=np.float64) / max(ref.area, 1e-9)
        ) / total_weight

    def cost(self) -> float:
        """Scalar cost of the current placement (cached between mutations)."""
        if self._cached_cost is None:
            if self._params.aggregation == "fuzzy":
                values = (
                    self._wirelength.total,
                    self._timing.critical_delay,
                    self._area.total,
                )
                mus = []
                weighted = 0.0
                for value, (goal, upper), weight in zip(
                    values, self._goal_bounds, self._goal_weights
                ):
                    scaled = (upper - value) / (upper - goal)
                    mu = min(1.0, max(0.0, scaled))
                    mus.append(mu)
                    # left-to-right accumulation matches np.average's
                    # sequential reduce, keeping the result bit-identical
                    weighted += mu * weight
                weighted /= self._goal_weight_sum
                beta = self._beta
                self._cached_cost = 1.0 - (beta * min(mus) + (1.0 - beta) * weighted)
            else:
                self._cached_cost = self.aggregate(self.objectives())
        return self._cached_cost

    def exact_cost(self) -> float:
        """Scalar cost with the timing surrogate refreshed to an exact STA."""
        self._timing.refresh()
        self._cached_cost = None
        return self.cost()

    def memberships(self) -> Dict[str, float]:
        """Per-objective fuzzy memberships of the current placement."""
        return self._aggregator.memberships(self.objectives().as_dict())

    # ------------------------------------------------------------------ #
    # swap evaluation / mutation
    # ------------------------------------------------------------------ #
    def evaluate_swaps_batch(self, pairs) -> np.ndarray:
        """Costs the solution would have under each candidate swap of a batch.

        ``pairs`` is any ``(n, 2)`` array-like of cell pairs (or a sequence of
        2-tuples).  Each pair is scored independently against the *current*
        solution — semantically ``n`` calls to :meth:`evaluate_swap`, but the
        wirelength/area/timing deltas and the fuzzy aggregation are each
        computed once for the whole batch in vectorised NumPy.  Nothing is
        mutated.
        """
        arr = np.asarray(pairs, dtype=np.int64)
        if arr.size == 0:
            return np.zeros(0, dtype=np.float64)
        arr = arr.reshape(-1, 2)
        cells_a = arr[:, 0]
        cells_b = arr[:, 1]
        distinct = cells_a != cells_b
        self.evaluations += int(np.count_nonzero(distinct))
        current = self.objectives()
        costs = self.aggregate_batch(
            current.wirelength + self._wirelength.deltas_for_swaps(cells_a, cells_b),
            current.delay + self._timing.deltas_for_swaps(cells_a, cells_b),
            current.area + self._area.deltas_for_swaps(cells_a, cells_b),
        )
        if not distinct.all():
            costs[~distinct] = self.cost()
        return costs

    def evaluate_swap(self, cell_a: int, cell_b: int) -> float:
        """Cost the solution would have if ``cell_a`` and ``cell_b`` swapped.

        A single-pair call into :meth:`evaluate_swaps_batch`, so scalar and
        batched evaluation agree exactly.
        """
        return float(self.evaluate_swaps_batch(np.array([[cell_a, cell_b]], dtype=np.int64))[0])

    def swap_gain(self, cell_a: int, cell_b: int) -> float:
        """Cost reduction achieved by swapping (positive = improvement).

        Uses the cached current cost, so one trial evaluation is the only
        work done per call.
        """
        return self.cost() - self.evaluate_swap(cell_a, cell_b)

    def commit_swap(self, cell_a: int, cell_b: int) -> float:
        """Apply the swap, update all incremental caches and return the new cost."""
        if cell_a == cell_b:
            return self.cost()
        self.evaluations += 1
        self._placement.swap_cells(cell_a, cell_b)
        self._wirelength.commit_swap(cell_a, cell_b)
        self._area.commit_swap(cell_a, cell_b)
        self._timing.commit_swap(cell_a, cell_b)
        self._cached_cost = None
        return self.cost()

    def apply_swaps(self, pairs, *, exact_timing: bool = False) -> float:
        """Commit a short swap sequence against the resident state.

        The delta form of the parallel protocol: instead of installing a full
        solution and rebuilding every cache, the few swaps that separate the
        resident solution from the target are committed as one bulk update —
        the placement is swapped through, the affected nets' bboxes are
        re-reduced once, the area row sums are scatter-updated from the net
        start→end row changes, and the timing state is advanced once.

        With ``exact_timing=True`` the timing analysis is refreshed exactly,
        leaving the evaluator in the same state a full
        :meth:`install_solution` of the target would produce — this is what
        the worker adopt paths use, so delta shipment and full shipment are
        interchangeable; like an install, such an adoption does *not* count
        toward :attr:`evaluations` (it is protocol bookkeeping, not search
        work).  Without it, the surrogate advances as if the swaps had been
        committed one by one and the swaps count as work (a single-pair call
        degenerates to :meth:`commit_swap`).
        """
        arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        if arr.size:
            arr = arr[arr[:, 0] != arr[:, 1]]
        if arr.size == 0:
            if exact_timing:
                self._timing.refresh()
                self._cached_cost = None
            return self.cost()
        if len(arr) == 1 and not exact_timing:
            return self.commit_swap(int(arr[0, 0]), int(arr[0, 1]))
        if not exact_timing:
            self.evaluations += len(arr)
        cells = np.unique(arr)
        old_rows = self._placement.layout.slot_row[
            self._placement.cell_to_slot[cells]
        ]
        for cell_a, cell_b in arr.tolist():
            self._placement.swap_cells(cell_a, cell_b)
        self._wirelength.recompute_cells(cells)
        self._area.apply_moved_cells(cells, old_rows)
        if exact_timing:
            self._timing.refresh()
        else:
            self._timing.apply_bulk(cells, len(arr))
        self._cached_cost = None
        return self.cost()

    def undo_swaps(self, pairs) -> float:
        """Reverse a committed swap sequence with one bulk cache update.

        A swap is its own inverse, so undoing means re-applying the pairs in
        reverse order; the affected nets/rows are re-reduced once through the
        same bulk path :meth:`apply_swaps` uses.  The assignment is restored
        exactly; the timing surrogate re-accumulates (use
        :meth:`save_state`/:meth:`restore_state` when bit-exact rewinds
        matter — the search drivers do).  Does not count as search work.
        """
        arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)[::-1]
        evaluations = self.evaluations
        cost = self.apply_swaps(arr)
        self.evaluations = evaluations
        return cost

    def install_solution(self, cell_to_slot: np.ndarray) -> float:
        """Adopt a whole new assignment (e.g. received from another worker)."""
        self._placement.set_assignment(cell_to_slot)
        self.rebuild()
        return self.cost()

    def rebuild(self) -> None:
        """Rebuild every incremental cache from the placement's current state."""
        self._wirelength.rebuild()
        self._area.rebuild()
        self._timing.refresh()
        self._cached_cost = None

    def snapshot(self) -> np.ndarray:
        """Copy of the current assignment, suitable for message passing."""
        return self._placement.to_array()

    def save_state(self) -> EvaluatorState:
        """Snapshot the solution and every incremental cache.

        Restoring via :meth:`restore_state` is much cheaper than undoing a
        sequence of swaps with reverse commits: it is a handful of array
        copies instead of per-swap cache updates, and it restores the timing
        surrogate exactly (reverse commits advance its refresh counter).
        """
        return EvaluatorState(
            assignment=self._placement.save_state(),
            wirelength=self._wirelength.save_state(),
            area=self._area.save_state(),
            timing=self._timing.save_state(),
            cached_cost=self._cached_cost,
        )

    def restore_state(self, state: EvaluatorState) -> None:
        """Rewind the evaluator to a snapshot from :meth:`save_state`.

        The work counter (:attr:`evaluations`) is deliberately *not* rewound —
        trials spent on an abandoned branch were still spent.
        """
        self._placement.restore_state(state.assignment)
        self._wirelength.restore_state(state.wirelength)
        self._area.restore_state(state.area)
        self._timing.restore_state(state.timing)
        self._cached_cost = state.cached_cost

    def diversification_distances(
        self, cell: int, candidates: np.ndarray
    ) -> np.ndarray:
        """Manhattan slot distance from ``cell`` to each candidate cell.

        The problem-level neighbourhood hook of the ``SwapEvaluator``
        protocol: diversification pushes a rarely-moved cell to the farthest
        of a few sampled partners, and "far" for placement is the Manhattan
        distance between the cells' current slots.
        """
        candidates = np.asarray(candidates, dtype=np.int64)
        x = self._placement.cell_x()
        y = self._placement.cell_y()
        return np.abs(x[candidates] - x[cell]) + np.abs(y[candidates] - y[cell])

    def verify_consistency(self, *, atol: float = 1e-6) -> None:
        """Check incremental caches against from-scratch recomputation.

        Used by tests and (optionally) by long runs as a self-check.  Raises
        :class:`~repro.errors.CostModelError` on divergence.
        """
        from .area import full_area
        from .wirelength import full_hpwl

        _, wl = full_hpwl(self._placement)
        if abs(wl - self._wirelength.total) > atol * max(1.0, abs(wl)):
            raise CostModelError(
                f"wirelength cache drift: cached={self._wirelength.total}, exact={wl}"
            )
        try:
            self._wirelength.verify_consistency(atol=atol)
        except ValueError as exc:
            raise CostModelError(str(exc)) from exc
        area = full_area(self._placement)
        if abs(area - self._area.total) > atol * max(1.0, abs(area)):
            raise CostModelError(
                f"area cache drift: cached={self._area.total}, exact={area}"
            )
        self._placement.validate()


def make_evaluator(
    layout: Layout,
    cell_to_slot: np.ndarray,
    params: CostModelParams | None = None,
    *,
    reference: Optional[ObjectiveVector] = None,
    device: Optional[str] = None,
) -> CostEvaluator:
    """Convenience constructor: build a placement + evaluator from an array."""
    placement = Placement(layout, cell_to_slot)
    return CostEvaluator(placement, params, reference=reference, device=device)
