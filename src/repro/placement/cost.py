"""Multi-objective placement cost with fuzzy goal-based aggregation.

This module ties the three crisp objectives — weighted HPWL wirelength,
critical-path delay and row-balanced area — to the fuzzy goal machinery of
:mod:`repro.fuzzy` and exposes the single entry point used by the tabu-search
engine: :class:`CostEvaluator`.

The evaluator owns a :class:`~repro.placement.solution.Placement` together
with the incremental state of every objective, so that

* ``evaluate_swap(a, b)`` returns the *scalar cost* the solution would have if
  cells ``a`` and ``b`` exchanged slots (in time proportional to the nets
  touching the two cells), and
* ``commit_swap(a, b)`` actually applies the swap and keeps all caches
  consistent.

Because the fuzzy aggregation is non-linear, deltas of the scalar cost are
always computed by aggregating the hypothetical objective vector, never by
adding per-objective deltas directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Literal, Mapping, Optional

import numpy as np

from ..errors import CostModelError
from ..fuzzy import FuzzyGoal, FuzzyGoalAggregator
from .area import AreaState
from .layout import Layout
from .solution import Placement
from .timing import TimingAnalyzer, TimingModel, TimingState
from .wirelength import WirelengthState

__all__ = ["ObjectiveVector", "CostModelParams", "CostEvaluator"]

#: Canonical objective names used throughout the library.
WIRELENGTH = "wirelength"
DELAY = "delay"
AREA = "area"


@dataclass(frozen=True, slots=True)
class ObjectiveVector:
    """Crisp values of the three placement objectives."""

    wirelength: float
    delay: float
    area: float

    def as_dict(self) -> Dict[str, float]:
        """Mapping from objective name to value (for the fuzzy aggregator)."""
        return {WIRELENGTH: self.wirelength, DELAY: self.delay, AREA: self.area}

    def dominates(self, other: "ObjectiveVector") -> bool:
        """Pareto dominance: no worse in all objectives and better in one."""
        no_worse = (
            self.wirelength <= other.wirelength
            and self.delay <= other.delay
            and self.area <= other.area
        )
        better = (
            self.wirelength < other.wirelength
            or self.delay < other.delay
            or self.area < other.area
        )
        return no_worse and better


@dataclass(frozen=True, slots=True)
class CostModelParams:
    """Configuration of the multi-objective cost model.

    The ``*_goal_factor`` / ``*_upper_factor`` pairs define, per objective,
    the fuzzy goal relative to the *reference* solution (normally the initial
    placement): the goal is ``goal_factor * reference`` and the membership
    falls to zero at ``upper_factor * reference``.

    ``aggregation`` selects between the paper's fuzzy goal-based cost and a
    plain normalised weighted sum (kept as an ablation baseline).
    """

    wire_goal_factor: float = 0.55
    wire_upper_factor: float = 1.10
    delay_goal_factor: float = 0.70
    delay_upper_factor: float = 1.10
    area_goal_factor: float = 0.85
    area_upper_factor: float = 1.10
    wire_weight: float = 2.0
    delay_weight: float = 1.0
    area_weight: float = 1.0
    beta: float = 0.7
    aggregation: Literal["fuzzy", "weighted_sum"] = "fuzzy"
    timing_refresh_interval: int = 8
    wire_delay_per_unit: float = 0.05

    def __post_init__(self) -> None:
        for label, goal, upper in (
            ("wire", self.wire_goal_factor, self.wire_upper_factor),
            ("delay", self.delay_goal_factor, self.delay_upper_factor),
            ("area", self.area_goal_factor, self.area_upper_factor),
        ):
            if not (0.0 < goal < upper):
                raise CostModelError(
                    f"{label}: need 0 < goal_factor < upper_factor, got {goal}, {upper}"
                )
        for label, weight in (
            ("wire_weight", self.wire_weight),
            ("delay_weight", self.delay_weight),
            ("area_weight", self.area_weight),
        ):
            if weight <= 0:
                raise CostModelError(f"{label} must be positive, got {weight}")
        if not (0.0 <= self.beta <= 1.0):
            raise CostModelError(f"beta must be in [0, 1], got {self.beta}")
        if self.aggregation not in ("fuzzy", "weighted_sum"):
            raise CostModelError(f"unknown aggregation {self.aggregation!r}")
        if self.timing_refresh_interval < 1:
            raise CostModelError("timing_refresh_interval must be >= 1")


class CostEvaluator:
    """Scalar cost of a placement, with incremental swap evaluation.

    Parameters
    ----------
    placement:
        The (mutable) solution this evaluator is bound to.
    params:
        Cost-model configuration.
    reference:
        Objective values used to anchor the fuzzy goals and the weighted-sum
        normalisation.  Defaults to the objectives of ``placement`` at
        construction time.  All workers of a parallel run must share the same
        reference so their costs are comparable; the master computes it once
        and ships it together with the initial solution.
    """

    def __init__(
        self,
        placement: Placement,
        params: CostModelParams | None = None,
        *,
        reference: Optional[ObjectiveVector] = None,
    ) -> None:
        self._placement = placement
        self._params = params or CostModelParams()
        self._wirelength = WirelengthState(placement)
        analyzer = TimingAnalyzer(
            placement.netlist, TimingModel(self._params.wire_delay_per_unit)
        )
        self._timing = TimingState(
            placement, analyzer, refresh_interval=self._params.timing_refresh_interval
        )
        self._area = AreaState(placement)
        self._reference = reference or self.objectives()
        self._aggregator = self._build_aggregator(self._reference)
        #: Number of swap evaluations performed (trials + commits).  The
        #: simulated cluster uses this as the "work units" a process consumed.
        self.evaluations: int = 0

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def _build_aggregator(self, reference: ObjectiveVector) -> FuzzyGoalAggregator:
        p = self._params
        goals = [
            FuzzyGoal.from_reference(
                WIRELENGTH, reference.wirelength,
                goal_factor=p.wire_goal_factor, upper_factor=p.wire_upper_factor,
                weight=p.wire_weight,
            ),
            FuzzyGoal.from_reference(
                DELAY, reference.delay,
                goal_factor=p.delay_goal_factor, upper_factor=p.delay_upper_factor,
                weight=p.delay_weight,
            ),
            FuzzyGoal.from_reference(
                AREA, reference.area,
                goal_factor=p.area_goal_factor, upper_factor=p.area_upper_factor,
                weight=p.area_weight,
            ),
        ]
        return FuzzyGoalAggregator(goals, beta=p.beta)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def placement(self) -> Placement:
        """The solution this evaluator is bound to."""
        return self._placement

    @property
    def params(self) -> CostModelParams:
        """Cost-model configuration."""
        return self._params

    @property
    def reference(self) -> ObjectiveVector:
        """Reference objective vector anchoring the goals."""
        return self._reference

    @property
    def aggregator(self) -> FuzzyGoalAggregator:
        """The fuzzy goal aggregator (also used in weighted-sum mode for goals)."""
        return self._aggregator

    def objectives(self) -> ObjectiveVector:
        """Current crisp objective values from the incremental caches."""
        return ObjectiveVector(
            wirelength=self._wirelength.total,
            delay=self._timing.critical_delay,
            area=self._area.total,
        )

    def aggregate(self, objectives: ObjectiveVector) -> float:
        """Scalar cost (lower is better) of an arbitrary objective vector."""
        if self._params.aggregation == "fuzzy":
            return self._aggregator.cost(objectives.as_dict())
        # normalised weighted sum
        p = self._params
        ref = self._reference
        total_weight = p.wire_weight + p.delay_weight + p.area_weight
        return float(
            (
                p.wire_weight * objectives.wirelength / max(ref.wirelength, 1e-9)
                + p.delay_weight * objectives.delay / max(ref.delay, 1e-9)
                + p.area_weight * objectives.area / max(ref.area, 1e-9)
            )
            / total_weight
        )

    def cost(self) -> float:
        """Scalar cost of the current placement."""
        return self.aggregate(self.objectives())

    def exact_cost(self) -> float:
        """Scalar cost with the timing surrogate refreshed to an exact STA."""
        self._timing.refresh()
        return self.cost()

    def memberships(self) -> Dict[str, float]:
        """Per-objective fuzzy memberships of the current placement."""
        return self._aggregator.memberships(self.objectives().as_dict())

    # ------------------------------------------------------------------ #
    # swap evaluation / mutation
    # ------------------------------------------------------------------ #
    def evaluate_swap(self, cell_a: int, cell_b: int) -> float:
        """Cost the solution would have if ``cell_a`` and ``cell_b`` swapped."""
        if cell_a == cell_b:
            return self.cost()
        self.evaluations += 1
        current = self.objectives()
        hypothetical = ObjectiveVector(
            wirelength=current.wirelength + self._wirelength.delta_for_swap(cell_a, cell_b),
            delay=current.delay + self._timing.delta_for_swap(cell_a, cell_b),
            area=current.area + self._area.delta_for_swap(cell_a, cell_b),
        )
        return self.aggregate(hypothetical)

    def swap_gain(self, cell_a: int, cell_b: int) -> float:
        """Cost reduction achieved by swapping (positive = improvement)."""
        return self.cost() - self.evaluate_swap(cell_a, cell_b)

    def commit_swap(self, cell_a: int, cell_b: int) -> float:
        """Apply the swap, update all incremental caches and return the new cost."""
        if cell_a == cell_b:
            return self.cost()
        self.evaluations += 1
        self._placement.swap_cells(cell_a, cell_b)
        self._wirelength.commit_swap(cell_a, cell_b)
        self._area.commit_swap(cell_a, cell_b)
        self._timing.commit_swap(cell_a, cell_b)
        return self.cost()

    def install_solution(self, cell_to_slot: np.ndarray) -> float:
        """Adopt a whole new assignment (e.g. received from another worker)."""
        self._placement.set_assignment(cell_to_slot)
        self.rebuild()
        return self.cost()

    def rebuild(self) -> None:
        """Rebuild every incremental cache from the placement's current state."""
        self._wirelength.rebuild()
        self._area.rebuild()
        self._timing.refresh()

    def snapshot(self) -> np.ndarray:
        """Copy of the current assignment, suitable for message passing."""
        return self._placement.to_array()

    def verify_consistency(self, *, atol: float = 1e-6) -> None:
        """Check incremental caches against from-scratch recomputation.

        Used by tests and (optionally) by long runs as a self-check.  Raises
        :class:`~repro.errors.CostModelError` on divergence.
        """
        from .area import full_area
        from .wirelength import full_hpwl

        _, wl = full_hpwl(self._placement)
        if abs(wl - self._wirelength.total) > atol * max(1.0, abs(wl)):
            raise CostModelError(
                f"wirelength cache drift: cached={self._wirelength.total}, exact={wl}"
            )
        area = full_area(self._placement)
        if abs(area - self._area.total) > atol * max(1.0, abs(area)):
            raise CostModelError(
                f"area cache drift: cached={self._area.total}, exact={area}"
            )
        self._placement.validate()


def make_evaluator(
    layout: Layout,
    cell_to_slot: np.ndarray,
    params: CostModelParams | None = None,
    *,
    reference: Optional[ObjectiveVector] = None,
) -> CostEvaluator:
    """Convenience constructor: build a placement + evaluator from an array."""
    placement = Placement(layout, cell_to_slot)
    return CostEvaluator(placement, params, reference=reference)
