"""Command-line interface.

The CLI wraps the most common workflows so the system can be driven without
writing Python::

    python -m repro problems                      # list problem domains
    python -m repro circuits                      # list benchmark circuits
    python -m repro run --circuit c532 --tsws 4 --clws 2
    python -m repro run --problem qap --instance rand64 --tsws 4
    python -m repro run --circuit c1355 --sync homogeneous --save-placement out.pl
    python -m repro run --circuit c532 --pause-after 2 --checkpoint run.rtss
    python -m repro run --resume run.rtss --checkpoint run.rtss
    python -m repro sessions run.rtss
    python -m repro figure fig9 --circuits c532
    python -m repro classify --tsws 4 --clws 4

Problem domains are resolved through the core registry
(:mod:`repro.core.registry`): ``--problem`` selects the domain and
``--instance`` names the instance in domain terms (a benchmark circuit, a
``rand<n>`` synthetic QAP instance, a QAPLIB ``.dat`` path).

Every subcommand prints plain text (the same tables the benchmark harness
writes) and returns a conventional exit code, so it composes with shell
scripts; :func:`main` accepts an ``argv`` list which is what the unit tests
use.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import os

from . import accel
from .core.registry import available_domains, get_domain
from .errors import ReproError
from .experiments import ALL_FIGURES, current_scale
from .metrics import format_mapping, format_table
from .parallel import FaultPolicy, ParallelSearchParams, classify
from .placement import Placement, benchmark_names, load_benchmark
from .placement.io import write_placement
from .pvm import FaultPlan, homogeneous_cluster, paper_cluster
from .session import SearchSession, SessionState
from .tabu import TabuSearchParams

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Parallel tabu search for VLSI cell placement on a simulated "
            "heterogeneous cluster (reproduction of Al-Yamani et al., IPDPS 2003)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # problems ---------------------------------------------------------------
    subparsers.add_parser(
        "problems", help="list the registered problem domains and their instances"
    )

    # circuits ---------------------------------------------------------------
    subparsers.add_parser("circuits", help="list the available benchmark circuits")

    # run ---------------------------------------------------------------------
    run_parser = subparsers.add_parser("run", help="run the parallel tabu search once")
    run_parser.add_argument(
        "--problem", default="placement", choices=available_domains(),
        help="problem domain to search (resolved through the core registry)",
    )
    run_parser.add_argument(
        "--instance", default=None,
        help="instance name in domain terms (circuit, rand<n>, QAPLIB .dat path); "
             "defaults to the domain's default instance",
    )
    run_parser.add_argument("--circuit", default=None,
                            help="benchmark circuit name (placement shorthand for --instance)")
    run_parser.add_argument("--tsws", type=int, default=4, help="number of Tabu Search Workers")
    run_parser.add_argument("--clws", type=int, default=1, help="CLWs per TSW")
    run_parser.add_argument("--global-iterations", type=int, default=4)
    run_parser.add_argument("--local-iterations", type=int, default=8)
    run_parser.add_argument("--pairs-per-step", type=int, default=5, help="m: pairs tried per step")
    run_parser.add_argument("--move-depth", type=int, default=3, help="d: compound move depth")
    run_parser.add_argument(
        "--sync", choices=["heterogeneous", "homogeneous"], default="heterogeneous"
    )
    run_parser.add_argument("--no-diversify", action="store_true",
                            help="disable the TSW diversification step")
    run_parser.add_argument("--seed", type=int, default=2003)
    run_parser.add_argument(
        "--cluster", default="paper",
        help="'paper' (12 heterogeneous machines) or 'homogeneous:<N>'",
    )
    run_parser.add_argument(
        "--backend", choices=["simulated", "threads", "processes"], default=None,
        help="PVM backend (default: simulated, or the checkpoint's backend "
             "with --resume)",
    )
    run_parser.add_argument(
        "--save-placement", metavar="FILE", default=None,
        help="write the best placement to FILE in the .pl text format",
    )
    run_parser.add_argument("--trace", action="store_true",
                            help="also print the best-cost-vs-time trace")
    run_parser.add_argument(
        "--pause-after", type=int, metavar="N", default=None,
        help="pause the session after N further global iterations instead of "
             "running to completion (combine with --checkpoint)",
    )
    run_parser.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help="write a resumable session checkpoint to FILE when the run "
             "pauses or finishes",
    )
    run_parser.add_argument(
        "--resume", metavar="FILE", default=None,
        help="continue a previous run from a checkpoint written by "
             "--checkpoint (instance and parameters come from the artifact)",
    )
    run_parser.add_argument(
        "--fault-tolerant", action="store_true",
        help="survive worker death mid-run: deadline tracking, range "
             "re-assignment over the survivors, degraded completion",
    )
    run_parser.add_argument(
        "--round-deadline", type=float, metavar="SECONDS", default=None,
        help="report deadline per global iteration before a worker is struck "
             "out (implies --fault-tolerant; default 30)",
    )
    run_parser.add_argument(
        "--fault-plan", metavar="FILE", default=None,
        help="JSON fault-injection plan (seeded kills/throttles/message "
             "faults) replayed by the simulated backend; implies "
             "--fault-tolerant",
    )
    run_parser.add_argument(
        "--device", choices=("auto", "cpu", "cuda"), default=None,
        help="where the hot kernels execute: 'cuda' requires a working CuPy "
             "install and fails loudly without one, 'cpu' forces the NumPy "
             "path, 'auto' (default) probes (equivalent to REPRO_DEVICE)",
    )

    # figure -------------------------------------------------------------------
    figure_parser = subparsers.add_parser(
        "figure", help="regenerate one of the paper's figures (5-11)"
    )
    figure_parser.add_argument("figure_id", choices=sorted(ALL_FIGURES))
    figure_parser.add_argument(
        "--circuits", nargs="+", default=None, help="restrict to these circuits"
    )

    # classify -------------------------------------------------------------------
    classify_parser = subparsers.add_parser(
        "classify", help="print the Crainic-taxonomy classification of a configuration"
    )
    classify_parser.add_argument("--tsws", type=int, default=4)
    classify_parser.add_argument("--clws", type=int, default=1)
    classify_parser.add_argument("--no-diversify", action="store_true")

    # sessions ------------------------------------------------------------------
    sessions_parser = subparsers.add_parser(
        "sessions", help="inspect resumable session checkpoint artifacts"
    )
    sessions_parser.add_argument(
        "checkpoints", nargs="+", metavar="FILE",
        help="checkpoint files written by 'repro run --checkpoint'; prefix "
             "with 'inspect' to report each checkpoint's topology history "
             "(workers admitted, drained, dead and respawned, with virtual "
             "timestamps)",
    )

    # devices -------------------------------------------------------------------
    subparsers.add_parser(
        "devices",
        help="print the accelerator capability probe (cupy/driver versions, "
             "selected device, fallback reason)",
    )

    return parser


def _make_cluster(spec: str):
    if spec == "paper":
        return paper_cluster()
    if spec.startswith("homogeneous:"):
        count = int(spec.split(":", 1)[1])
        return homogeneous_cluster(count)
    raise ReproError(
        f"unknown cluster spec {spec!r}; use 'paper' or 'homogeneous:<N>'"
    )


def _command_circuits(_: argparse.Namespace) -> int:
    rows = []
    for name in benchmark_names():
        stats = load_benchmark(name).stats()
        rows.append(
            (name, stats.num_cells, stats.num_nets, stats.num_pins,
             round(stats.avg_net_degree, 2))
        )
    print(
        format_table(
            ["circuit", "cells", "nets", "pins", "avg net degree"],
            rows,
            title="Available benchmark circuits (paper circuits: highway, c532, c1355, c3540)",
        )
    )
    return 0


def _command_problems(_: argparse.Namespace) -> int:
    rows = []
    for name in available_domains():
        domain = get_domain(name)
        instances = domain.list_instances()
        preview = ", ".join(instances[:6]) + (", ..." if len(instances) > 6 else "")
        rows.append((name, domain.default_instance, preview, domain.description))
    print(
        format_table(
            ["domain", "default", "instances", "description"],
            rows,
            title="Registered problem domains (select with: repro run --problem <domain>)",
        )
    )
    return 0


def _fault_policy(args: argparse.Namespace):
    if not (args.fault_tolerant or args.round_deadline is not None or args.fault_plan):
        return None
    round_deadline = args.round_deadline if args.round_deadline is not None else 30.0
    return FaultPolicy(round_deadline=round_deadline, clw_deadline=round_deadline / 2.0)


def _build_session(args: argparse.Namespace) -> SearchSession:
    cluster = _make_cluster(args.cluster)
    fault = _fault_policy(args)
    fault_plan = FaultPlan.from_file(args.fault_plan) if args.fault_plan else None
    if args.resume is not None:
        if args.instance is not None or args.circuit is not None:
            raise ReproError(
                "--resume restores the instance and parameters from the "
                "checkpoint; drop --instance/--circuit"
            )
        if fault is not None:
            raise ReproError(
                "--resume restores the parameters (fault policy included) "
                "from the checkpoint; drop the fault flags"
            )
        session = SearchSession.restore(
            args.resume, backend=args.backend, cluster=cluster
        )
        print(
            f"Resuming {session.problem.name} from {args.resume}: "
            f"{session.rounds_done}/{session.params.global_iterations} "
            f"global iterations done, backend {session.backend} ..."
        )
        return session
    domain = get_domain(args.problem)
    instance_name = args.instance or args.circuit or domain.default_instance
    problem = domain.build_problem(instance_name, reference_seed=args.seed)
    tabu = TabuSearchParams(
        local_iterations=args.local_iterations,
        pairs_per_step=args.pairs_per_step,
        move_depth=args.move_depth,
    ).scaled_for_circuit(problem.num_cells)
    params = ParallelSearchParams(
        num_tsws=args.tsws,
        clws_per_tsw=args.clws,
        global_iterations=args.global_iterations,
        sync_mode=args.sync,
        diversify=not args.no_diversify,
        tabu=tabu,
        seed=args.seed,
        fault=fault,
    )
    extras = ", fault-tolerant" if fault is not None else ""
    print(f"Running {args.problem}:{problem.name} with {args.tsws} TSWs x "
          f"{args.clws} CLWs ({args.sync} sync{extras}) on "
          f"{cluster.num_machines} machines ...")
    return SearchSession(
        problem=problem,
        params=params,
        backend=args.backend or "simulated",
        cluster=cluster,
        fault_plan=fault_plan,
    )


def _command_devices(_: argparse.Namespace) -> int:
    print(format_mapping(dict(accel.device_report()), title="accelerator probe"))
    return 0


def _command_run(args: argparse.Namespace) -> int:
    if args.circuit is not None and args.problem != "placement":
        raise ReproError("--circuit is a placement shorthand; use --instance instead")
    if getattr(args, "device", None) is not None:
        # Validate up front — an explicit 'cuda' without a usable device must
        # fail here with the probe's reason, not deep inside a worker — then
        # propagate through the environment so spawned worker processes
        # resolve the same device.
        accel.resolve_device(args.device)
        os.environ["REPRO_DEVICE"] = args.device
    if args.circuit is not None and args.instance is not None:
        raise ReproError(
            f"--circuit {args.circuit!r} and --instance {args.instance!r} both name "
            "an instance; pass only one"
        )
    if args.save_placement and args.resume is None and args.problem != "placement":
        raise ReproError("--save-placement only applies to the placement domain")
    if args.pause_after is not None and args.pause_after < 1:
        raise ReproError("--pause-after needs at least one global iteration")
    session = _build_session(args)
    if args.pause_after is not None and not session.complete:
        session.step(args.pause_after)
    elif not session.complete:
        session.run()
    result = session.result()
    summary = {
        "instance": result.instance,
        "initial cost": result.initial_cost,
        "best cost": result.best_cost,
        "improvement": f"{result.improvement * 100:.1f} %",
    }
    if result.complete:
        # domain-specific crisp objectives (ObjectiveVector / QAPObjectives)
        summary.update(result.best_objectives.as_dict())
    else:
        summary["progress"] = (
            f"{session.rounds_done}/{session.params.global_iterations} "
            "global iterations (paused)"
        )
    summary.update(
        {
            "virtual runtime (s)": result.virtual_runtime,
            "wall clock (s)": result.wall_clock_seconds,
        }
    )
    print(format_mapping(summary, title="Result"))
    fault_events = getattr(result, "fault_events", None)
    if fault_events:
        print()
        print(
            format_table(
                ["time (s)", "event", "worker", "detail"],
                [(round(e.time, 3), e.kind, e.worker, e.detail) for e in fault_events],
                title="Fault events",
            )
        )
    if args.checkpoint:
        session.checkpoint(args.checkpoint)
        print(f"Checkpoint written to {args.checkpoint}")
    if args.trace:
        print()
        print(
            format_table(
                ["virtual time (s)", "best cost"],
                result.trace,
                title="Best cost vs time",
            )
        )
    if args.save_placement:
        layout = getattr(session.problem, "layout", None)
        if layout is None:
            raise ReproError("--save-placement only applies to the placement domain")
        placement = Placement(layout, result.best_solution)
        write_placement(placement, args.save_placement)
        print(f"\nBest placement written to {args.save_placement}")
    return 0


def _sessions_inspect(paths: Sequence[str]) -> int:
    """Report the topology history stored in each checkpoint artifact."""
    if not paths:
        raise ReproError("sessions inspect: give at least one checkpoint FILE")
    for path in paths:
        state = SessionState.load(path)
        run_state = state.run_state
        workers = (
            int(getattr(run_state, "num_workers", 0) or 0)
            if run_state is not None
            else 0
        ) or int(state.params.num_tsws)
        drained = tuple(getattr(run_state, "drained_workers", ()) or ()) if run_state else ()
        print(f"{path}: {state.problem.name} [{state.backend}]")
        print(
            f"  topology: {workers} worker slot(s), "
            f"{len(drained)} drained{' ' + str(list(drained)) if drained else ''}, "
            f"rounds {state.rounds_done}/{state.params.global_iterations}"
        )
        events = tuple(state.topology_events)
        if not events:
            print("  topology history: (no admissions, deaths or drains recorded)")
            continue
        rows = [
            (
                f"{float(event.time):.3f}",
                event.kind,
                "-" if event.worker in ("tsw-1", "-1", "") else str(event.worker),
                event.detail,
            )
            for event in events
        ]
        print(
            format_table(
                ["time (s)", "event", "worker", "detail"],
                rows,
                title="Topology history",
            )
        )
    return 0


def _command_sessions(args: argparse.Namespace) -> int:
    if args.checkpoints and args.checkpoints[0] == "inspect":
        return _sessions_inspect(args.checkpoints[1:])
    rows = []
    for path in args.checkpoints:
        state = SessionState.load(path)
        if state.complete:
            lifecycle = "complete"
        elif state.run_state is not None:
            lifecycle = "paused"
        else:
            lifecycle = "fresh"
        rows.append(
            (
                path,
                state.problem.name,
                state.backend,
                f"{state.params.num_tsws}x{state.params.clws_per_tsw}",
                f"{state.rounds_done}/{state.params.global_iterations}",
                "-" if state.best_cost is None else f"{state.best_cost:.4f}",
                lifecycle,
            )
        )
    print(
        format_table(
            ["checkpoint", "instance", "backend", "topology", "rounds", "best cost",
             "state"],
            rows,
            title="Session checkpoints (resume with: repro run --resume <FILE>)",
        )
    )
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    generator = ALL_FIGURES[args.figure_id]
    scale = current_scale()
    kwargs = {}
    if args.circuits:
        kwargs["circuits"] = args.circuits
    result = generator(scale=scale, **kwargs)
    print(result.format())
    return 0


def _command_classify(args: argparse.Namespace) -> int:
    params = ParallelSearchParams(
        num_tsws=args.tsws, clws_per_tsw=args.clws, diversify=not args.no_diversify
    )
    classification = classify(params)
    print(classification.describe())
    return 0


_COMMANDS = {
    "problems": _command_problems,
    "circuits": _command_circuits,
    "run": _command_run,
    "figure": _command_figure,
    "classify": _command_classify,
    "sessions": _command_sessions,
    "devices": _command_devices,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
