"""Aspiration criteria.

A tabu move may still be accepted when it satisfies an *aspiration criterion*.
The classic (and the paper's) criterion is *aspiration by objective*: the move
is allowed if it produces a solution better than the best found so far —
clearly such a solution cannot have been visited before, so the tabu
restriction serves no purpose.

The criteria are small strategy objects so the search engine can be configured
with alternative rules (or none at all) without changing its control flow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AspirationCriterion", "BestCostAspiration", "NoAspiration", "ImprovementAspiration"]


class AspirationCriterion:
    """Interface: decide whether a tabu move may be accepted anyway."""

    def permits(self, candidate_cost: float, current_cost: float, best_cost: float) -> bool:
        """Return ``True`` to override the tabu status of a move."""
        raise NotImplementedError  # pragma: no cover - interface

    def permits_batch(
        self, candidate_costs: np.ndarray, current_cost: float, best_cost: float
    ) -> np.ndarray:
        """Vectorised :meth:`permits` over a whole candidate batch.

        The base implementation loops (correct for any subclass); the
        built-in criteria override it with a single array comparison whose
        result is element-wise identical to the scalar rule.
        """
        costs = np.asarray(candidate_costs, dtype=np.float64)
        return np.fromiter(
            (self.permits(float(c), current_cost, best_cost) for c in costs),
            dtype=bool,
            count=costs.size,
        )


@dataclass(frozen=True, slots=True)
class BestCostAspiration(AspirationCriterion):
    """Aspiration by objective: accept if strictly better than the best so far.

    ``margin`` optionally requires the improvement over the best cost to
    exceed a relative threshold (0 = any improvement).
    """

    margin: float = 0.0

    def permits(self, candidate_cost: float, current_cost: float, best_cost: float) -> bool:
        threshold = best_cost * (1.0 - self.margin) if best_cost > 0 else best_cost
        return candidate_cost < threshold

    def permits_batch(
        self, candidate_costs: np.ndarray, current_cost: float, best_cost: float
    ) -> np.ndarray:
        threshold = best_cost * (1.0 - self.margin) if best_cost > 0 else best_cost
        return np.asarray(candidate_costs, dtype=np.float64) < threshold


@dataclass(frozen=True, slots=True)
class ImprovementAspiration(AspirationCriterion):
    """Accept a tabu move whenever it improves on the *current* solution."""

    def permits(self, candidate_cost: float, current_cost: float, best_cost: float) -> bool:
        return candidate_cost < current_cost

    def permits_batch(
        self, candidate_costs: np.ndarray, current_cost: float, best_cost: float
    ) -> np.ndarray:
        return np.asarray(candidate_costs, dtype=np.float64) < current_cost


@dataclass(frozen=True, slots=True)
class NoAspiration(AspirationCriterion):
    """Never override tabu status (used in ablation experiments)."""

    def permits(self, candidate_cost: float, current_cost: float, best_cost: float) -> bool:
        return False

    def permits_batch(
        self, candidate_costs: np.ndarray, current_cost: float, best_cost: float
    ) -> np.ndarray:
        return np.zeros(np.asarray(candidate_costs).size, dtype=bool)
