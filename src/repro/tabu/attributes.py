"""Move attributes stored in the tabu short-term memory.

Tabu search does not memorise whole solutions (too expensive); it memorises
*attributes* of recent moves and forbids moves that would re-instate them.
For the cell-placement swap move two natural attribute schemes exist:

* ``PAIR`` — the unordered pair of swapped cells; forbids undoing exactly the
  same exchange (the scheme used in the paper's description, where a move is
  a swap of two cells);
* ``CELL`` — each moved cell individually; more aggressive, forbids touching
  a recently moved cell at all.

Both are value objects usable as dictionary keys.  The array-backed tabu
list additionally addresses attributes by a dense integer *index* —
``lo * num_cells + hi`` for pairs, the cell itself for cells — computed in
bulk for whole candidate batches by :func:`pair_attribute_indices`.  The
same ``num_cells``-strided code space would accommodate a future cell×slot
("slot") scheme without changing the vector layout.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = [
    "AttributeScheme",
    "MoveAttribute",
    "swap_attributes",
    "pair_attribute_indices",
]


class AttributeScheme(enum.Enum):
    """Which attributes a committed swap contributes to the tabu list."""

    PAIR = "pair"
    CELL = "cell"


@dataclass(frozen=True, slots=True)
class MoveAttribute:
    """A single tabu attribute.

    ``kind`` distinguishes pair attributes from single-cell attributes so the
    two schemes can coexist in one tabu list (e.g. during experimentation).
    ``key`` is a canonical tuple: ``(min_cell, max_cell)`` for pairs,
    ``(cell,)`` for cells.
    """

    kind: str
    key: Tuple[int, ...]

    @classmethod
    def pair(cls, cell_a: int, cell_b: int) -> "MoveAttribute":
        """Attribute representing the unordered swap of two cells."""
        lo, hi = (cell_a, cell_b) if cell_a <= cell_b else (cell_b, cell_a)
        return cls(kind="pair", key=(lo, hi))

    @classmethod
    def cell(cls, cell: int) -> "MoveAttribute":
        """Attribute representing a single moved cell."""
        return cls(kind="cell", key=(cell,))


def swap_attributes(
    cell_a: int, cell_b: int, scheme: AttributeScheme = AttributeScheme.PAIR
) -> Tuple[MoveAttribute, ...]:
    """Attributes contributed by swapping ``cell_a`` and ``cell_b``."""
    if scheme is AttributeScheme.PAIR:
        return (MoveAttribute.pair(cell_a, cell_b),)
    return (MoveAttribute.cell(cell_a), MoveAttribute.cell(cell_b))


def pair_attribute_indices(pairs: np.ndarray, num_cells: int) -> np.ndarray:
    """Dense index of every pair attribute: ``min * num_cells + max``.

    ``pairs`` is an ``(n, 2)`` integer array of cell pairs; the result is an
    ``(n,)`` int64 array addressing the array-backed tabu list's pair-expiry
    vector.  The canonical (sorted) pair order makes the index orientation
    independent, matching :meth:`MoveAttribute.pair`.
    """
    arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    lo = np.minimum(arr[:, 0], arr[:, 1])
    hi = np.maximum(arr[:, 0], arr[:, 1])
    return lo * np.int64(num_cells) + hi
