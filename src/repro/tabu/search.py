"""Serial tabu-search engine (Figure 1 of the paper).

:class:`TabuSearch` drives a :class:`~repro.core.protocols.SwapEvaluator`
(the placement cost evaluator, the QAP evaluator, or any other registered
domain's) through tabu-search iterations:

1. build one or more candidate *compound moves* (the candidate list
   :math:`V^*(s)` — in the parallel algorithm each CLW contributes one
   candidate; the serial engine builds them sequentially).  The first step
   of every candidate range starts from the same solution, so all ranges'
   step-1 trials are scored in one fused batch, and each step's selection
   already filters tabu pairs (with a vectorised aspiration override) so
   candidates are built admissible whenever possible;
2. pick the candidate with the lowest resulting cost;
3. accept it if it is not tabu, or if it satisfies the aspiration criterion;
   otherwise fall back to the next-best candidate; if every candidate is
   rejected the iteration stalls;
4. record the accepted move's attributes in the tabu list (one bulk scatter)
   and the moved cells in the frequency memory (one bulk accumulate), and
   update the best solution found so far.  Locally built winners are
   *jumped to* via the end-state snapshot the builder left behind instead of
   re-committing every swap.

Two interchangeable iteration drivers implement these semantics
(``TabuSearchParams.driver``): the default ``"vectorized"`` driver runs on
the array-backed :class:`~repro.tabu.tabu_list.ArrayTabuList` with masked
batch selection, while the ``"reference"`` driver performs the identical
algorithm with the dictionary tabu memory and per-attribute Python loops —
seeded runs of the two walk bit-identical trajectories (enforced by
``tests/tabu/test_driver_identity.py``).

The same class is reused inside the parallel Tabu Search Workers, where the
candidate compound moves come from remote CLWs instead of being generated
locally (see :mod:`repro.parallel.tsw`).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .._rng import make_rng
from ..accel import fuse_admissible
from ..core.protocols import SwapEvaluator
from ..errors import TabuSearchError
from .aspiration import (
    AspirationCriterion,
    BestCostAspiration,
    ImprovementAspiration,
    NoAspiration,
)
from .candidate import CellRange, full_range, sample_candidate_pairs_array
from .diversification import diversify
from .moves import CompoundMove, CompoundMoveBuilder
from .params import TabuSearchParams
from .tabu_list import ArrayTabuList, FrequencyMemory, TabuList, make_tabu_list
from .termination import TerminationCriteria

__all__ = [
    "StepResult",
    "SearchResult",
    "TabuSearch",
    "TabuSearchState",
    "make_aspiration",
]


def make_aspiration(params: TabuSearchParams) -> AspirationCriterion:
    """Instantiate the aspiration criterion selected by ``params``."""
    if params.aspiration == "best":
        return BestCostAspiration(margin=params.aspiration_margin)
    if params.aspiration == "improvement":
        return ImprovementAspiration()
    return NoAspiration()


@dataclass(frozen=True, slots=True)
class StepResult:
    """Outcome of one tabu-search iteration."""

    iteration: int
    accepted: bool
    move: Optional[CompoundMove]
    was_tabu: bool
    used_aspiration: bool
    cost_after: float
    best_cost: float


@dataclass(slots=True)
class SearchResult:
    """Outcome of a whole (serial) tabu-search run."""

    best_cost: float
    best_solution: np.ndarray
    iterations: int
    evaluations: int
    #: (iteration, evaluations, current cost, best cost) after every step.
    trace: List[Tuple[int, int, float, float]] = field(default_factory=list)


@dataclass(frozen=True)
class TabuSearchState:
    """Serializable snapshot of a :class:`TabuSearch`'s private state.

    Captures everything the search object itself owns — RNG bit-generator
    state, tabu-list export (shared wire format of both memory layouts),
    frequency counts, iteration/stall counters and the best-so-far — but
    *not* the evaluator: the evaluator's incremental caches are checkpointed
    separately (``evaluator.save_state()`` blobs) so a resumed run replays
    the exact same incremental code paths bit-for-bit.
    """

    rng_state: Dict[str, Any]
    tabu_payload: Tuple[Tuple[str, Tuple[int, ...], int], ...]
    tabu_tenure: int
    frequency_counts: np.ndarray
    iteration: int
    stall: int
    best_cost: float
    best_solution: np.ndarray


class TabuSearch:
    """Tabu search over permutation solutions, bound to one evaluator.

    Parameters
    ----------
    evaluator:
        Owns the solution and the incremental cost state (any
        :class:`~repro.core.protocols.SwapEvaluator`).
    params:
        Search parameters (tenure, ``m``, ``d``, aspiration, ...).
    cell_range:
        Range from which the first cell of every candidate pair is drawn;
        defaults to all cells (the serial algorithm).
    seed:
        Seed of the worker's private random stream.
    candidate_moves:
        How many candidate compound moves to build per iteration.  The serial
        algorithm uses 1; a TSW that emulates ``k`` CLWs sequentially uses
        ``k`` (each with its own sub-range — see :mod:`repro.parallel`).
    """

    def __init__(
        self,
        evaluator: SwapEvaluator,
        params: TabuSearchParams | None = None,
        *,
        cell_range: Optional[CellRange] = None,
        seed: int = 0,
        candidate_moves: int = 1,
        candidate_ranges: Optional[Sequence[CellRange]] = None,
    ) -> None:
        if candidate_moves < 1:
            raise TabuSearchError(f"candidate_moves must be >= 1, got {candidate_moves}")
        self._evaluator = evaluator
        self._params = params or TabuSearchParams()
        self._range = cell_range or full_range(evaluator.num_cells)
        if candidate_ranges is not None:
            if len(candidate_ranges) != candidate_moves:
                raise TabuSearchError(
                    "candidate_ranges must provide exactly one range per candidate move"
                )
            self._candidate_ranges: Tuple[CellRange, ...] = tuple(candidate_ranges)
        else:
            self._candidate_ranges = tuple([self._range] * candidate_moves)
        self._range_arrays = tuple(r.as_array() for r in self._candidate_ranges)
        self._rng = make_rng(seed, "tabu-search", evaluator.instance_name)
        self._vectorized = self._params.driver == "vectorized"
        self._scheme = self._params.attribute_scheme
        self._tabu = make_tabu_list(
            self._params.tabu_tenure, evaluator.num_cells, vectorized=self._vectorized
        )
        self._frequency = FrequencyMemory(evaluator.num_cells)
        self._aspiration = make_aspiration(self._params)
        self._iteration = 0
        self._stall = 0
        self._best_cost = evaluator.cost()
        self._best_solution = evaluator.snapshot()

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    def set_cell_range(self, cell_range: CellRange) -> None:
        """Re-point the search at a new cell range (elastic re-assignment).

        The fault-tolerant master re-partitions a dead worker's range over
        the survivors mid-run; the surviving searches adopt their widened
        range here.  Every candidate sub-range collapses to the new range —
        per-move sub-ranges belong to the static topology being replaced.
        """
        self._range = cell_range
        self._candidate_ranges = tuple([cell_range] * len(self._candidate_ranges))
        self._range_arrays = tuple(r.as_array() for r in self._candidate_ranges)

    @property
    def cell_range(self) -> CellRange:
        """Range the first cell of every candidate pair is drawn from."""
        return self._range

    @property
    def evaluator(self) -> SwapEvaluator:
        """The bound cost evaluator."""
        return self._evaluator

    @property
    def params(self) -> TabuSearchParams:
        """Search parameters."""
        return self._params

    @property
    def tabu_list(self):
        """Short-term memory (:class:`TabuList` or :class:`ArrayTabuList`)."""
        return self._tabu

    @property
    def frequency_memory(self) -> FrequencyMemory:
        """Long-term (frequency) memory."""
        return self._frequency

    @property
    def iteration(self) -> int:
        """Number of completed iterations."""
        return self._iteration

    @property
    def current_cost(self) -> float:
        """Cost of the current solution."""
        return self._evaluator.cost()

    @property
    def best_cost(self) -> float:
        """Best cost found so far."""
        return self._best_cost

    @property
    def best_solution(self) -> np.ndarray:
        """Copy of the best assignment found so far."""
        return self._best_solution.copy()

    @property
    def rng(self) -> np.random.Generator:
        """The worker's private random stream."""
        return self._rng

    # ------------------------------------------------------------------ #
    # state manipulation used by the parallel protocol
    # ------------------------------------------------------------------ #
    def adopt_solution(self, cell_to_slot: np.ndarray, *, reset_memory: bool = False) -> float:
        """Install a solution received from outside (master / parent TSW)."""
        cost = self._evaluator.install_solution(np.asarray(cell_to_slot, dtype=np.int64))
        if cost < self._best_cost:
            self._best_cost = cost
            self._best_solution = self._evaluator.snapshot()
        if reset_memory:
            self._tabu.clear()
        return cost

    def adopt_solution_delta(
        self, swap_pairs: np.ndarray, *, reset_memory: bool = False
    ) -> float:
        """Install an externally received solution shipped as a swap delta.

        The delta applies to the evaluator's *resident* solution (the
        parallel protocol keeps workers' solutions resident between rounds);
        all incremental caches are committed through the evaluator's
        ``apply_swaps`` bulk path with an exact refresh, leaving it in the
        same state a full :meth:`adopt_solution` of the target would.
        """
        cost = self._evaluator.apply_swaps(
            np.asarray(swap_pairs, dtype=np.int64), exact_timing=True
        )
        if cost < self._best_cost:
            self._best_cost = cost
            self._best_solution = self._evaluator.snapshot()
        if reset_memory:
            self._tabu.clear()
        return cost

    def adopt_tabu_list(
        self,
        payload: Sequence[Tuple[str, Tuple[int, ...], int]],
        tenure: Optional[int] = None,
    ):
        """Install a tabu list received from outside (master / parent TSW).

        The paper's protocol ships the incumbent's tabu list together with
        the solution; this is the public hook for it — backends must not
        reach into the search's internals.  ``payload`` is
        ``to_payload()`` output of either memory implementation; ``tenure``
        defaults to the search's configured ``tabu_tenure``.  The installed
        list matches this search's driver (the wire format is shared), and
        is returned.
        """
        effective_tenure = self._params.tabu_tenure if tenure is None else tenure
        if isinstance(self._tabu, ArrayTabuList):
            self._tabu = ArrayTabuList.from_payload(
                payload, effective_tenure, self._evaluator.num_cells
            )
        else:
            self._tabu = TabuList.from_payload(payload, effective_tenure)
        return self._tabu

    def export_state(self) -> TabuSearchState:
        """Snapshot the search's own serializable state (see
        :class:`TabuSearchState` — the evaluator is deliberately excluded)."""
        return TabuSearchState(
            rng_state=copy.deepcopy(self._rng.bit_generator.state),
            tabu_payload=self._tabu.to_payload(),
            tabu_tenure=self._tabu.tenure,
            frequency_counts=self._frequency.counts.copy(),
            iteration=self._iteration,
            stall=self._stall,
            best_cost=self._best_cost,
            best_solution=self._best_solution.copy(),
        )

    def install_state(self, state: TabuSearchState) -> None:
        """Restore a snapshot produced by :meth:`export_state`.

        The evaluator must already be positioned on the checkpointed
        solution (restored by the caller); this installs RNG, memories and
        counters so the next :meth:`step` continues the original trajectory
        bit-for-bit.
        """
        self._rng.bit_generator.state = copy.deepcopy(state.rng_state)
        self.adopt_tabu_list(state.tabu_payload, tenure=state.tabu_tenure)
        # Restore the lazy-expiry watermark so live-set views (payload,
        # len) match the checkpointed list exactly.
        self._tabu.expire(state.iteration)
        self._frequency.load_counts(state.frequency_counts)
        self._iteration = int(state.iteration)
        self._stall = int(state.stall)
        self._best_cost = float(state.best_cost)
        self._best_solution = np.asarray(state.best_solution, dtype=np.int64).copy()

    def note_best(self) -> None:
        """Record the current solution as best if it improves on the incumbent."""
        cost = self._evaluator.cost()
        if cost < self._best_cost:
            self._best_cost = cost
            self._best_solution = self._evaluator.snapshot()

    def diversify(self, depth: Optional[int] = None) -> None:
        """Run the Kelly-style diversification step within this worker's range.

        The effective depth is capped at a quarter of the worker's range so
        that small circuits (or finely partitioned ranges) are not perturbed
        beyond recovery — diversification should relocate a few rarely-moved
        cells, not scramble the whole region.
        """
        depth = self._params.diversification_depth if depth is None else depth
        depth = min(depth, max(1, len(self._range) // 4))
        if depth <= 0:
            return
        diversify(
            self._evaluator,
            self._range,
            depth=depth,
            rng=self._rng,
            frequency=self._frequency,
        )
        self.note_best()

    # ------------------------------------------------------------------ #
    # the core iteration
    # ------------------------------------------------------------------ #
    def _admissible_fn(
        self, iteration: int, current_cost: float, best_cost: float
    ) -> Callable[[np.ndarray, np.ndarray], Optional[np.ndarray]]:
        """Per-step admissibility hook: non-tabu pairs, or tabu-but-aspiring.

        Handed to the compound-move builders so tabu filtering happens
        *inside* the candidate scoring pass — the builder's argmin then
        selects the best admissible swap directly.  Both drivers compute the
        same mask; the vectorized one via an expiry-vector gather and an
        array aspiration compare, the reference one via the dict memory's
        per-attribute loop and scalar aspiration calls.
        """
        tabu = self._tabu
        scheme = self._scheme
        aspiration = self._aspiration
        if self._vectorized:
            def admissible(pairs: np.ndarray, costs: np.ndarray) -> Optional[np.ndarray]:
                mask = tabu.is_tabu_mask(pairs, iteration, scheme)
                if not mask.any():
                    return None
                return fuse_admissible(
                    mask, aspiration.permits_batch(costs, current_cost, best_cost)
                )
        else:
            def admissible(pairs: np.ndarray, costs: np.ndarray) -> Optional[np.ndarray]:
                mask = tabu.is_tabu_mask(pairs, iteration, scheme)
                if not mask.any():
                    return None
                permitted = np.fromiter(
                    (
                        aspiration.permits(float(cost), current_cost, best_cost)
                        for cost in costs
                    ),
                    dtype=bool,
                    count=len(costs),
                )
                return ~mask | permitted
        return admissible

    def _build_candidates(self) -> Tuple[List[CompoundMove], List[object]]:
        """Generate candidate compound moves plus their end-state tokens.

        The step-1 candidate pairs of *every* range are drawn up front and —
        under the vectorized driver — scored in one fused batch call (every
        range starts from the same solution, so the trials are independent).
        Each candidate is built with per-step tabu/aspiration filtering,
        its end state is captured as a cheap snapshot, and the evaluator is
        rewound to the common start with a state restore.  The returned end
        states let the accept path *jump* onto the winning candidate instead
        of re-committing its swaps (copy-light rewinds both ways).
        """
        evaluator = self._evaluator
        params = self._params
        rng = self._rng
        iteration = self._iteration + 1  # the iteration these candidates feed
        current_cost = evaluator.cost()
        admissible = self._admissible_fn(iteration, current_cost, self._best_cost)
        num_candidates = len(self._candidate_ranges)
        pairs_per_step = params.pairs_per_step
        num_cells = evaluator.num_cells

        # step-1 pairs for every range, drawn up front in range order
        first_pairs = [
            sample_candidate_pairs_array(range_array, num_cells, pairs_per_step, rng)
            for range_array in self._range_arrays
        ]
        if self._vectorized and num_candidates > 1:
            # one fused scoring pass before the candidates' states diverge
            fused = evaluator.evaluate_swaps_batch(np.concatenate(first_pairs))
            first_costs = [
                fused[k * pairs_per_step : (k + 1) * pairs_per_step]
                for k in range(num_candidates)
            ]
        else:
            first_costs = [evaluator.evaluate_swaps_batch(p) for p in first_pairs]

        start_state = evaluator.save_state()
        candidates: List[CompoundMove] = []
        end_states: List[object] = []
        for index in range(num_candidates):
            builder = CompoundMoveBuilder(
                evaluator,
                self._candidate_ranges[index],
                pairs_per_step=pairs_per_step,
                depth=params.move_depth,
                early_accept=params.early_accept,
                admissible=admissible,
                range_array=self._range_arrays[index],
            )
            builder.seed_step(first_pairs[index], first_costs[index])
            while builder.wants_more_steps():
                builder.step(rng)
            candidates.append(builder.finalize())
            end_states.append(evaluator.save_state())
            # rewind so every candidate is built from the same starting solution
            evaluator.restore_state(start_state)
        return candidates, end_states

    def consider_candidates(
        self,
        candidates: Sequence[CompoundMove],
        end_states: Optional[Sequence[object]] = None,
    ) -> StepResult:
        """Select and (maybe) accept the best candidate move.

        This is the acceptance logic shared by the serial engine and the TSW
        process (whose candidates arrive from remote CLWs).  The evaluator
        must be positioned on the solution the candidates were built from.
        A locally built candidate with an end-state token is accepted by
        restoring that token (a handful of array copies); a remote candidate
        is bulk-committed through the evaluator's ``apply_swaps`` path.
        Accepted attributes and move counts are recorded in bulk.
        """
        self._iteration += 1
        iteration = self._iteration
        # sweep lapsed attributes once per iteration, accepted or stalled
        # (amortised O(dropped) for the dict memory, lazy no-op for the
        # array memory), so both memories expose the same live set
        self._tabu.expire(iteration)
        current_cost = self._evaluator.cost()
        order = sorted(range(len(candidates)), key=lambda k: candidates[k].cost_after)

        for index in order:
            move = candidates[index]
            if not move.swaps:
                continue
            pairs = move.pairs_array()
            is_tabu = self._tabu.is_tabu_pairs(pairs, iteration, self._scheme)
            used_aspiration = False
            if is_tabu:
                if not self._aspiration.permits(move.cost_after, current_cost, self._best_cost):
                    continue
                used_aspiration = True
            # accept: land on the move's end state and update the memories
            if end_states is not None and end_states[index] is not None:
                self._evaluator.restore_state(end_states[index])
            else:
                self._evaluator.apply_swaps(pairs)
            self._frequency.record_swaps(pairs)
            self._tabu.record_pairs(pairs, iteration, self._scheme)
            cost_after = self._evaluator.cost()
            if cost_after < self._best_cost:
                self._best_cost = cost_after
                self._best_solution = self._evaluator.snapshot()
                self._stall = 0
            else:
                self._stall += 1
            return StepResult(
                iteration=iteration,
                accepted=True,
                move=move,
                was_tabu=is_tabu,
                used_aspiration=used_aspiration,
                cost_after=cost_after,
                best_cost=self._best_cost,
            )

        # every candidate was tabu (and failed aspiration) or empty
        self._stall += 1
        return StepResult(
            iteration=iteration,
            accepted=False,
            move=None,
            was_tabu=True,
            used_aspiration=False,
            cost_after=current_cost,
            best_cost=self._best_cost,
        )

    def step(self) -> StepResult:
        """Run one complete tabu-search iteration (build + accept)."""
        candidates, end_states = self._build_candidates()
        return self.consider_candidates(candidates, end_states)

    def run(
        self,
        termination: TerminationCriteria | None = None,
        *,
        record_trace: bool = True,
    ) -> SearchResult:
        """Iterate until the termination criteria are met."""
        termination = termination or TerminationCriteria(
            max_iterations=self._params.local_iterations
        )
        trace: List[Tuple[int, int, float, float]] = []
        while not termination.should_stop(
            iteration=self._iteration, best_cost=self._best_cost, stall=self._stall
        ):
            result = self.step()
            if record_trace:
                trace.append(
                    (
                        result.iteration,
                        self._evaluator.evaluations,
                        result.cost_after,
                        result.best_cost,
                    )
                )
        return SearchResult(
            best_cost=self._best_cost,
            best_solution=self.best_solution,
            iterations=self._iteration,
            evaluations=self._evaluator.evaluations,
            trace=trace,
        )
