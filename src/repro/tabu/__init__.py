"""Tabu-search core: memory structures, moves, diversification and the serial engine."""

from .aspiration import (
    AspirationCriterion,
    BestCostAspiration,
    ImprovementAspiration,
    NoAspiration,
)
from .attributes import (
    AttributeScheme,
    MoveAttribute,
    pair_attribute_indices,
    swap_attributes,
)
from .candidate import (
    CellRange,
    collision_probability,
    full_range,
    partition_cells,
    partition_cells_weighted,
    sample_candidate_pairs,
    sample_candidate_pairs_array,
)
from .diversification import DiversificationResult, diversify
from .moves import (
    CompoundMove,
    CompoundMoveBuilder,
    SwapMove,
    best_swap_of_candidates,
    build_compound_move,
)
from .params import TabuSearchParams
from .search import (
    SearchResult,
    StepResult,
    TabuSearch,
    TabuSearchState,
    make_aspiration,
)
from .tabu_list import ArrayTabuList, FrequencyMemory, TabuList, make_tabu_list
from .termination import TerminationCriteria

__all__ = [
    "AspirationCriterion",
    "BestCostAspiration",
    "ImprovementAspiration",
    "NoAspiration",
    "AttributeScheme",
    "MoveAttribute",
    "swap_attributes",
    "pair_attribute_indices",
    "CellRange",
    "collision_probability",
    "full_range",
    "partition_cells",
    "partition_cells_weighted",
    "sample_candidate_pairs",
    "sample_candidate_pairs_array",
    "DiversificationResult",
    "diversify",
    "CompoundMove",
    "CompoundMoveBuilder",
    "SwapMove",
    "best_swap_of_candidates",
    "build_compound_move",
    "TabuSearchParams",
    "SearchResult",
    "StepResult",
    "TabuSearch",
    "TabuSearchState",
    "make_aspiration",
    "FrequencyMemory",
    "TabuList",
    "ArrayTabuList",
    "make_tabu_list",
    "TerminationCriteria",
]
