"""Stopping criteria for a tabu-search run."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import TabuSearchError

__all__ = ["TerminationCriteria"]


@dataclass(frozen=True, slots=True)
class TerminationCriteria:
    """When to stop iterating.

    Attributes
    ----------
    max_iterations:
        Hard cap on the number of TS iterations (``None`` = unlimited; at
        least one of the three criteria must be set).
    target_cost:
        Stop as soon as the best cost drops to or below this value.  Used by
        the speedup experiments, which measure time-to-quality.
    max_stall:
        Stop after this many consecutive iterations without improving the
        best cost.
    """

    max_iterations: Optional[int] = None
    target_cost: Optional[float] = None
    max_stall: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_iterations is None and self.target_cost is None and self.max_stall is None:
            raise TabuSearchError("at least one termination criterion must be set")
        if self.max_iterations is not None and self.max_iterations < 1:
            raise TabuSearchError(f"max_iterations must be >= 1, got {self.max_iterations}")
        if self.max_stall is not None and self.max_stall < 1:
            raise TabuSearchError(f"max_stall must be >= 1, got {self.max_stall}")

    def should_stop(self, *, iteration: int, best_cost: float, stall: int) -> bool:
        """Evaluate the criteria against the current search state."""
        if self.max_iterations is not None and iteration >= self.max_iterations:
            return True
        if self.target_cost is not None and best_cost <= self.target_cost:
            return True
        if self.max_stall is not None and stall >= self.max_stall:
            return True
        return False
