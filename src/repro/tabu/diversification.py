"""Diversification of TSW starting points.

At the beginning of every global iteration each Tabu Search Worker receives
the *same* current best solution from the master.  To stop the workers from
re-exploring the same neighbourhood, each TSW first performs a
*diversification step* restricted to its private cell range (Section 4.1 of
the paper, following the diversification scheme of Kelly, Laguna & Glover):
it moves cells of its range — favouring rarely moved cells according to the
long-term frequency memory — to positions far from their current ones, to a
configurable depth, producing a different starting point per TSW.

The result is a *multiple points, single strategy* (MPSS) search: same TS
strategy everywhere, different start points every global iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..core.protocols import SwapEvaluator
from ..errors import TabuSearchError
from .candidate import CellRange
from .tabu_list import FrequencyMemory, least_moved_of

__all__ = ["DiversificationResult", "diversify"]


@dataclass(frozen=True, slots=True)
class DiversificationResult:
    """Outcome of one diversification step."""

    swaps: Tuple[Tuple[int, int], ...]
    cost_before: float
    cost_after: float
    trials: int

    @property
    def depth(self) -> int:
        """Number of swaps performed."""
        return len(self.swaps)


def _farthest_partner(
    evaluator: SwapEvaluator, cell: int, candidates: np.ndarray
) -> int:
    """Pick the candidate cell whose position is farthest from ``cell``'s.

    "Far" is the domain's notion of distance, provided through the
    evaluator's ``diversification_distances`` neighbourhood hook (Manhattan
    slot distance for placement, location distance for QAP) — the engine
    never reaches into layout geometry itself.
    """
    dist = evaluator.diversification_distances(cell, candidates)
    return int(candidates[int(np.argmax(dist))])


def diversify(
    evaluator: SwapEvaluator,
    cell_range: CellRange,
    *,
    depth: int,
    rng: np.random.Generator,
    frequency: FrequencyMemory | None = None,
    partner_sample: int = 8,
) -> DiversificationResult:
    """Perturb the current solution within ``cell_range`` to a given depth.

    For each of ``depth`` steps the procedure

    1. selects a cell from the worker's range, preferring cells that the
       long-term frequency memory says have been moved least often;
    2. samples ``partner_sample`` random partner cells from the whole cell
       space and swaps the selected cell with the *farthest* of them, pushing
       it into an unexplored region regardless of the cost.

    Unlike a tabu-search move, the swaps are applied unconditionally — the
    point is to move away from the shared starting solution, not to improve
    it.  ``depth == 0`` is a no-op (used for the paper's "no diversification"
    control runs).
    """
    if depth < 0:
        raise TabuSearchError(f"depth must be non-negative, got {depth}")
    if partner_sample < 1:
        raise TabuSearchError(f"partner_sample must be >= 1, got {partner_sample}")

    cost_before = evaluator.cost()
    num_cells = evaluator.num_cells
    swaps: List[Tuple[int, int]] = []
    trials = 0
    range_array = cell_range.as_array()
    # Selection works on a scratch copy of the move counts so each step
    # still sees the cells moved by the *previous* steps of this same
    # perturbation (identical choices to incremental recording), while the
    # real long-term memory is updated once, in bulk, at the end — no
    # per-swap Python increments on the accept path.
    scratch_counts = frequency.counts.copy() if frequency is not None else None

    for _ in range(depth):
        if scratch_counts is not None:
            cell = least_moved_of(scratch_counts, range_array, rng)
        else:
            cell = cell_range.sample(rng)
        # sample partner candidates from the whole cell space, excluding `cell`
        candidates = rng.integers(0, num_cells - 1, size=partner_sample)
        candidates = np.where(candidates >= cell, candidates + 1, candidates)
        partner = _farthest_partner(evaluator, cell, candidates)
        trials += partner_sample
        evaluator.commit_swap(cell, partner)
        swaps.append((cell, partner))
        if scratch_counts is not None:
            scratch_counts[cell] += 1
            scratch_counts[partner] += 1

    if frequency is not None and swaps:
        frequency.record_swaps(np.asarray(swaps, dtype=np.int64))

    return DiversificationResult(
        swaps=tuple(swaps),
        cost_before=cost_before,
        cost_after=evaluator.cost(),
        trials=trials,
    )
