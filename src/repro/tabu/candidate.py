"""Candidate-list construction: cell ranges and candidate swap pairs.

The paper's probabilistic domain decomposition assigns every Candidate List
Worker (CLW) a *range* of cells.  A candidate move always picks its first cell
from the worker's range and the second cell from the whole cell space, so two
CLWs can only collide on a move with probability :math:`1/(n-1)^2`.

The same mechanism is reused one level up: every Tabu Search Worker (TSW)
diversifies with respect to its own range so the TSWs explore disjoint regions
of the search space.

This module provides the :class:`CellRange` value object, the partitioning
helpers that split a circuit's cells among workers, and the candidate-pair
sampler used to build the candidate list :math:`V^*(s)`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import TabuSearchError

__all__ = [
    "CellRange",
    "partition_cells",
    "partition_cells_weighted",
    "full_range",
    "sample_candidate_pairs",
    "sample_candidate_pairs_array",
    "collision_probability",
]


@dataclass(frozen=True, slots=True)
class CellRange:
    """A subset of cell indices assigned to one worker.

    Attributes
    ----------
    cells:
        The cell indices in the range (non-empty, sorted, unique).
    label:
        Human-readable owner label, e.g. ``"tsw2/clw1"`` (used in traces).
    """

    cells: Tuple[int, ...]
    label: str = ""

    def __post_init__(self) -> None:
        if not self.cells:
            raise TabuSearchError(f"cell range {self.label!r} is empty")
        ordered = tuple(sorted(set(int(c) for c in self.cells)))
        if ordered != tuple(self.cells):
            object.__setattr__(self, "cells", ordered)

    def __len__(self) -> int:
        return len(self.cells)

    def __contains__(self, cell: int) -> bool:
        return cell in set(self.cells)

    def as_array(self) -> np.ndarray:
        """Cells as a NumPy array (copy)."""
        return np.asarray(self.cells, dtype=np.int64)

    def sample(self, rng: np.random.Generator) -> int:
        """Uniformly pick one cell from the range."""
        return int(self.cells[rng.integers(0, len(self.cells))])


def full_range(num_cells: int, label: str = "all") -> CellRange:
    """A range covering every cell (used by serial search / single worker)."""
    if num_cells <= 0:
        raise TabuSearchError(f"num_cells must be positive, got {num_cells}")
    return CellRange(cells=tuple(range(num_cells)), label=label)


def partition_cells(
    num_cells: int,
    num_parts: int,
    *,
    scheme: str = "contiguous",
    label_prefix: str = "part",
) -> List[CellRange]:
    """Split ``num_cells`` cells into ``num_parts`` disjoint ranges.

    Parameters
    ----------
    scheme:
        ``"contiguous"`` — blocks of consecutive indices (the paper's wording
        "a range of cells"); ``"strided"`` — round-robin interleaving, which
        spreads every part across the whole index space.
    """
    if num_cells <= 0:
        raise TabuSearchError(f"num_cells must be positive, got {num_cells}")
    if num_parts <= 0:
        raise TabuSearchError(f"num_parts must be positive, got {num_parts}")
    if num_parts > num_cells:
        raise TabuSearchError(
            f"cannot split {num_cells} cells into {num_parts} non-empty ranges"
        )
    indices = np.arange(num_cells, dtype=np.int64)
    parts: List[CellRange] = []
    if scheme == "contiguous":
        chunks = np.array_split(indices, num_parts)
    elif scheme == "strided":
        chunks = [indices[k::num_parts] for k in range(num_parts)]
    else:
        raise TabuSearchError(f"unknown partition scheme {scheme!r}")
    for k, chunk in enumerate(chunks):
        parts.append(CellRange(cells=tuple(int(c) for c in chunk), label=f"{label_prefix}{k}"))
    return parts


def partition_cells_weighted(
    num_cells: int,
    weights: Sequence[float],
    *,
    scheme: str = "contiguous",
    label_prefix: str = "part",
) -> List[CellRange]:
    """Split cells into ranges sized proportionally to ``weights``.

    The elastic master uses this to re-partition a dead worker's range over
    survivors sized by *observed* throughput rather than declared speeds.
    Sizes come from largest-remainder apportionment (deterministic,
    index-order tie-breaking), with every part guaranteed at least one cell.
    """
    if num_cells <= 0:
        raise TabuSearchError(f"num_cells must be positive, got {num_cells}")
    num_parts = len(weights)
    if num_parts == 0:
        raise TabuSearchError("weights must be non-empty")
    if num_parts > num_cells:
        raise TabuSearchError(
            f"cannot split {num_cells} cells into {num_parts} non-empty ranges"
        )
    weights = [float(w) for w in weights]
    for w in weights:
        if not np.isfinite(w) or w <= 0:
            raise TabuSearchError(f"weights must be finite and positive, got {weights}")
    total = sum(weights)
    quotas = [w / total * num_cells for w in weights]
    counts = [int(q) for q in quotas]
    # hand the leftover cells to the largest fractional remainders
    remainders = sorted(
        range(num_parts), key=lambda k: (-(quotas[k] - counts[k]), k)
    )
    for k in remainders[: num_cells - sum(counts)]:
        counts[k] += 1
    # every part gets at least one cell, taken from the largest parts
    for k in range(num_parts):
        while counts[k] == 0:
            donor = max(range(num_parts), key=lambda j: (counts[j], -j))
            counts[donor] -= 1
            counts[k] += 1
    parts: List[CellRange] = []
    if scheme == "contiguous":
        offset = 0
        for k, count in enumerate(counts):
            cells = tuple(range(offset, offset + count))
            offset += count
            parts.append(CellRange(cells=cells, label=f"{label_prefix}{k}"))
    elif scheme == "strided":
        # deal indices round-robin, skipping parts that reached their quota
        buckets: List[List[int]] = [[] for _ in range(num_parts)]
        part = 0
        for cell in range(num_cells):
            while len(buckets[part]) >= counts[part]:
                part = (part + 1) % num_parts
            buckets[part].append(cell)
            part = (part + 1) % num_parts
        for k, bucket in enumerate(buckets):
            parts.append(CellRange(cells=tuple(bucket), label=f"{label_prefix}{k}"))
    else:
        raise TabuSearchError(f"unknown partition scheme {scheme!r}")
    return parts


def sample_candidate_pairs(
    cell_range: CellRange,
    num_cells: int,
    count: int,
    rng: np.random.Generator,
) -> List[Tuple[int, int]]:
    """Sample ``count`` candidate swap pairs for a worker.

    The first cell of each pair comes from ``cell_range``; the second is drawn
    uniformly from the whole cell space (excluding the first cell), exactly as
    in Section 4.1 of the paper.
    """
    if count <= 0:
        raise TabuSearchError(f"count must be positive, got {count}")
    if num_cells < 2:
        raise TabuSearchError("need at least two cells to form a swap pair")
    # Scalar, interleaved draws (first, second, first, second, ...): the
    # historical sampling order, kept for components that still want it.
    # The iteration drivers use :func:`sample_candidate_pairs_array`, whose
    # two bulk draws replace the 2*count scalar generator calls that used to
    # dominate the per-iteration driver cost.
    pairs: List[Tuple[int, int]] = []
    for _ in range(count):
        first = cell_range.sample(rng)
        second = int(rng.integers(0, num_cells - 1))
        if second >= first:
            second += 1  # skip `first` without rejection sampling
        pairs.append((first, second))
    return pairs


def sample_candidate_pairs_array(
    range_cells: np.ndarray,
    num_cells: int,
    count: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Vectorised candidate-pair sampler: returns a ``(count, 2)`` int64 array.

    Semantics match :func:`sample_candidate_pairs` — first cell uniform over
    the worker's range, second uniform over all *other* cells — but the
    whole batch is drawn with two generator calls instead of ``2 * count``
    scalar ones (the scalar draws used to be the single largest cost of a
    tabu iteration).  The bulk draws consume the bit stream differently from
    the scalar sampler, so the two are *not* trajectory-compatible; both
    iteration drivers use this one.

    ``range_cells`` is the worker range as an array (precomputed once per
    search, not per step).

    Duplicate pairs within a batch are *not* deduplicated: the expected
    duplicate rate is :func:`collision_probability` per pair-of-pairs
    (~``1 / (n - 1)^2``), which at the 10k-cell scale with 256-pair batches
    works out to well under 0.1% of draws — a dedup pass would cost more
    than the duplicated evaluations it saves (measured; see
    ``tests/tabu/test_candidate_scale.py``).
    """
    if count <= 0:
        raise TabuSearchError(f"count must be positive, got {count}")
    if num_cells < 2:
        raise TabuSearchError("need at least two cells to form a swap pair")
    firsts = range_cells[rng.integers(0, range_cells.size, size=count)]
    seconds = rng.integers(0, num_cells - 1, size=count)
    seconds += seconds >= firsts  # skip `first` without rejection sampling
    pairs = np.empty((count, 2), dtype=np.int64)
    pairs[:, 0] = firsts
    pairs[:, 1] = seconds
    return pairs


def collision_probability(num_cells: int) -> float:
    """Probability that two CLWs propose the same swap: ``1 / (n - 1)^2``.

    This is the quantity the paper derives to argue that the probabilistic
    domain decomposition effectively avoids duplicated work.
    """
    if num_cells < 2:
        raise TabuSearchError("collision probability undefined for fewer than 2 cells")
    return 1.0 / float((num_cells - 1) ** 2)
