"""Short-term and long-term tabu memory.

:class:`TabuList` is the short-term memory of the paper's Figure 1: it stores
the attributes of recently accepted moves together with the iteration at
which their tabu status expires.  A move is *tabu* if any of its attributes is
still active.

:class:`FrequencyMemory` is the long-term memory used by diversification: it
counts how often every cell has been moved, so the diversification step can
push rarely moved cells to new locations (Kelly-style diversification).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

import numpy as np

from ..errors import TabuSearchError
from .attributes import MoveAttribute

__all__ = ["TabuList", "FrequencyMemory"]


class TabuList:
    """Attribute-based short-term memory with a fixed tenure.

    Parameters
    ----------
    tenure:
        Number of iterations an attribute stays tabu after being recorded.
    """

    def __init__(self, tenure: int) -> None:
        if tenure < 0:
            raise TabuSearchError(f"tabu tenure must be non-negative, got {tenure}")
        self._tenure = tenure
        self._expiry: Dict[MoveAttribute, int] = {}

    @property
    def tenure(self) -> int:
        """Configured tenure (iterations an attribute remains tabu)."""
        return self._tenure

    def __len__(self) -> int:
        return len(self._expiry)

    def __contains__(self, attribute: MoveAttribute) -> bool:
        return attribute in self._expiry

    def __iter__(self) -> Iterator[MoveAttribute]:
        return iter(self._expiry)

    def record(self, attributes: Iterable[MoveAttribute], iteration: int) -> None:
        """Mark ``attributes`` tabu until ``iteration + tenure``."""
        if self._tenure == 0:
            return
        expiry = iteration + self._tenure
        for attr in attributes:
            self._expiry[attr] = expiry

    def is_tabu(self, attributes: Iterable[MoveAttribute], iteration: int) -> bool:
        """Whether any attribute is still tabu at ``iteration``."""
        for attr in attributes:
            expiry = self._expiry.get(attr)
            if expiry is not None and iteration < expiry:
                return True
        return False

    def expire(self, iteration: int) -> int:
        """Drop attributes whose tenure has elapsed; returns how many were dropped."""
        stale = [attr for attr, expiry in self._expiry.items() if iteration >= expiry]
        for attr in stale:
            del self._expiry[attr]
        return len(stale)

    def clear(self) -> None:
        """Forget everything (used when a TSW adopts a new global best)."""
        self._expiry.clear()

    # ------------------------------------------------------------------ #
    # serialisation — the paper's master/TSW protocol ships the tabu list
    # together with the best solution.
    # ------------------------------------------------------------------ #
    def to_payload(self) -> Tuple[Tuple[str, Tuple[int, ...], int], ...]:
        """Serialisable snapshot ``((kind, key, expiry), ...)``."""
        return tuple((attr.kind, attr.key, expiry) for attr, expiry in self._expiry.items())

    @classmethod
    def from_payload(
        cls, payload: Iterable[Tuple[str, Tuple[int, ...], int]], tenure: int
    ) -> "TabuList":
        """Rebuild a tabu list from :meth:`to_payload` output."""
        instance = cls(tenure)
        for kind, key, expiry in payload:
            instance._expiry[MoveAttribute(kind=kind, key=tuple(key))] = int(expiry)
        return instance


class FrequencyMemory:
    """Long-term memory: per-cell move counts used for diversification."""

    def __init__(self, num_cells: int) -> None:
        if num_cells <= 0:
            raise TabuSearchError(f"num_cells must be positive, got {num_cells}")
        self._counts = np.zeros(num_cells, dtype=np.int64)

    @property
    def counts(self) -> np.ndarray:
        """Per-cell move counts (read-only view)."""
        view = self._counts.view()
        view.flags.writeable = False
        return view

    def record_swap(self, cell_a: int, cell_b: int) -> None:
        """Record that both cells of a committed swap were moved."""
        self._counts[cell_a] += 1
        self._counts[cell_b] += 1

    def least_moved(self, candidates: np.ndarray, rng: np.random.Generator) -> int:
        """Among ``candidates``, pick a least-frequently-moved cell (ties random)."""
        if candidates.size == 0:
            raise TabuSearchError("least_moved called with no candidates")
        counts = self._counts[candidates]
        minimum = counts.min()
        pool = candidates[counts == minimum]
        return int(pool[rng.integers(0, pool.size)])

    def reset(self) -> None:
        """Zero all counters."""
        self._counts[:] = 0
