"""Short-term and long-term tabu memory.

Two interchangeable short-term memories implement the paper's Figure 1
semantics (a move is *tabu* while any of its attributes is still active):

* :class:`TabuList` — the dictionary **reference oracle**: attributes are
  hashable :class:`~repro.tabu.attributes.MoveAttribute` keys mapping to the
  iteration at which their tabu status expires.  Expiry sweeping is
  amortised O(1) per iteration via per-expiry buckets (at most ``tenure``
  distinct expiry values are ever live, so a sweep touches only the buckets
  that actually lapsed instead of rescanning the whole live list).
* :class:`ArrayTabuList` — the **vectorized** memory used by the fast
  iteration driver: one int64 expiry store per attribute kind, keyed by the
  dense attribute index (``lo * num_cells + hi`` for pair attributes, the
  cell index for cell attributes).  Below ``ARRAY_TABU_MAX_CELLS`` the pair
  store is a dense vector; above it, an exact-key open-addressed hash table
  with the same keys (O(live) memory for 10k+-cell instances).  Either way
  ``is_tabu_mask`` answers a whole candidate batch with one vectorised
  probe, ``record_pairs`` records a whole compound move in one pass, and
  expiry is *lazy* — a stale entry simply compares as not-tabu.

Both expose the same driver-facing surface (``record_pairs`` /
``is_tabu_pairs`` / ``is_tabu_mask`` / ``expire`` / ``to_payload``), which
is what lets the trajectory-identity suite drive the two implementations
through identical search runs.

:class:`FrequencyMemory` is the long-term memory used by diversification: it
counts how often every cell has been moved, so the diversification step can
push rarely moved cells to new locations (Kelly-style diversification).
``record_swaps`` commits a whole accepted compound move in one bulk update.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import TabuSearchError
from .attributes import AttributeScheme, MoveAttribute, pair_attribute_indices, swap_attributes

__all__ = ["TabuList", "ArrayTabuList", "FrequencyMemory", "make_tabu_list"]

#: Largest instance for which the dense pair-expiry vector is allocated
#: (``num_cells**2`` int64 entries — 128 MiB at the cap).  Beyond it the
#: pair attributes live in :class:`_HashedPairTable`, an exact-key
#: open-addressed expiry table whose memory is O(live attributes) instead
#: of O(num_cells**2) — the vectorized driver keeps its array memory at any
#: instance size.
ARRAY_TABU_MAX_CELLS = 4096


class _HashedPairTable:
    """Open-addressed exact-key expiry table for pair-attribute indices.

    The dense pair vector is O(num_cells**2) int64 — 800 GB at 10k cells —
    while a tabu list only ever holds O(tenure * move_depth) live entries.
    This table stores exactly the recorded ``lo * num_cells + hi`` keys
    (linear probing, multiply-shift hashing, power-of-two capacity), so
    lookups have **no false positives**: semantics match the dense vector
    and the dict oracle bit-for-bit, only the storage differs.

    The hot driver query (:meth:`ArrayTabuList.is_tabu_mask`) runs through
    :meth:`lookup`, a vectorised batch probe; inserts arrive in tiny batches
    (one accepted compound move ≤ ``move_depth`` pairs), so a scalar probe
    loop is fine there.  Stale entries are pruned when the occupancy crosses
    the load-factor bound — the rebuild keeps only entries still live at the
    caller-supplied ``floor`` iteration, growing only when live entries
    genuinely need the room.
    """

    _MULT = np.uint64(0x9E3779B97F4A7C15)

    def __init__(self, log2_capacity: int = 10) -> None:
        self._log2 = int(log2_capacity)
        size = 1 << self._log2
        self._keys = np.full(size, -1, dtype=np.int64)
        self._expiry = np.zeros(size, dtype=np.int64)
        self._used = 0  # occupied slots, live or stale

    @property
    def capacity(self) -> int:
        return self._keys.size

    def _slot_of(self, key: int) -> int:
        # multiply-shift on the high bits; identical to the vectorised hash
        return ((key * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF) >> (64 - self._log2)

    def _probe_insert(self, key: int, expiry: int) -> None:
        keys = self._keys
        mask = self.capacity - 1
        pos = self._slot_of(key)
        while True:
            stored = int(keys[pos])
            if stored == key:
                self._expiry[pos] = expiry
                return
            if stored == -1:
                keys[pos] = key
                self._expiry[pos] = expiry
                self._used += 1
                return
            pos = (pos + 1) & mask

    def _rebuild(self, floor: int) -> None:
        """Re-hash live entries only, growing if they genuinely need room."""
        live = np.flatnonzero((self._keys != -1) & (self._expiry > floor))
        live_keys = self._keys[live].tolist()
        live_expiry = self._expiry[live].tolist()
        log2 = self._log2
        while 3 * (len(live_keys) + 1) >= 2 * (1 << log2):
            log2 += 1
        self._log2 = log2
        size = 1 << log2
        self._keys = np.full(size, -1, dtype=np.int64)
        self._expiry = np.zeros(size, dtype=np.int64)
        self._used = 0
        for key, expiry in zip(live_keys, live_expiry):
            self._probe_insert(key, expiry)

    def store(self, key: int, expiry: int, floor: int) -> None:
        """Insert/refresh one key; ``floor`` bounds the stale sweep."""
        if 3 * (self._used + 1) >= 2 * self.capacity:  # load factor 2/3
            self._rebuild(floor)
        self._probe_insert(int(key), int(expiry))

    def store_many(self, keys: np.ndarray, expiry: int, floor: int) -> None:
        for key in keys.tolist():
            self.store(key, expiry, floor)

    def get(self, key: int) -> int:
        """Expiry recorded for ``key`` (0 when absent)."""
        key = int(key)
        mask = self.capacity - 1
        pos = self._slot_of(key)
        while True:
            stored = int(self._keys[pos])
            if stored == key:
                return int(self._expiry[pos])
            if stored == -1:
                return 0
            pos = (pos + 1) & mask

    def lookup(self, keys: np.ndarray) -> np.ndarray:
        """Expiry of every query key (0 when absent) — vectorised batch probe.

        All queries probe in lock-step; a query retires when it hits its key
        or an empty slot.  With load factor ≤ 2/3 the expected probe count
        is a small constant, so the loop runs ~2-3 NumPy passes per batch.
        """
        keys = np.asarray(keys, dtype=np.int64)
        out = np.zeros(keys.size, dtype=np.int64)
        if keys.size == 0 or self._used == 0:
            return out
        shift = np.uint64(64 - self._log2)
        pos = ((keys.astype(np.uint64) * self._MULT) >> shift).astype(np.int64)
        mask = self.capacity - 1
        pending = np.arange(keys.size)
        table_keys = self._keys
        table_expiry = self._expiry
        while pending.size:
            slots = pos[pending]
            stored = table_keys[slots]
            hit = stored == keys[pending]
            if hit.any():
                matched = pending[hit]
                out[matched] = table_expiry[pos[matched]]
            pending = pending[~(hit | (stored == -1))]
            if pending.size:
                pos[pending] = (pos[pending] + 1) & mask
        return out

    def live_items(self, floor: int) -> Tuple[List[int], List[int]]:
        """Keys and expiries of entries live after ``floor``, key-sorted."""
        live = np.flatnonzero((self._keys != -1) & (self._expiry > floor))
        keys = self._keys[live]
        order = np.argsort(keys, kind="stable")
        return keys[order].tolist(), self._expiry[live][order].tolist()

    def count_live(self, floor: int) -> int:
        return int(np.count_nonzero((self._keys != -1) & (self._expiry > floor)))

    def clear(self) -> None:
        self._keys[:] = -1
        self._expiry[:] = 0
        self._used = 0


class TabuList:
    """Attribute-based short-term memory with a fixed tenure (dict oracle).

    Parameters
    ----------
    tenure:
        Number of iterations an attribute stays tabu after being recorded.
    """

    def __init__(self, tenure: int) -> None:
        if tenure < 0:
            raise TabuSearchError(f"tabu tenure must be non-negative, got {tenure}")
        self._tenure = tenure
        self._expiry: Dict[MoveAttribute, int] = {}
        # expiry value -> attributes recorded with that expiry; an attribute
        # re-recorded later stays in its old bucket but the sweep checks the
        # dict before dropping it, so stale bucket entries are harmless.
        self._buckets: Dict[int, List[MoveAttribute]] = {}

    @property
    def tenure(self) -> int:
        """Configured tenure (iterations an attribute remains tabu)."""
        return self._tenure

    def __len__(self) -> int:
        return len(self._expiry)

    def __contains__(self, attribute: MoveAttribute) -> bool:
        return attribute in self._expiry

    def __iter__(self) -> Iterator[MoveAttribute]:
        return iter(self._expiry)

    def record(self, attributes: Iterable[MoveAttribute], iteration: int) -> None:
        """Mark ``attributes`` tabu until ``iteration + tenure``."""
        if self._tenure == 0:
            return
        expiry = iteration + self._tenure
        bucket = self._buckets.setdefault(expiry, [])
        for attr in attributes:
            self._expiry[attr] = expiry
            bucket.append(attr)

    def is_tabu(self, attributes: Iterable[MoveAttribute], iteration: int) -> bool:
        """Whether any attribute is still tabu at ``iteration``."""
        for attr in attributes:
            expiry = self._expiry.get(attr)
            if expiry is not None and iteration < expiry:
                return True
        return False

    # ------------------------------------------------------------------ #
    # pair-batch surface shared with ArrayTabuList
    # ------------------------------------------------------------------ #
    def record_pairs(
        self,
        pairs: np.ndarray,
        iteration: int,
        scheme: AttributeScheme = AttributeScheme.PAIR,
    ) -> None:
        """Record every swap pair of an accepted move under ``scheme``."""
        if self._tenure == 0:
            return
        arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        for cell_a, cell_b in arr.tolist():
            self.record(swap_attributes(cell_a, cell_b, scheme), iteration)

    def is_tabu_mask(
        self,
        pairs: np.ndarray,
        iteration: int,
        scheme: AttributeScheme = AttributeScheme.PAIR,
    ) -> np.ndarray:
        """Per-pair tabu status of a candidate batch (reference loop)."""
        arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        mask = np.zeros(arr.shape[0], dtype=bool)
        for k, (cell_a, cell_b) in enumerate(arr.tolist()):
            mask[k] = self.is_tabu(swap_attributes(cell_a, cell_b, scheme), iteration)
        return mask

    def is_tabu_pairs(
        self,
        pairs: np.ndarray,
        iteration: int,
        scheme: AttributeScheme = AttributeScheme.PAIR,
    ) -> bool:
        """Whether *any* pair of a move is tabu at ``iteration``."""
        arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        for cell_a, cell_b in arr.tolist():
            if self.is_tabu(swap_attributes(cell_a, cell_b, scheme), iteration):
                return True
        return False

    def expire(self, iteration: int) -> int:
        """Drop attributes whose tenure has elapsed; returns how many were dropped.

        Amortised O(dropped): only the expiry buckets that actually lapsed
        are visited (at most ``tenure + 1`` distinct expiry values can ever
        be pending), instead of rescanning every live attribute per call.
        """
        lapsed = [expiry for expiry in self._buckets if expiry <= iteration]
        removed = 0
        for expiry in lapsed:
            for attr in self._buckets.pop(expiry):
                if self._expiry.get(attr) == expiry:
                    del self._expiry[attr]
                    removed += 1
        return removed

    def clear(self) -> None:
        """Forget everything (used when a TSW adopts a new global best)."""
        self._expiry.clear()
        self._buckets.clear()

    # ------------------------------------------------------------------ #
    # serialisation — the paper's master/TSW protocol ships the tabu list
    # together with the best solution.
    # ------------------------------------------------------------------ #
    def to_payload(self) -> Tuple[Tuple[str, Tuple[int, ...], int], ...]:
        """Serialisable snapshot ``((kind, key, expiry), ...)``."""
        return tuple((attr.kind, attr.key, expiry) for attr, expiry in self._expiry.items())

    @classmethod
    def from_payload(
        cls, payload: Iterable[Tuple[str, Tuple[int, ...], int]], tenure: int
    ) -> "TabuList":
        """Rebuild a tabu list from :meth:`to_payload` output."""
        instance = cls(tenure)
        for kind, key, expiry in payload:
            attr = MoveAttribute(kind=kind, key=tuple(key))
            expiry = int(expiry)
            instance._expiry[attr] = expiry
            instance._buckets.setdefault(expiry, []).append(attr)
        return instance


class ArrayTabuList:
    """Array-backed short-term memory: expiry vectors per attribute kind.

    The vectorized iteration driver's memory.  Pair attributes live in a
    dense ``num_cells**2`` int64 vector indexed by
    :func:`~repro.tabu.attributes.pair_attribute_indices` while that vector
    is affordable (``num_cells <= ARRAY_TABU_MAX_CELLS``) and in an
    exact-key :class:`_HashedPairTable` beyond it — same keys, same expiry
    semantics, O(live entries) memory.  Cell attributes live in a
    ``num_cells`` vector.  An attribute is tabu at ``iteration`` while
    ``expiry[index] > iteration`` — dense entries are never swept, they
    simply stop comparing as live (the hashed layout prunes stale entries
    opportunistically when it would otherwise rehash).

    The expiry stores are allocated lazily per kind, so a pair-scheme
    search never pays for the cell vector and vice versa.
    """

    def __init__(
        self, tenure: int, num_cells: int, *, max_dense_cells: Optional[int] = None
    ) -> None:
        if tenure < 0:
            raise TabuSearchError(f"tabu tenure must be non-negative, got {tenure}")
        if num_cells <= 0:
            raise TabuSearchError(f"num_cells must be positive, got {num_cells}")
        self._tenure = tenure
        self._num_cells = num_cells
        dense_cap = ARRAY_TABU_MAX_CELLS if max_dense_cells is None else max_dense_cells
        #: dense pair vector below the cap, hashed table above it
        self._dense_pairs = num_cells <= dense_cap
        self._pair: Optional[np.ndarray] = None  # (num_cells**2,) expiry
        self._pair_table: Optional[_HashedPairTable] = None
        self._cell: Optional[np.ndarray] = None  # (num_cells,) expiry
        # Attributes outside the dense pair/cell index space (foreign kinds
        # arriving over the wire from experimental schemes) fall back to a
        # plain dict — the mask paths never consult it, but payload
        # round-trips and attribute-level queries stay lossless.
        self._extra: Dict[MoveAttribute, int] = {}
        # Every index ever recorded per kind: keeps the live-set views
        # (len/payload/iter — the TSW report path serialises per global
        # iteration) O(recorded) instead of scanning the num_cells**2 vector.
        self._pair_touched: set = set()
        self._cell_touched: set = set()
        # Latest iteration the search has shown us; defines which entries
        # count as live for len()/payload purposes (queries pass their own).
        self._last_iteration = 0

    # ------------------------------------------------------------------ #
    @property
    def tenure(self) -> int:
        """Configured tenure (iterations an attribute remains tabu)."""
        return self._tenure

    @property
    def num_cells(self) -> int:
        """Size of the attribute index space."""
        return self._num_cells

    def _pair_vector(self) -> np.ndarray:
        if self._pair is None:
            self._pair = np.zeros(self._num_cells * self._num_cells, dtype=np.int64)
        return self._pair

    def _pair_table_ref(self) -> _HashedPairTable:
        if self._pair_table is None:
            self._pair_table = _HashedPairTable()
        return self._pair_table

    def _store_pair_indices(self, indices: np.ndarray, expiry: int) -> None:
        """Record pair-attribute indices in whichever pair layout is active."""
        if self._dense_pairs:
            self._pair_vector()[indices] = expiry
            self._pair_touched.update(indices.tolist())
        else:
            self._pair_table_ref().store_many(
                np.atleast_1d(indices), expiry, self._last_iteration
            )

    def _cell_vector(self) -> np.ndarray:
        if self._cell is None:
            self._cell = np.zeros(self._num_cells, dtype=np.int64)
        return self._cell

    def _note(self, iteration: int) -> None:
        if iteration > self._last_iteration:
            self._last_iteration = iteration

    # ------------------------------------------------------------------ #
    # pair-batch surface (the driver's hot path)
    # ------------------------------------------------------------------ #
    def record_pairs(
        self,
        pairs: np.ndarray,
        iteration: int,
        scheme: AttributeScheme = AttributeScheme.PAIR,
    ) -> None:
        """Record every swap pair of an accepted move with one scatter."""
        self._note(iteration)
        if self._tenure == 0:
            return
        arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        if arr.size == 0:
            return
        expiry = iteration + self._tenure
        if scheme is AttributeScheme.PAIR:
            self._store_pair_indices(pair_attribute_indices(arr, self._num_cells), expiry)
        else:
            cells = arr.ravel()
            self._cell_vector()[cells] = expiry
            self._cell_touched.update(cells.tolist())

    def is_tabu_mask(
        self,
        pairs: np.ndarray,
        iteration: int,
        scheme: AttributeScheme = AttributeScheme.PAIR,
    ) -> np.ndarray:
        """Per-pair tabu status of a candidate batch: one gather + compare."""
        self._note(iteration)
        arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        if scheme is AttributeScheme.PAIR:
            if self._dense_pairs:
                if self._pair is None:
                    return np.zeros(arr.shape[0], dtype=bool)
                return self._pair[pair_attribute_indices(arr, self._num_cells)] > iteration
            if self._pair_table is None:
                return np.zeros(arr.shape[0], dtype=bool)
            return (
                self._pair_table.lookup(pair_attribute_indices(arr, self._num_cells))
                > iteration
            )
        if self._cell is None:
            return np.zeros(arr.shape[0], dtype=bool)
        live = self._cell > iteration
        return live[arr[:, 0]] | live[arr[:, 1]]

    def is_tabu_pairs(
        self,
        pairs: np.ndarray,
        iteration: int,
        scheme: AttributeScheme = AttributeScheme.PAIR,
    ) -> bool:
        """Whether *any* pair of a move is tabu at ``iteration``."""
        return bool(self.is_tabu_mask(pairs, iteration, scheme).any())

    # ------------------------------------------------------------------ #
    # attribute-level compatibility surface
    # ------------------------------------------------------------------ #
    def _index_of(self, attribute: MoveAttribute) -> Optional[Tuple[str, int]]:
        """Dense index of an attribute, or ``None`` for the overflow dict."""
        key = attribute.key
        if (
            attribute.kind == "pair"
            and len(key) == 2
            and all(0 <= k < self._num_cells for k in key)
        ):
            lo, hi = (key[0], key[1]) if key[0] <= key[1] else (key[1], key[0])
            return "pair", lo * self._num_cells + hi
        if attribute.kind == "cell" and len(key) == 1 and 0 <= key[0] < self._num_cells:
            return "cell", key[0]
        return None

    def record(self, attributes: Iterable[MoveAttribute], iteration: int) -> None:
        """Mark ``attributes`` tabu until ``iteration + tenure``."""
        self._note(iteration)
        if self._tenure == 0:
            return
        expiry = iteration + self._tenure
        for attr in attributes:
            slot = self._index_of(attr)
            if slot is None:
                self._extra[attr] = expiry
                continue
            kind, index = slot
            if kind == "pair":
                self._store_pair_indices(np.asarray([index], dtype=np.int64), expiry)
            else:
                self._cell_vector()[index] = expiry
                self._cell_touched.add(index)

    def _pair_expiry_at(self, index: int) -> int:
        """Recorded expiry of one pair index under the active layout (0 = none)."""
        if self._dense_pairs:
            return int(self._pair[index]) if self._pair is not None else 0
        return self._pair_table.get(index) if self._pair_table is not None else 0

    def is_tabu(self, attributes: Iterable[MoveAttribute], iteration: int) -> bool:
        """Whether any attribute is still tabu at ``iteration``."""
        for attr in attributes:
            slot = self._index_of(attr)
            if slot is None:
                expiry = self._extra.get(attr)
                if expiry is not None and iteration < expiry:
                    return True
                continue
            kind, index = slot
            if kind == "pair":
                if iteration < self._pair_expiry_at(index):
                    return True
            elif self._cell is not None and iteration < int(self._cell[index]):
                return True
        return False

    def expire(self, iteration: int) -> int:
        """Lazy expiry: nothing to sweep — stale entries compare as not tabu."""
        self._note(iteration)
        return 0

    def clear(self) -> None:
        """Forget everything (used when a TSW adopts a new global best)."""
        if self._pair is not None:
            self._pair[:] = 0
        if self._pair_table is not None:
            self._pair_table.clear()
        if self._cell is not None:
            self._cell[:] = 0
        self._extra.clear()
        self._pair_touched.clear()
        self._cell_touched.clear()

    # ------------------------------------------------------------------ #
    # live-set views (tests / diagnostics / serialisation)
    # ------------------------------------------------------------------ #
    def _live_items(self) -> List[Tuple[MoveAttribute, int]]:
        items: List[Tuple[MoveAttribute, int]] = []
        n = self._num_cells
        if self._pair is not None:
            for index in sorted(self._pair_touched):
                expiry = int(self._pair[index])
                if expiry > self._last_iteration:
                    attr = MoveAttribute(kind="pair", key=(index // n, index % n))
                    items.append((attr, expiry))
                else:  # lapsed: prune, so live-set views stay O(live)
                    self._pair_touched.discard(index)
        if self._pair_table is not None:
            keys, expiries = self._pair_table.live_items(self._last_iteration)
            for index, expiry in zip(keys, expiries):
                attr = MoveAttribute(kind="pair", key=(index // n, index % n))
                items.append((attr, expiry))
        if self._cell is not None:
            for index in sorted(self._cell_touched):
                expiry = int(self._cell[index])
                if expiry > self._last_iteration:
                    items.append((MoveAttribute.cell(index), expiry))
                else:
                    self._cell_touched.discard(index)
        for attr, expiry in self._extra.items():
            if expiry > self._last_iteration:
                items.append((attr, expiry))
        return items

    def __len__(self) -> int:
        live = 0
        if self._pair is not None:
            last = self._last_iteration
            live += sum(1 for index in self._pair_touched if int(self._pair[index]) > last)
        if self._pair_table is not None:
            live += self._pair_table.count_live(self._last_iteration)
        if self._cell is not None:
            last = self._last_iteration
            live += sum(1 for index in self._cell_touched if int(self._cell[index]) > last)
        live += sum(1 for expiry in self._extra.values() if expiry > self._last_iteration)
        return live

    def __contains__(self, attribute: MoveAttribute) -> bool:
        slot = self._index_of(attribute)
        if slot is None:
            return self._extra.get(attribute, 0) > self._last_iteration
        kind, index = slot
        if kind == "pair":
            return self._pair_expiry_at(index) > self._last_iteration
        return self._cell is not None and int(self._cell[index]) > self._last_iteration

    def __iter__(self) -> Iterator[MoveAttribute]:
        return iter(attr for attr, _expiry in self._live_items())

    def to_payload(self) -> Tuple[Tuple[str, Tuple[int, ...], int], ...]:
        """Serialisable snapshot ``((kind, key, expiry), ...)`` of live entries.

        Entries come out in deterministic (kind, index) order; receivers
        treat the payload as a set, so ordering differences from the dict
        implementation (insertion order) are immaterial on the wire.
        """
        return tuple((attr.kind, attr.key, expiry) for attr, expiry in self._live_items())

    @classmethod
    def from_payload(
        cls,
        payload: Iterable[Tuple[str, Tuple[int, ...], int]],
        tenure: int,
        num_cells: int,
    ) -> "ArrayTabuList":
        """Rebuild an array tabu list from :meth:`to_payload` output."""
        instance = cls(tenure, num_cells)
        for kind, key, expiry in payload:
            attr = MoveAttribute(kind=kind, key=tuple(key))
            slot = instance._index_of(attr)
            if slot is None:
                instance._extra[attr] = int(expiry)
                continue
            kind_name, index = slot
            if kind_name == "pair":
                instance._store_pair_indices(
                    np.asarray([index], dtype=np.int64), int(expiry)
                )
            else:
                instance._cell_vector()[index] = int(expiry)
                instance._cell_touched.add(index)
        return instance


def make_tabu_list(tenure: int, num_cells: int, *, vectorized: bool):
    """Build the short-term memory matching the selected iteration driver.

    The vectorized driver always gets an :class:`ArrayTabuList` — dense
    pair vector up to ``ARRAY_TABU_MAX_CELLS`` cells, the exact-key hashed
    pair table beyond (so 10k-cell instances keep vectorised batch masks
    instead of falling back to the dict loop).  The reference driver gets
    the dict oracle.
    """
    if vectorized:
        return ArrayTabuList(tenure, num_cells)
    return TabuList(tenure)


class FrequencyMemory:
    """Long-term memory: per-cell move counts used for diversification."""

    def __init__(self, num_cells: int) -> None:
        if num_cells <= 0:
            raise TabuSearchError(f"num_cells must be positive, got {num_cells}")
        self._counts = np.zeros(num_cells, dtype=np.int64)

    @property
    def counts(self) -> np.ndarray:
        """Per-cell move counts (read-only view)."""
        view = self._counts.view()
        view.flags.writeable = False
        return view

    def record_swap(self, cell_a: int, cell_b: int) -> None:
        """Record that both cells of a committed swap were moved."""
        self._counts[cell_a] += 1
        self._counts[cell_b] += 1

    def record_swaps(self, pairs) -> None:
        """Record a whole swap sequence (an accepted compound move) in bulk.

        One ``bincount`` accumulation instead of per-swap Python increments;
        a cell appearing in several swaps is counted once per appearance,
        exactly like repeated :meth:`record_swap` calls.
        """
        arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        if arr.size == 0:
            return
        self._counts += np.bincount(arr.ravel(), minlength=self._counts.size)

    def least_moved(self, candidates: np.ndarray, rng: np.random.Generator) -> int:
        """Among ``candidates``, pick a least-frequently-moved cell (ties random)."""
        return least_moved_of(self._counts, candidates, rng)

    def reset(self) -> None:
        """Zero all counters."""
        self._counts[:] = 0

    def load_counts(self, counts) -> None:
        """Install a counts vector exported from another memory (checkpoint
        restore): copied in so the caller's array stays unshared."""
        arr = np.asarray(counts, dtype=np.int64)
        if arr.shape != self._counts.shape:
            raise TabuSearchError(
                f"frequency counts shape {arr.shape} does not match "
                f"memory shape {self._counts.shape}"
            )
        self._counts[:] = arr


def least_moved_of(
    counts: np.ndarray, candidates: np.ndarray, rng: np.random.Generator
) -> int:
    """Least-moved candidate under an explicit counts vector (ties random).

    One gather, one min-compare and one draw — shared by
    :meth:`FrequencyMemory.least_moved` and the diversification step's
    scratch-counts selection (which must not mutate the real memory until
    the whole perturbation is recorded in bulk).
    """
    candidates = np.asarray(candidates, dtype=np.int64)
    if candidates.size == 0:
        raise TabuSearchError("least_moved called with no candidates")
    gathered = counts[candidates]
    pool = candidates[np.flatnonzero(gathered == gathered.min())]
    return int(pool[rng.integers(0, pool.size)])
