"""Moves: single swaps and compound moves.

The elementary move of the paper is a *swap* of two cells.  A CLW does not
apply single swaps blindly; it builds a **compound move** of depth ``d``:

1. at each of the ``d`` steps it draws all ``m`` candidate pairs up front
   (first cell from its range, second from anywhere) and scores them with a
   single batched evaluation (the evaluator's ``evaluate_swaps_batch``);
2. it commits the best of the ``m`` trials and continues from there;
3. if at any step the accumulated cost is already better than the cost at the
   start of the compound move, it stops early ("the move is accepted without
   further investigation");
4. the final compound move is the prefix of committed swaps that achieved the
   best cost (the CLW reports the best solution it saw, which may be an
   intermediate prefix rather than the full depth).

The functions in this module operate on a
:class:`~repro.core.protocols.SwapEvaluator`, which owns the solution and the
incremental objective caches — any registered problem domain works.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..accel import masked_argmin
from ..core.protocols import SwapEvaluator
from ..errors import TabuSearchError
from .candidate import CellRange, sample_candidate_pairs_array

__all__ = [
    "SwapMove",
    "CompoundMove",
    "CompoundMoveBuilder",
    "best_swap_of_candidates",
    "build_compound_move",
]

#: Admissibility hook of the mask-aware builder: given the step's candidate
#: pairs ``(m, 2)`` and their batch-evaluated costs ``(m,)``, return a boolean
#: mask of pairs the driver allows (non-tabu, or tabu-but-aspiring), or
#: ``None`` for "everything is admissible".
AdmissibleFn = Callable[[np.ndarray, np.ndarray], Optional[np.ndarray]]


@dataclass(frozen=True, slots=True)
class SwapMove:
    """One evaluated swap: the pair of cells and the cost after applying it."""

    cell_a: int
    cell_b: int
    cost_after: float

    @property
    def pair(self) -> Tuple[int, int]:
        """Canonical (sorted) cell pair."""
        return (self.cell_a, self.cell_b) if self.cell_a <= self.cell_b else (self.cell_b, self.cell_a)


@dataclass(slots=True)
class CompoundMove:
    """A sequence of swaps committed by a CLW during one local investigation.

    Attributes
    ----------
    swaps:
        The committed swaps, in application order (possibly truncated to the
        best prefix).
    cost_before:
        Scalar cost of the solution before the compound move.
    cost_after:
        Scalar cost after applying ``swaps``.
    trials:
        Number of trial evaluations spent building the move (work accounting).
    truncated_early:
        Whether the early-acceptance rule stopped the move before full depth.
    """

    swaps: List[SwapMove] = field(default_factory=list)
    cost_before: float = 0.0
    cost_after: float = 0.0
    trials: int = 0
    truncated_early: bool = False

    @property
    def depth(self) -> int:
        """Number of swaps in the move."""
        return len(self.swaps)

    @property
    def gain(self) -> float:
        """Cost reduction achieved (positive = improvement)."""
        return self.cost_before - self.cost_after

    @property
    def is_improving(self) -> bool:
        """Whether the move improves on the starting cost."""
        return self.cost_after < self.cost_before

    def pairs(self) -> List[Tuple[int, int]]:
        """The swapped cell pairs in application order."""
        return [(s.cell_a, s.cell_b) for s in self.swaps]

    def pairs_array(self) -> np.ndarray:
        """The swapped cell pairs as an ``(depth, 2)`` int64 array."""
        if not self.swaps:
            return np.zeros((0, 2), dtype=np.int64)
        return np.array([(s.cell_a, s.cell_b) for s in self.swaps], dtype=np.int64)


def best_swap_of_candidates(
    evaluator: SwapEvaluator,
    pairs: Sequence[Tuple[int, int]],
) -> Optional[SwapMove]:
    """Trial-evaluate candidate pairs and return the one with the lowest cost.

    The whole candidate list is scored with one call to the evaluator's
    batched ``evaluate_swaps_batch`` kernel instead
    of per-pair scalar trials.  Returns ``None`` when ``pairs`` is empty.
    Ties are broken in favour of the first candidate (``argmin`` returns the
    first minimum, matching the scalar loop's strict-less comparison).
    """
    if not len(pairs):
        return None
    costs = evaluator.evaluate_swaps_batch(pairs)
    best_index = masked_argmin(costs)
    cell_a, cell_b = pairs[best_index]
    return SwapMove(cell_a=int(cell_a), cell_b=int(cell_b), cost_after=float(costs[best_index]))


class CompoundMoveBuilder:
    """Step-by-step construction of a compound move.

    The serial engine builds a whole compound move in one call
    (:func:`build_compound_move`); a Candidate List Worker, however, must be
    interruptible between steps — when its parent TSW asks for an early report
    (the heterogeneous synchronisation of Section 4.2) the CLW stops exploring
    and reports whatever best prefix it has.  The builder exposes exactly that
    step granularity.

    Usage::

        builder = CompoundMoveBuilder(evaluator, cell_range,
                                      pairs_per_step=5, depth=3)
        while builder.wants_more_steps():
            builder.step(rng)
            # ... check for interrupts here ...
        move = builder.finalize()
    """

    def __init__(
        self,
        evaluator: SwapEvaluator,
        cell_range: CellRange,
        *,
        pairs_per_step: int,
        depth: int,
        early_accept: bool = True,
        admissible: Optional[AdmissibleFn] = None,
        range_array: Optional[np.ndarray] = None,
    ) -> None:
        if pairs_per_step <= 0:
            raise TabuSearchError(f"pairs_per_step must be positive, got {pairs_per_step}")
        if depth <= 0:
            raise TabuSearchError(f"depth must be positive, got {depth}")
        self._evaluator = evaluator
        self._range = cell_range
        # the driver passes the range as a pre-built array so per-iteration
        # builder construction does not re-convert the cell tuple
        self._range_array = range_array if range_array is not None else cell_range.as_array()
        self._pairs_per_step = pairs_per_step
        self._depth = depth
        self._early_accept = early_accept
        self._admissible = admissible
        self._seeded_pairs: Optional[np.ndarray] = None
        self._seeded_costs: Optional[np.ndarray] = None
        self._cost_before = evaluator.cost()
        self._committed: List[SwapMove] = []
        # The best prefix is the shortest non-empty prefix with the lowest
        # cost: even when every prefix degrades the cost, the CLW must still
        # report a (least-degrading) move — tabu search relies on accepting
        # bad moves.  A state snapshot is kept at the best prefix so finalize
        # can rewind with array copies instead of reverse commits.
        self._best_prefix_len = 0
        self._best_prefix_cost = float("inf")
        self._best_prefix_state = None
        self._trials = 0
        self._truncated_early = False
        self._finalized = False

    @property
    def cost_before(self) -> float:
        """Cost of the solution the move is being built from."""
        return self._cost_before

    @property
    def steps_taken(self) -> int:
        """Number of committed steps so far."""
        return len(self._committed)

    @property
    def trials(self) -> int:
        """Trial evaluations spent so far."""
        return self._trials

    def wants_more_steps(self) -> bool:
        """Whether another :meth:`step` call would do anything."""
        return (
            not self._finalized
            and not self._truncated_early
            and len(self._committed) < self._depth
        )

    def seed_step(self, pairs: np.ndarray, costs: np.ndarray) -> None:
        """Pre-load the next step's candidate pairs and their batch costs.

        The iteration driver scores the *first* step of every candidate
        range in one fused ``evaluate_swaps_batch`` call (all ranges start
        from the same solution, so their step-1 trials are independent of
        each other); the per-range slices are handed to each builder here
        and consumed by the next :meth:`step` without sampling or
        re-evaluating.
        """
        if self._committed or self._seeded_pairs is not None:
            raise TabuSearchError("seed_step() is only valid before the first step")
        self._seeded_pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        self._seeded_costs = np.asarray(costs, dtype=np.float64)
        if self._seeded_pairs.shape[0] != self._seeded_costs.shape[0]:
            raise TabuSearchError("seeded pairs and costs must have matching length")

    def step(self, rng: np.random.Generator) -> int:
        """Trial ``pairs_per_step`` candidates, commit the best; returns trials used.

        The best candidate is the lowest-cost *admissible* pair when an
        admissibility hook is installed (tabu-and-aspiration filtering
        pushed into the scoring pass); with every pair masked out, the step
        falls back to the overall best — the builder must always commit
        something, and the driver's move-level tabu check still guards the
        final acceptance.
        """
        if self._finalized:
            raise TabuSearchError("step() called after finalize()")
        if not self.wants_more_steps():
            return 0
        if self._seeded_pairs is not None:
            pairs, costs = self._seeded_pairs, self._seeded_costs
            self._seeded_pairs = None
            self._seeded_costs = None
        else:
            pairs = sample_candidate_pairs_array(
                self._range_array, self._evaluator.num_cells, self._pairs_per_step, rng
            )
            costs = self._evaluator.evaluate_swaps_batch(pairs)
        self._trials += len(pairs)
        if len(pairs) == 0:  # pragma: no cover - samplers never return empty
            return 0
        mask = self._admissible(pairs, costs) if self._admissible is not None else None
        # The fused masked-argmin select is an accel kernel: it dispatches on
        # whatever array module produced the costs, so the same shipped code
        # serves the NumPy and cupy paths (identical semantics to the old
        # inline where/argmin — first-minimum tie-break, all-masked fallback).
        best_index = masked_argmin(costs, mask)
        best = SwapMove(
            cell_a=int(pairs[best_index, 0]),
            cell_b=int(pairs[best_index, 1]),
            cost_after=float(costs[best_index]),
        )
        self._evaluator.commit_swap(best.cell_a, best.cell_b)
        self._committed.append(best)
        current_cost = self._evaluator.cost()
        new_best = current_cost < self._best_prefix_cost
        if new_best:
            self._best_prefix_cost = current_cost
            self._best_prefix_len = len(self._committed)
        if self._early_accept and current_cost < self._cost_before:
            self._truncated_early = True
        # Snapshot the new best prefix only when a later step could commit
        # past it — on the final step (or an early accept, the common case)
        # finalize ends exactly here and the copy would be discarded.
        if new_best and self.wants_more_steps():
            self._best_prefix_state = self._evaluator.save_state()
        return len(pairs)

    def finalize(self) -> CompoundMove:
        """Roll back to the best prefix and return the resulting move."""
        if self._finalized:
            raise TabuSearchError("finalize() called twice")
        self._finalized = True
        # Rewind to the best prefix so the evaluator ends on the best solution
        # seen during the exploration — a snapshot restore, not a chain of
        # reverse commits.
        if len(self._committed) > self._best_prefix_len:
            del self._committed[self._best_prefix_len:]
            self._evaluator.restore_state(self._best_prefix_state)
        return CompoundMove(
            swaps=list(self._committed),
            cost_before=self._cost_before,
            cost_after=self._evaluator.cost(),
            trials=self._trials,
            truncated_early=self._truncated_early,
        )


def build_compound_move(
    evaluator: SwapEvaluator,
    cell_range: CellRange,
    *,
    pairs_per_step: int,
    depth: int,
    rng: np.random.Generator,
    early_accept: bool = True,
    admissible: Optional[AdmissibleFn] = None,
) -> CompoundMove:
    """Construct and apply a compound move on ``evaluator``'s solution.

    The evaluator's solution is left in the state corresponding to the *best
    prefix* of the explored swap sequence (swaps beyond the best prefix are
    undone), matching the paper's "best compound move" semantics.

    Parameters
    ----------
    pairs_per_step:
        ``m`` — candidate pairs trialled at every step.
    depth:
        ``d`` — maximum number of committed swaps.
    early_accept:
        Stop as soon as the accumulated cost improves on the starting cost.
    admissible:
        Optional per-step admissibility hook (tabu-and-aspiration mask); see
        :class:`CompoundMoveBuilder`.
    """
    builder = CompoundMoveBuilder(
        evaluator,
        cell_range,
        pairs_per_step=pairs_per_step,
        depth=depth,
        early_accept=early_accept,
        admissible=admissible,
    )
    while builder.wants_more_steps():
        builder.step(rng)
    return builder.finalize()
