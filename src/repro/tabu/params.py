"""Configuration of the (serial and parallel) tabu search."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Literal

from ..errors import TabuSearchError
from .attributes import AttributeScheme

__all__ = ["TabuSearchParams"]


@dataclass(frozen=True, slots=True)
class TabuSearchParams:
    """Parameters of one tabu-search worker.

    These map directly onto the symbols of the paper:

    * ``pairs_per_step`` — ``m``, the number of cell pairs trial-swapped when
      looking for the next elementary move;
    * ``move_depth`` — ``d``, the depth of a compound move;
    * ``local_iterations`` — TS iterations a TSW performs per global
      iteration;
    * ``tabu_tenure`` — how long a move attribute stays tabu;
    * ``diversification_depth`` — number of range-restricted moves a TSW uses
      to diversify away from the common initial solution at the start of every
      global iteration.

    Attributes not in the paper but exposed for ablations: the attribute
    scheme, the early-accept flag, the aspiration margin and the iteration
    ``driver`` — ``"vectorized"`` (array-backed tabu memory, fused candidate
    scoring, copy-light accepts) or ``"reference"`` (the dict-based oracle
    driver that walks the identical trajectory with per-attribute Python
    bookkeeping; kept for the trajectory-identity suite and debugging).
    """

    tabu_tenure: int = 7
    local_iterations: int = 10
    pairs_per_step: int = 5
    move_depth: int = 3
    diversification_depth: int = 6
    early_accept: bool = True
    attribute_scheme: AttributeScheme = AttributeScheme.PAIR
    aspiration: Literal["best", "improvement", "none"] = "best"
    aspiration_margin: float = 0.0
    driver: Literal["vectorized", "reference"] = "vectorized"

    def __post_init__(self) -> None:
        if self.tabu_tenure < 0:
            raise TabuSearchError(f"tabu_tenure must be >= 0, got {self.tabu_tenure}")
        if self.local_iterations < 1:
            raise TabuSearchError(f"local_iterations must be >= 1, got {self.local_iterations}")
        if self.pairs_per_step < 1:
            raise TabuSearchError(f"pairs_per_step must be >= 1, got {self.pairs_per_step}")
        if self.move_depth < 1:
            raise TabuSearchError(f"move_depth must be >= 1, got {self.move_depth}")
        if self.diversification_depth < 0:
            raise TabuSearchError(
                f"diversification_depth must be >= 0, got {self.diversification_depth}"
            )
        if self.aspiration not in ("best", "improvement", "none"):
            raise TabuSearchError(f"unknown aspiration criterion {self.aspiration!r}")
        if not (0.0 <= self.aspiration_margin < 1.0):
            raise TabuSearchError(
                f"aspiration_margin must be in [0, 1), got {self.aspiration_margin}"
            )
        if self.driver not in ("vectorized", "reference"):
            raise TabuSearchError(f"unknown iteration driver {self.driver!r}")

    def with_(self, **changes) -> "TabuSearchParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def scaled_for_circuit(self, num_cells: int) -> "TabuSearchParams":
        """Heuristically scale size-dependent parameters to a circuit size.

        The tenure grows roughly with the square root of the number of cells,
        following common tabu-search practice, so that larger circuits do not
        cycle through the same handful of cells.
        """
        if num_cells <= 0:
            raise TabuSearchError(f"num_cells must be positive, got {num_cells}")
        tenure = max(self.tabu_tenure, int(round(num_cells ** 0.5 / 2)))
        return self.with_(tabu_tenure=tenure)
