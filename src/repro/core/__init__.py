"""Domain-agnostic search core.

The parallel tabu search of the paper — master / TSW / CLW processes over a
heterogeneous PVM cluster, batched trial evaluation, delta-encoded solution
shipping — is problem-independent: all it needs from a problem domain is a
*permutation solution*, a *swap* elementary move and an evaluator that can
score and commit swaps incrementally.  This package pins that contract down:

* :class:`~repro.core.protocols.SwapEvaluator` — the evaluator every engine
  layer (``repro.tabu``, ``repro.parallel``) is written against;
* :class:`~repro.core.protocols.SearchProblem` — the immutable, shippable
  problem description a parallel run shares between its worker processes;
* :mod:`repro.core.registry` — the registry mapping domain names
  (``"placement"``, ``"qap"``, ...) to their implementations, used by the CLI
  and the benchmarks.

Problem domains live under :mod:`repro.problems` and register themselves
here; the engine packages import only this contract, never a domain.
"""

from .protocols import SearchProblem, SwapEvaluator
from .registry import (
    ProblemDomain,
    available_domains,
    get_domain,
    register_domain,
)

__all__ = [
    "SwapEvaluator",
    "SearchProblem",
    "ProblemDomain",
    "register_domain",
    "get_domain",
    "available_domains",
]
