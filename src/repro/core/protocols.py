"""The ``SearchProblem`` / ``SwapEvaluator`` protocols.

These are structural (:class:`typing.Protocol`) contracts — a domain
implements them by shape, without importing this module.  They codify what
the engine implicitly required of the placement evaluator all along:

* **items** — a solution assigns ``num_cells`` *items* (standard cells,
  facilities, jobs, ...) to distinct positions; the engine keeps the paper's
  term "cell" for the generic item throughout (``CellRange``,
  ``cell_a``/``cell_b``, ...);
* **swaps** — the elementary move exchanges the positions of two items and
  is its own inverse;
* **incremental evaluation** — trial swaps are scored *in batch* against the
  current solution without mutating it, commits update internal caches in
  place, and short swap sequences (the delta protocol's wire form) can be
  applied in bulk;
* **snapshots** — the full mutable state can be saved and restored with
  array copies, so the search rewinds trial compound moves cheaply.

The conformance suite (``tests/core/test_problem_contract.py``) runs the
same battery — batch == scalar == from-scratch, delta-adopt == full-install,
empty-input no-ops, snapshot round-trips — over every registered domain.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

__all__ = ["SwapEvaluator", "SearchProblem"]


@runtime_checkable
class SwapEvaluator(Protocol):
    """Incremental evaluator of one mutable solution.

    An evaluator owns a solution (an assignment of ``num_cells`` items to
    distinct positions, exposed as an integer array) together with whatever
    incremental caches the domain's cost function needs.  All mutation goes
    through the methods below so the caches stay consistent.

    ``evaluations`` is a mutable work counter (trials + commits); the
    simulated cluster charges it as the compute a worker consumed.
    """

    evaluations: int

    # ---- identity ----------------------------------------------------- #
    @property
    def num_cells(self) -> int:
        """Number of swappable items in the solution."""
        ...

    @property
    def instance_name(self) -> str:
        """Name of the problem instance (seeds worker RNG streams)."""
        ...

    # ---- cost --------------------------------------------------------- #
    def cost(self) -> float:
        """Scalar cost of the current solution (lower is better, cached)."""
        ...

    def exact_cost(self) -> float:
        """Scalar cost with any incremental surrogate refreshed exactly."""
        ...

    def objectives(self) -> Any:
        """Domain-specific crisp objective values of the current solution."""
        ...

    # ---- swap evaluation / mutation ----------------------------------- #
    def evaluate_swaps_batch(self, pairs) -> np.ndarray:
        """Costs the solution would have under each candidate swap of a batch.

        ``pairs`` is any ``(n, 2)`` array-like of item pairs.  Each pair is
        scored independently against the *current* solution — semantically
        ``n`` scalar trials, computed in one vectorised pass.  Nothing is
        mutated.  An empty batch returns an empty ``float64`` array.

        **Mask-aware batch contract** (what the vectorized iteration driver
        builds on): the result is always a dense ``float64`` array aligned
        with ``pairs``, so the driver can combine it element-wise with a
        tabu/aspiration admissibility mask and select the best admissible
        swap via ``argmin`` without consulting the evaluator again.  Scoring
        must also be *batch-size invariant* — a pair's cost is bit-identical
        whether it is scored alone, in its own range's batch, or inside a
        fused batch covering several candidate ranges (the driver fuses all
        ranges' step-1 trials into one call before their states diverge).
        """
        ...

    def evaluate_swap(self, cell_a: int, cell_b: int) -> float:
        """Cost the solution would have if the two items swapped positions."""
        ...

    def commit_swap(self, cell_a: int, cell_b: int) -> float:
        """Apply one swap, update all caches, and return the new cost."""
        ...

    def apply_swaps(self, pairs, *, exact_timing: bool = False) -> float:
        """Commit a short swap sequence against the resident state in bulk.

        This is the delta form of the parallel protocol.  With
        ``exact_timing=True`` the evaluator must end in the same state a full
        :meth:`install_solution` of the resulting assignment would produce
        (delta shipment and full shipment are interchangeable), and the
        adoption does not count toward :attr:`evaluations`.  An empty
        sequence is a no-op apart from that exactness guarantee.
        """
        ...

    def undo_swaps(self, pairs) -> float:
        """Reverse a committed swap sequence (a swap is its own inverse).

        ``pairs`` is the same sequence previously applied (via per-swap
        commits or :meth:`apply_swaps`); the evaluator re-applies it in
        reverse order as one bulk update, restoring the prior *assignment*
        exactly.  Incremental cost surrogates may re-accumulate (the scalar
        cost is approximately — not necessarily bit-identically — the prior
        cost), and the reversal does not count toward :attr:`evaluations`.
        The search drivers prefer state-snapshot rewinds (which *are*
        bit-exact and benched faster); this is the protocol's copy-free
        alternative for memory-constrained callers.
        """
        ...

    def install_solution(self, assignment: np.ndarray) -> float:
        """Adopt a whole new assignment and rebuild every cache."""
        ...

    # ---- snapshots ---------------------------------------------------- #
    def snapshot(self) -> np.ndarray:
        """Copy of the current assignment, suitable for message passing."""
        ...

    def save_state(self) -> Any:
        """Opaque snapshot of the full mutable state (cheap array copies)."""
        ...

    def restore_state(self, state: Any) -> None:
        """Rewind to a :meth:`save_state` snapshot (``evaluations`` stays)."""
        ...

    # ---- neighbourhood hooks ------------------------------------------ #
    def diversification_distances(
        self, cell: int, candidates: np.ndarray
    ) -> np.ndarray:
        """How far each candidate item's position is from ``cell``'s.

        The Kelly-style diversification step swaps a rarely-moved item with
        the *farthest* of a handful of sampled partners; "far" is a domain
        notion (Manhattan distance between slots for placement, location
        distance for QAP).  Returns one non-negative float per candidate.
        """
        ...


@runtime_checkable
class SearchProblem(Protocol):
    """Immutable problem description shared by all processes of one run.

    Every process of the parallel search builds its own mutable state
    (evaluator, tabu memory) but refers to the same problem instance; the
    real backends ship it to every spawned worker (once, at spawn time — via
    shared memory when the domain opts in with ``__shm_export__``, see
    :mod:`repro.pvm.shm`).  Instances must be picklable and must compute a
    *reference* cost anchor once so per-worker costs are comparable.
    """

    @property
    def name(self) -> str:
        """Name of the underlying instance (circuits, QAPLIB files, ...)."""
        ...

    @property
    def num_cells(self) -> int:
        """Number of swappable items in a solution."""
        ...

    def make_evaluator(self, assignment: np.ndarray) -> SwapEvaluator:
        """Build a private evaluator for a worker, bound to ``assignment``."""
        ...

    def random_solution(self, seed: int) -> np.ndarray:
        """A deterministic random initial assignment (used by the master)."""
        ...

    # ---- simulated work accounting ------------------------------------ #
    def install_work_units(self) -> float:
        """Work units charged for installing a received full solution."""
        ...

    def adopt_work_units(self, num_swaps: int) -> float:
        """Work units charged for applying a swap-list delta."""
        ...


def ensure_search_problem(obj: Any) -> None:
    """Raise ``TypeError`` unless ``obj`` satisfies :class:`SearchProblem`.

    ``runtime_checkable`` protocols only verify method *presence*; this is
    still the right early guard for the runner and the registry — a missing
    hook fails at entry with a clear message instead of deep inside a worker
    process.
    """
    missing = [
        attr
        for attr in (
            "name",
            "num_cells",
            "make_evaluator",
            "random_solution",
            "install_work_units",
            "adopt_work_units",
        )
        if not hasattr(obj, attr)
    ]
    if missing:
        raise TypeError(
            f"{type(obj).__name__} does not implement SearchProblem: "
            f"missing {', '.join(missing)}"
        )
