"""Problem-domain registry.

The CLI, the examples and the benchmarks select a problem domain by name
(``--problem qap``); this module maps those names to implementations without
the engine importing any domain at module-import time.  Built-in domains are
registered *lazily*: the registry knows the module path and imports it on
first :func:`get_domain`, and the module's import registers a
:class:`ProblemDomain` via :func:`register_domain`.  Third-party domains call
:func:`register_domain` directly.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..errors import ReproError

__all__ = [
    "ProblemDomain",
    "register_domain",
    "get_domain",
    "available_domains",
]


@dataclass(frozen=True)
class ProblemDomain:
    """Everything the generic tooling needs to drive one problem domain.

    Attributes
    ----------
    name:
        Registry key (``"placement"``, ``"qap"``).
    description:
        One-line human description (CLI listings).
    build_problem:
        ``(instance_name, *, cost_params=None, reference_seed=0) ->``
        :class:`~repro.core.protocols.SearchProblem`.  ``instance_name`` is a
        domain-interpreted string — a benchmark circuit, a QAPLIB file path,
        a synthetic-instance spec.
    default_instance:
        Instance used when the caller does not name one.
    list_instances:
        Names of the bundled instances (for ``repro problems``).
    """

    name: str
    description: str
    build_problem: Callable[..., Any]
    default_instance: str
    list_instances: Callable[[], List[str]]


#: Built-in domains, imported on first use.  The module import must call
#: :func:`register_domain`.
_BUILTIN_MODULES: Dict[str, str] = {
    "placement": "repro.problems.placement",
    "qap": "repro.problems.qap",
}

_REGISTRY: Dict[str, ProblemDomain] = {}


def register_domain(domain: ProblemDomain) -> ProblemDomain:
    """Register (or replace) a problem domain under ``domain.name``."""
    _REGISTRY[domain.name] = domain
    return domain


def get_domain(name: str) -> ProblemDomain:
    """Look a domain up by name, importing built-in modules lazily."""
    if name not in _REGISTRY:
        module = _BUILTIN_MODULES.get(name)
        if module is not None:
            importlib.import_module(module)
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(set(_REGISTRY) | set(_BUILTIN_MODULES)))
        raise ReproError(f"unknown problem domain {name!r}; known: {known}") from None


def available_domains() -> List[str]:
    """Names of every known domain (registered or built-in)."""
    return sorted(set(_REGISTRY) | set(_BUILTIN_MODULES))
