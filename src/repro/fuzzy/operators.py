"""Fuzzy aggregation operators.

The fuzzy goal-directed placement cost combines per-objective memberships with
an *ordered-weighted-averaging* (OWA)–style operator, following Sait &
Youssef's "fuzzy and-like" operator:

    mu = beta * min(mu_i) + (1 - beta) * mean(mu_i)

with ``beta`` close to 1 the aggregation behaves like a strict fuzzy AND
(the worst objective dominates); with ``beta`` close to 0 it behaves like an
arithmetic mean (compensatory).  The dual "or-like" operator is also provided
for completeness, together with the classical t-norm / s-norm pairs, so the
fuzzy substrate is usable beyond the placement cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import CostModelError

__all__ = [
    "andlike_owa",
    "orlike_owa",
    "fuzzy_and_min",
    "fuzzy_or_max",
    "product_tnorm",
    "probabilistic_sum",
    "OwaAndLike",
    "OwaOrLike",
]


def _validate_memberships(values: Sequence[float] | np.ndarray) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise CostModelError("fuzzy aggregation requires at least one membership value")
    if np.any(arr < -1e-12) or np.any(arr > 1.0 + 1e-12):
        raise CostModelError(f"membership values must lie in [0, 1], got {arr}")
    return np.clip(arr, 0.0, 1.0)


def andlike_owa(values: Sequence[float] | np.ndarray, beta: float) -> float:
    """And-like OWA: ``beta * min + (1 - beta) * mean``."""
    if not (0.0 <= beta <= 1.0):
        raise CostModelError(f"beta must be in [0, 1], got {beta}")
    arr = _validate_memberships(values)
    return float(beta * arr.min() + (1.0 - beta) * arr.mean())


def orlike_owa(values: Sequence[float] | np.ndarray, beta: float) -> float:
    """Or-like OWA: ``beta * max + (1 - beta) * mean``."""
    if not (0.0 <= beta <= 1.0):
        raise CostModelError(f"beta must be in [0, 1], got {beta}")
    arr = _validate_memberships(values)
    return float(beta * arr.max() + (1.0 - beta) * arr.mean())


def fuzzy_and_min(values: Sequence[float] | np.ndarray) -> float:
    """Zadeh fuzzy AND (minimum t-norm)."""
    return float(_validate_memberships(values).min())


def fuzzy_or_max(values: Sequence[float] | np.ndarray) -> float:
    """Zadeh fuzzy OR (maximum s-norm)."""
    return float(_validate_memberships(values).max())


def product_tnorm(values: Sequence[float] | np.ndarray) -> float:
    """Product t-norm (probabilistic AND)."""
    return float(np.prod(_validate_memberships(values)))


def probabilistic_sum(values: Sequence[float] | np.ndarray) -> float:
    """Probabilistic sum s-norm (``1 - prod(1 - mu_i)``)."""
    return float(1.0 - np.prod(1.0 - _validate_memberships(values)))


@dataclass(frozen=True, slots=True)
class OwaAndLike:
    """Callable and-like OWA operator with a fixed ``beta``."""

    beta: float = 0.7

    def __post_init__(self) -> None:
        if not (0.0 <= self.beta <= 1.0):
            raise CostModelError(f"beta must be in [0, 1], got {self.beta}")

    def __call__(self, values: Sequence[float] | np.ndarray) -> float:
        return andlike_owa(values, self.beta)


@dataclass(frozen=True, slots=True)
class OwaOrLike:
    """Callable or-like OWA operator with a fixed ``beta``."""

    beta: float = 0.7

    def __post_init__(self) -> None:
        if not (0.0 <= self.beta <= 1.0):
            raise CostModelError(f"beta must be in [0, 1], got {self.beta}")

    def __call__(self, values: Sequence[float] | np.ndarray) -> float:
        return orlike_owa(values, self.beta)
