"""Fuzzy membership functions.

The multi-objective placement cost in the paper follows the fuzzy
goal-directed search of Sait, Youssef & Ali: each crisp objective value
(wirelength, delay, area) is mapped to a *membership* in the fuzzy set
"good solution with respect to this objective".  Memberships lie in
``[0, 1]`` with 1 meaning "meets or beats the goal".

This module provides the standard shapes used for that mapping.  They are all
plain callables over floats / NumPy arrays and carry no placement-specific
knowledge, so they double as a small reusable fuzzy-logic substrate (also used
by the goal aggregation in :mod:`repro.fuzzy.goals`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from ..errors import CostModelError

__all__ = [
    "MembershipFunction",
    "DecreasingLinear",
    "IncreasingLinear",
    "Triangular",
    "Trapezoidal",
]

ArrayLike = Union[float, np.ndarray]


class MembershipFunction:
    """Base class: a callable mapping crisp values to memberships in [0, 1]."""

    def __call__(self, value: ArrayLike) -> ArrayLike:  # pragma: no cover - interface
        raise NotImplementedError

    def grade(self, value: float) -> float:
        """Scalar convenience wrapper around :meth:`__call__`."""
        return float(self(float(value)))


@dataclass(frozen=True, slots=True)
class DecreasingLinear(MembershipFunction):
    """Membership 1 below ``low``, 0 above ``high``, linear in between.

    This is the shape used for *minimisation* objectives: a value at or below
    the goal (``low``) is fully satisfactory, a value at or beyond ``high`` is
    completely unsatisfactory.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if not (self.high > self.low):
            raise CostModelError(
                f"DecreasingLinear requires high > low, got low={self.low}, high={self.high}"
            )

    def __call__(self, value: ArrayLike) -> ArrayLike:
        scaled = (self.high - np.asarray(value, dtype=np.float64)) / (self.high - self.low)
        result = np.clip(scaled, 0.0, 1.0)
        return float(result) if np.isscalar(value) else result


@dataclass(frozen=True, slots=True)
class IncreasingLinear(MembershipFunction):
    """Membership 0 below ``low``, 1 above ``high`` (for maximisation goals)."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not (self.high > self.low):
            raise CostModelError(
                f"IncreasingLinear requires high > low, got low={self.low}, high={self.high}"
            )

    def __call__(self, value: ArrayLike) -> ArrayLike:
        scaled = (np.asarray(value, dtype=np.float64) - self.low) / (self.high - self.low)
        result = np.clip(scaled, 0.0, 1.0)
        return float(result) if np.isscalar(value) else result


@dataclass(frozen=True, slots=True)
class Triangular(MembershipFunction):
    """Classic triangular membership peaking at ``peak``."""

    left: float
    peak: float
    right: float

    def __post_init__(self) -> None:
        if not (self.left < self.peak < self.right):
            raise CostModelError(
                f"Triangular requires left < peak < right, got "
                f"({self.left}, {self.peak}, {self.right})"
            )

    def __call__(self, value: ArrayLike) -> ArrayLike:
        v = np.asarray(value, dtype=np.float64)
        up = (v - self.left) / (self.peak - self.left)
        down = (self.right - v) / (self.right - self.peak)
        result = np.clip(np.minimum(up, down), 0.0, 1.0)
        return float(result) if np.isscalar(value) else result


@dataclass(frozen=True, slots=True)
class Trapezoidal(MembershipFunction):
    """Trapezoidal membership: 1 on ``[shoulder_left, shoulder_right]``."""

    left: float
    shoulder_left: float
    shoulder_right: float
    right: float

    def __post_init__(self) -> None:
        if not (self.left < self.shoulder_left <= self.shoulder_right < self.right):
            raise CostModelError(
                "Trapezoidal requires left < shoulder_left <= shoulder_right < right, got "
                f"({self.left}, {self.shoulder_left}, {self.shoulder_right}, {self.right})"
            )

    def __call__(self, value: ArrayLike) -> ArrayLike:
        v = np.asarray(value, dtype=np.float64)
        up = (v - self.left) / (self.shoulder_left - self.left)
        down = (self.right - v) / (self.right - self.shoulder_right)
        result = np.clip(np.minimum(up, down), 0.0, 1.0)
        return float(result) if np.isscalar(value) else result
