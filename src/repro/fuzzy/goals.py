"""Fuzzy goal-directed aggregation of multiple objectives.

A :class:`FuzzyGoal` wraps one crisp minimisation objective with a *goal*
value (the target the designer hopes to reach) and an *upper* value (beyond
which the solution is considered worthless for that objective).  The
membership of a crisp value is 1 at or below the goal and falls linearly to 0
at the upper value.

A :class:`FuzzyGoalAggregator` evaluates a vector of objective values against
its goals and combines the memberships with an and-like OWA operator (see
:mod:`repro.fuzzy.operators`); the scalar *cost* reported to the optimiser is
``1 - membership`` so that lower is better, as the tabu-search machinery
expects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from ..errors import CostModelError
from .membership import DecreasingLinear
from .operators import OwaAndLike

__all__ = ["FuzzyGoal", "FuzzyGoalAggregator"]


@dataclass(frozen=True, slots=True)
class FuzzyGoal:
    """Goal specification for one minimisation objective.

    Attributes
    ----------
    name:
        Objective name (e.g. ``"wirelength"``).
    goal:
        Crisp value considered fully satisfactory (membership 1).
    upper:
        Crisp value considered completely unsatisfactory (membership 0).
    weight:
        Relative importance used by weighted aggregations; must be positive.
    """

    name: str
    goal: float
    upper: float
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.upper <= self.goal:
            raise CostModelError(
                f"goal {self.name!r}: upper ({self.upper}) must exceed goal ({self.goal})"
            )
        if self.weight <= 0:
            raise CostModelError(f"goal {self.name!r}: weight must be positive, got {self.weight}")

    def membership(self, value: float) -> float:
        """Membership of ``value`` in the fuzzy set 'meets this goal'."""
        return DecreasingLinear(self.goal, self.upper).grade(value)

    def membership_many(self, values: np.ndarray) -> np.ndarray:
        """Vectorised membership of an array of crisp values."""
        return DecreasingLinear(self.goal, self.upper)(np.asarray(values, dtype=np.float64))

    @classmethod
    def from_reference(
        cls, name: str, reference: float, *, goal_factor: float, upper_factor: float, weight: float = 1.0
    ) -> "FuzzyGoal":
        """Build a goal from a reference value and multiplicative factors.

        In the placement cost model the reference is the objective value of
        the initial solution: the goal is ``goal_factor * reference`` (e.g.
        0.6 — "reduce wirelength by 40%") and the upper bound is
        ``upper_factor * reference`` (e.g. 1.2 — "anything 20% worse than the
        start is worthless").
        """
        if reference < 0:
            raise CostModelError(f"goal {name!r}: reference must be non-negative, got {reference}")
        if not (0.0 < goal_factor < upper_factor):
            raise CostModelError(
                f"goal {name!r}: need 0 < goal_factor < upper_factor, got "
                f"{goal_factor} and {upper_factor}"
            )
        reference = max(reference, 1e-9)
        return cls(name=name, goal=goal_factor * reference, upper=upper_factor * reference, weight=weight)


class FuzzyGoalAggregator:
    """Combine several :class:`FuzzyGoal` memberships into one scalar cost."""

    def __init__(self, goals: Sequence[FuzzyGoal], *, beta: float = 0.7) -> None:
        if not goals:
            raise CostModelError("FuzzyGoalAggregator requires at least one goal")
        names = [g.name for g in goals]
        if len(set(names)) != len(names):
            raise CostModelError(f"duplicate goal names: {names}")
        self._goals: Tuple[FuzzyGoal, ...] = tuple(goals)
        self._operator = OwaAndLike(beta)
        # Hot-path constants for membership_batch: per-goal linear bounds and
        # weights, precomputed once so the batched swap-evaluation kernel
        # pays no per-call object construction or np.average bookkeeping.
        self._bounds: Tuple[Tuple[float, float], ...] = tuple(
            (g.goal, g.upper) for g in self._goals
        )
        self._weights: Tuple[float, ...] = tuple(g.weight for g in self._goals)
        self._weight_sum = float(
            np.add.reduce(np.array(self._weights, dtype=np.float64))
        )

    @property
    def goals(self) -> Tuple[FuzzyGoal, ...]:
        """The configured goals."""
        return self._goals

    @property
    def names(self) -> Tuple[str, ...]:
        """Objective names in aggregation order."""
        return tuple(g.name for g in self._goals)

    @property
    def beta(self) -> float:
        """OWA and-likeness parameter."""
        return self._operator.beta

    def memberships(self, values: Mapping[str, float]) -> Dict[str, float]:
        """Per-objective memberships for a dict of crisp values."""
        missing = [g.name for g in self._goals if g.name not in values]
        if missing:
            raise CostModelError(f"missing objective values for goals: {missing}")
        return {g.name: g.membership(float(values[g.name])) for g in self._goals}

    def membership(self, values: Mapping[str, float]) -> float:
        """Aggregate membership (1 = all goals met) of a crisp objective vector."""
        mus = self.memberships(values)
        weights = np.array([g.weight for g in self._goals], dtype=np.float64)
        raw = np.array([mus[g.name] for g in self._goals], dtype=np.float64)
        # weight by repeating each membership proportionally in the mean term:
        # OWA over the weighted memberships' expansion is approximated by a
        # weighted mean in the compensatory term while min stays unweighted.
        beta = self._operator.beta
        weighted_mean = float(np.average(raw, weights=weights))
        return float(beta * raw.min() + (1.0 - beta) * weighted_mean)

    def membership_batch(self, values: Mapping[str, np.ndarray]) -> np.ndarray:
        """Aggregate membership of a whole batch of objective vectors at once.

        ``values`` maps each goal name to an equal-length array of crisp
        values; the result is the aggregate membership per batch entry,
        numerically identical to calling :meth:`membership` per entry (same
        operations, applied along an axis).
        """
        missing = [g.name for g in self._goals if g.name not in values]
        if missing:
            raise CostModelError(f"missing objective values for goals: {missing}")
        # Same arithmetic as the stack/np.average formulation (sequential
        # left-to-right reductions, division by the weight sum), fused into
        # a handful of array ops so results stay bit-identical while the
        # per-call dict/stack churn disappears.
        beta = self._operator.beta
        weighted = None
        lowest = None
        for goal, (low, high), weight in zip(self._goals, self._bounds, self._weights):
            scaled = (high - np.asarray(values[goal.name], dtype=np.float64)) / (high - low)
            mu = np.clip(scaled, 0.0, 1.0)
            term = mu * weight
            weighted = term if weighted is None else weighted + term
            lowest = mu if lowest is None else np.minimum(lowest, mu)
        weighted = weighted / self._weight_sum
        return beta * lowest + (1.0 - beta) * weighted

    def cost(self, values: Mapping[str, float]) -> float:
        """Scalar cost in ``[0, 1]``: ``1 - membership`` (lower is better)."""
        return 1.0 - self.membership(values)

    def cost_batch(self, values: Mapping[str, np.ndarray]) -> np.ndarray:
        """Batched scalar cost: ``1 - membership`` per batch entry."""
        return 1.0 - self.membership_batch(values)
