"""Small fuzzy-logic substrate used by the multi-objective placement cost.

Public surface:

* membership functions — :class:`~repro.fuzzy.membership.DecreasingLinear`,
  :class:`~repro.fuzzy.membership.IncreasingLinear`,
  :class:`~repro.fuzzy.membership.Triangular`,
  :class:`~repro.fuzzy.membership.Trapezoidal`;
* aggregation operators — :func:`~repro.fuzzy.operators.andlike_owa` and
  friends;
* goal-directed aggregation — :class:`~repro.fuzzy.goals.FuzzyGoal`,
  :class:`~repro.fuzzy.goals.FuzzyGoalAggregator`.
"""

from .goals import FuzzyGoal, FuzzyGoalAggregator
from .membership import (
    DecreasingLinear,
    IncreasingLinear,
    MembershipFunction,
    Trapezoidal,
    Triangular,
)
from .operators import (
    OwaAndLike,
    OwaOrLike,
    andlike_owa,
    fuzzy_and_min,
    fuzzy_or_max,
    orlike_owa,
    probabilistic_sum,
    product_tnorm,
)

__all__ = [
    "FuzzyGoal",
    "FuzzyGoalAggregator",
    "MembershipFunction",
    "DecreasingLinear",
    "IncreasingLinear",
    "Triangular",
    "Trapezoidal",
    "OwaAndLike",
    "OwaOrLike",
    "andlike_owa",
    "orlike_owa",
    "fuzzy_and_min",
    "fuzzy_or_max",
    "product_tnorm",
    "probabilistic_sum",
]
