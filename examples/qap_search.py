#!/usr/bin/env python
"""Quadratic assignment on the full parallel stack — a second problem domain.

The domain-agnostic core (:mod:`repro.core`) lets the same serial engine and
the same master/TSW/CLW parallel machinery search *any* problem that exposes
swap moves over a permutation.  This example drives the QAP domain through
both entry points:

1. write a synthetic instance to disk in **QAPLIB format** and read it back
   (exactly how a real QAPLIB ``.dat`` file would be loaded),
2. run the **serial** tabu search on it,
3. run the **parallel** search with 4 TSWs on the simulated heterogeneous
   cluster — delta-encoded solution shipping included, identical to the
   placement workload.

Run it with::

    python examples/qap_search.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    ParallelSearchParams,
    TabuSearch,
    TabuSearchParams,
    TerminationCriteria,
    run_parallel_search,
)
from repro.metrics import format_mapping
from repro.problems.qap import (
    QAPProblem,
    generate_qap,
    read_qaplib,
    write_qaplib,
)


def main() -> None:
    # ---- a QAPLIB instance on disk ------------------------------------
    # (generate_qap stands in for downloading e.g. nug30 from the archive;
    # any real QAPLIB .dat file loads the same way)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "rand48.dat"
        write_qaplib(generate_qap(48, seed=1), path)
        instance = read_qaplib(path)
    print(f"Instance {instance.name}: n = {instance.n}, "
          f"symmetric = {instance.is_symmetric}")

    problem = QAPProblem.from_instance(instance, reference_seed=0)

    # ---- serial run ----------------------------------------------------
    evaluator = problem.make_evaluator(problem.random_solution(seed=7))
    initial_raw = evaluator.raw_cost()
    search = TabuSearch(
        evaluator,
        TabuSearchParams(tabu_tenure=8, pairs_per_step=6, move_depth=3),
        seed=1,
    )
    serial = search.run(TerminationCriteria(max_iterations=80))
    print(
        format_mapping(
            {
                "initial flow cost": initial_raw,
                "best flow cost": serial.best_cost * evaluator.reference_cost,
                "iterations": serial.iterations,
                "swap evaluations": serial.evaluations,
            },
            title="\nSerial tabu search",
        )
    )

    # ---- parallel run: 4 TSWs on the simulated paper cluster -----------
    params = ParallelSearchParams(
        num_tsws=4,
        clws_per_tsw=2,
        global_iterations=4,
        tabu=TabuSearchParams(local_iterations=6, pairs_per_step=6, move_depth=3),
        seed=2003,
    )
    result = run_parallel_search(problem=problem, params=params)
    print(
        format_mapping(
            {
                "initial cost": result.initial_cost,
                "best cost": result.best_cost,
                "improvement": f"{result.improvement * 100:.1f} %",
                "best flow cost": result.best_objectives.flow_cost,
                "virtual runtime (s)": result.virtual_runtime,
                "messages": result.sim_stats.total_messages,
                "wire bytes": result.sim_stats.total_bytes,
            },
            title="\nParallel tabu search (4 TSWs x 2 CLWs, simulated cluster)",
        )
    )


if __name__ == "__main__":
    main()
