#!/usr/bin/env python
"""Heterogeneous versus homogeneous synchronisation (the Figure 11 experiment).

Runs the same 4 TSW x 4 CLW parallel search twice on the paper's
twelve-machine cluster (7 fast, 3 medium, 2 slow workstations):

* once with the *heterogeneous* strategy — a parent asks its remaining
  children to report as soon as half of them are done, and
* once with the *homogeneous* strategy — every parent waits for all children.

It then prints virtual runtime, final quality and the best-cost-versus-time
trace of both runs, which is exactly the comparison of Figure 11.

Run it with::

    python examples/heterogeneous_cluster.py [circuit]
"""

from __future__ import annotations

import sys

from repro import (
    ParallelSearchParams,
    TabuSearchParams,
    build_problem,
    load_benchmark,
    paper_cluster,
    run_parallel_search,
)
from repro.metrics import CostTrace, format_table


def main(circuit: str = "c532") -> None:
    netlist = load_benchmark(circuit)
    cluster = paper_cluster()
    print(f"Circuit: {circuit} ({netlist.num_cells} cells)")
    print(f"Cluster: {cluster.num_machines} machines {cluster.speed_summary()}")

    shared = dict(
        num_tsws=4,
        clws_per_tsw=4,
        global_iterations=4,
        tabu=TabuSearchParams(local_iterations=8, pairs_per_step=5, move_depth=3),
        seed=2003,
    )
    base_params = ParallelSearchParams(sync_mode="heterogeneous", **shared)
    problem = build_problem(netlist, base_params)

    results = {}
    for mode in ("heterogeneous", "homogeneous"):
        params = ParallelSearchParams(sync_mode=mode, **shared)
        print(f"\nRunning {mode} synchronisation ...")
        results[mode] = run_parallel_search(netlist, params, cluster=cluster, problem=problem)

    print()
    print(
        format_table(
            ["sync mode", "virtual runtime (s)", "best cost", "improvement"],
            [
                (mode, run.virtual_runtime, run.best_cost, run.improvement)
                for mode, run in results.items()
            ],
            title="Figure 11 style comparison",
        )
    )

    # sample both traces on a common time grid for a side-by-side view
    longest = max(run.virtual_runtime for run in results.values())
    grid = [round(longest * step / 8.0, 4) for step in range(1, 9)]
    rows = []
    traces = {
        mode: CostTrace.from_pairs(run.trace, label=mode) for mode, run in results.items()
    }
    for moment in grid:
        rows.append(
            (
                moment,
                traces["heterogeneous"].cost_at(moment),
                traces["homogeneous"].cost_at(moment),
            )
        )
    print()
    print(
        format_table(
            ["virtual time (s)", "heterogeneous best cost", "homogeneous best cost"],
            rows,
            title="Best cost versus runtime",
        )
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "c532")
