#!/usr/bin/env python
"""Serial tabu search on a single machine (Figure 1 of the paper).

This example uses only the placement substrate and the serial tabu-search
engine — no cluster, no worker processes — which makes it the easiest place
to see the algorithmic building blocks: the fuzzy multi-objective cost, the
candidate list, compound moves, the tabu list and the aspiration criterion.

Run it with::

    python examples/serial_tabu_search.py
"""

from __future__ import annotations

from repro import (
    CostEvaluator,
    Layout,
    TabuSearch,
    TabuSearchParams,
    TerminationCriteria,
    load_benchmark,
    random_placement,
)
from repro.metrics import format_series, format_table


def main() -> None:
    netlist = load_benchmark("highway")
    layout = Layout(netlist)
    placement = random_placement(layout, seed=7)
    evaluator = CostEvaluator(placement)

    print(f"Circuit {netlist.name}: {netlist.num_cells} cells, {netlist.num_nets} nets")
    print(f"Layout: {layout.num_rows} rows x {layout.slots_per_row} slots")
    print(f"Initial fuzzy cost: {evaluator.cost():.4f}")
    print(
        format_table(
            ["objective", "initial value", "membership"],
            [
                (name, getattr(evaluator.objectives(), name), membership)
                for name, membership in evaluator.memberships().items()
            ],
            title="\nInitial objectives",
        )
    )

    params = TabuSearchParams(
        tabu_tenure=7,
        pairs_per_step=6,
        move_depth=3,
        aspiration="best",
    )
    search = TabuSearch(evaluator, params, seed=1)
    result = search.run(TerminationCriteria(max_iterations=60))

    print(f"\nAfter {result.iterations} iterations "
          f"({result.evaluations} swap evaluations):")
    print(f"  best cost  : {result.best_cost:.4f}")
    print(f"  tabu list  : {len(search.tabu_list)} active attributes")

    # print every 10th trace point: (iteration, evaluations, cost, best)
    sampled = result.trace[::10]
    print()
    print(
        format_series(
            [point[0] for point in sampled],
            [point[3] for point in sampled],
            x_label="iteration",
            y_label="best cost",
            title="Convergence (every 10th iteration)",
        )
    )

    print("\nFinal objectives:")
    final = evaluator.objectives()
    print(f"  wirelength = {final.wirelength:.1f}")
    print(f"  delay      = {final.delay:.2f}")
    print(f"  area       = {final.area:.1f}")


if __name__ == "__main__":
    main()
