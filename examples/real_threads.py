#!/usr/bin/env python
"""Running the same master/TSW/CLW protocol on real OS threads.

Every experiment in this repository uses the deterministic discrete-event
cluster because (a) the paper's findings are about behaviour under machine
heterogeneity, which the simulator reproduces exactly, and (b) CPython's GIL
makes wall-clock speedups of a pure-Python thread pool meaningless.

This example demonstrates that the *process code itself* is backend-agnostic:
the identical generator-based master, TSW and CLW bodies run unchanged on the
:class:`~repro.pvm.ThreadKernel`, exchanging messages through real
thread-safe mailboxes.  Compare the solution quality (equivalent) and note
that the wall-clock times should *not* be interpreted as speedup.  For real
multi-core speedups see ``examples/real_processes.py`` and the
``processes`` backend.

Run it with::

    python examples/real_threads.py
"""

from __future__ import annotations

import time

from repro import (
    ParallelSearchParams,
    TabuSearchParams,
    homogeneous_cluster,
    load_benchmark,
    run_parallel_search,
)
from repro.metrics import format_table


def main() -> None:
    netlist = load_benchmark("c532")
    params = ParallelSearchParams(
        num_tsws=2,
        clws_per_tsw=2,
        global_iterations=3,
        tabu=TabuSearchParams(local_iterations=6, pairs_per_step=5, move_depth=3),
        seed=7,
    )

    rows = []
    for backend in ("simulated", "threads"):
        start = time.perf_counter()
        result = run_parallel_search(
            netlist,
            params,
            backend=backend,  # type: ignore[arg-type]
            cluster=homogeneous_cluster(6),
        )
        wall = time.perf_counter() - start
        rows.append(
            (
                backend,
                result.best_cost,
                result.improvement,
                result.virtual_runtime if backend == "simulated" else float("nan"),
                wall,
            )
        )

    print(
        format_table(
            ["backend", "best cost", "improvement", "virtual runtime (s)", "wall clock (s)"],
            rows,
            title=(
                "Same protocol, two kernels (wall-clock of the threads backend is "
                "GIL-bound and not a speedup measurement)"
            ),
        )
    )


if __name__ == "__main__":
    main()
