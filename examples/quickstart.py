#!/usr/bin/env python
"""Quickstart: run the parallel tabu search on one of the paper's circuits.

This example places the ``c532`` benchmark (395 cells) with the paper's
default configuration — 4 Tabu Search Workers, each feeding on 2 Candidate
List Workers — on the simulated twelve-machine heterogeneous cluster, and
prints the outcome: best fuzzy cost, the three crisp objectives, the
best-cost-versus-virtual-time trace and the Crainic-taxonomy classification
of the configuration.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ParallelSearchParams,
    TabuSearchParams,
    classify,
    load_benchmark,
    paper_cluster,
    run_parallel_search,
)
from repro.metrics import format_mapping, format_series


def main() -> None:
    netlist = load_benchmark("c532")
    stats = netlist.stats()
    print(f"Circuit {netlist.name}: {stats.num_cells} cells, {stats.num_nets} nets, "
          f"{stats.num_pins} pins")

    params = ParallelSearchParams(
        num_tsws=4,
        clws_per_tsw=2,
        global_iterations=4,
        sync_mode="heterogeneous",
        tabu=TabuSearchParams(local_iterations=8, pairs_per_step=5, move_depth=3),
        seed=2003,
    )
    print("\nTaxonomy of this configuration (Section 4.3 of the paper):")
    print("  " + classify(params).describe())

    print("\nRunning the parallel tabu search on the 12-machine simulated cluster...")
    result = run_parallel_search(netlist, params, cluster=paper_cluster())

    print(
        format_mapping(
            {
                "initial cost": result.initial_cost,
                "best cost": result.best_cost,
                "improvement": f"{result.improvement * 100:.1f} %",
                "wirelength": result.best_objectives.wirelength,
                "critical-path delay": result.best_objectives.delay,
                "area": result.best_objectives.area,
                "virtual runtime (s)": result.virtual_runtime,
                "wall-clock (s)": result.wall_clock_seconds,
                "processes": result.sim_stats.num_processes,
                "messages": result.sim_stats.total_messages,
            },
            title="\nRun summary",
        )
    )

    # show the coarse trace (one point per global iteration)
    records = result.global_records
    print()
    print(
        format_series(
            [record.index for record in records],
            [record.best_cost_after for record in records],
            x_label="global iteration",
            y_label="best cost",
            title="Best cost per global iteration",
        )
    )


if __name__ == "__main__":
    main()
