#!/usr/bin/env python
"""Running the master/TSW/CLW protocol on real OS processes.

The discrete-event cluster is the reference backend for the paper's
experiments (deterministic, virtual time, exact heterogeneity), and the
thread backend shows the protocol is kernel-agnostic — but only the
``processes`` backend executes the workers on separate cores, outside the
GIL, so its wall-clock times are real parallel speedups.  On a multi-core
machine the processes run should finish its (N times larger) total search
workload in far less than N times the simulated-equivalent serial time; see
``benchmarks/bench_wallclock_parallel.py`` for the measured speedup curve.

The ``multiprocessing`` spawn context re-imports this module in every worker,
so everything must live under the ``__main__`` guard.

Run it with::

    python examples/real_processes.py
"""

from __future__ import annotations

import os
import time

from repro import (
    ParallelSearchParams,
    TabuSearchParams,
    homogeneous_cluster,
    load_benchmark,
    run_parallel_search,
)
from repro.metrics import format_table


def main() -> None:
    netlist = load_benchmark("c532")
    params = ParallelSearchParams(
        num_tsws=2,
        clws_per_tsw=1,
        global_iterations=2,
        sync_mode="homogeneous",
        tabu=TabuSearchParams(
            local_iterations=40, pairs_per_step=128, move_depth=4, early_accept=False
        ),
        seed=7,
    )

    rows = []
    for backend in ("simulated", "processes"):
        start = time.perf_counter()
        result = run_parallel_search(
            netlist,
            params,
            backend=backend,  # type: ignore[arg-type]
            cluster=homogeneous_cluster(6),
        )
        wall = time.perf_counter() - start
        rows.append(
            (
                backend,
                result.best_cost,
                result.improvement,
                result.virtual_runtime if backend == "simulated" else float("nan"),
                wall,
            )
        )

    print(
        format_table(
            ["backend", "best cost", "improvement", "virtual runtime (s)", "wall clock (s)"],
            rows,
            title=(
                f"Same protocol, simulated vs real processes "
                f"({os.cpu_count()} cores; wall clock includes process spawn)"
            ),
        )
    )


if __name__ == "__main__":
    main()
