#!/usr/bin/env python
"""Placing a user-defined circuit with a customised cost model.

The paper's flow is not tied to the four ISCAS-89 benchmarks: any netlist can
be placed.  This example shows the two ways to obtain one —

* building a small design by hand with :class:`~repro.placement.NetlistBuilder`
  (a 4-bit ripple-carry-adder-like structure), and
* generating a synthetic circuit of arbitrary size with
  :class:`~repro.placement.CircuitSpec`,

and then runs the parallel search with a cost model that weights timing much
more heavily than wirelength (a "performance-driven" placement).

Run it with::

    python examples/custom_circuit.py
"""

from __future__ import annotations

from repro import (
    CostModelParams,
    ParallelSearchParams,
    TabuSearchParams,
    run_parallel_search,
)
from repro.metrics import format_mapping
from repro.placement import CellKind, CircuitSpec, NetlistBuilder, generate_circuit


def build_ripple_adder(bits: int = 4):
    """A tiny hand-built ripple-carry adder netlist (2 gates per bit)."""
    builder = NetlistBuilder(f"rca{bits}")
    carry = None
    for bit in range(bits):
        a = f"a{bit}"
        b = f"b{bit}"
        builder.add_cell(a, kind=CellKind.PRIMARY_INPUT, delay=0.0)
        builder.add_cell(b, kind=CellKind.PRIMARY_INPUT, delay=0.0)
        xor_gate = f"xor{bit}"
        maj_gate = f"maj{bit}"
        builder.add_cell(xor_gate, delay=1.2, width=2.0)
        builder.add_cell(maj_gate, delay=1.5, width=2.5)
        sum_pad = f"s{bit}"
        builder.add_cell(sum_pad, kind=CellKind.PRIMARY_OUTPUT, delay=0.0)
        builder.add_net(f"na{bit}", driver=a, sinks=[xor_gate, maj_gate])
        builder.add_net(f"nb{bit}", driver=b, sinks=[xor_gate, maj_gate])
        if carry is not None:
            builder.add_net(f"nc{bit}", driver=carry, sinks=[xor_gate, maj_gate])
        builder.add_net(f"ns{bit}", driver=xor_gate, sinks=[sum_pad])
        carry = maj_gate
    builder.add_cell("cout", kind=CellKind.PRIMARY_OUTPUT, delay=0.0)
    builder.add_net("ncout", driver=carry, sinks=["cout"])
    return builder.build()


def main() -> None:
    # -- a hand-built netlist ------------------------------------------------
    adder = build_ripple_adder(bits=4)
    stats = adder.stats()
    print(f"Hand-built circuit {adder.name}: {stats.num_cells} cells, "
          f"{stats.num_nets} nets, {stats.num_primary_inputs} PIs, "
          f"{stats.num_primary_outputs} POs")

    # -- a generated circuit of arbitrary size -------------------------------
    custom = generate_circuit(
        CircuitSpec(name="custom300", num_cells=300, seed=7, avg_fanin=2.5, locality=0.8)
    )
    print(f"Generated circuit {custom.name}: {custom.num_cells} cells, "
          f"{custom.num_nets} nets")

    # -- a timing-driven cost model -------------------------------------------
    timing_driven = CostModelParams(
        wire_weight=1.0,
        delay_weight=3.0,
        area_weight=1.0,
        delay_goal_factor=0.6,
        beta=0.8,
    )
    params = ParallelSearchParams(
        num_tsws=3,
        clws_per_tsw=2,
        global_iterations=3,
        cost=timing_driven,
        tabu=TabuSearchParams(local_iterations=6, pairs_per_step=5, move_depth=3),
        seed=42,
    )

    for netlist in (adder, custom):
        print(f"\nPlacing {netlist.name} with a timing-driven fuzzy cost ...")
        result = run_parallel_search(netlist, params)
        print(
            format_mapping(
                {
                    "initial cost": result.initial_cost,
                    "best cost": result.best_cost,
                    "wirelength": result.best_objectives.wirelength,
                    "critical-path delay": result.best_objectives.delay,
                    "area": result.best_objectives.area,
                    "virtual runtime (s)": result.virtual_runtime,
                },
                title=f"{netlist.name} results",
            )
        )


if __name__ == "__main__":
    main()
