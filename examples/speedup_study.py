#!/usr/bin/env python
"""Speedup study: time-to-quality versus the degree of parallelisation.

Reproduces a small version of Figures 6 and 8: it sweeps the number of CLWs
(low-level parallelisation) and the number of TSWs (high-level
parallelisation) on one circuit, computes the paper's non-deterministic
speedup ``t(1, x) / t(n, x)`` for a quality target every configuration
reaches, and prints both curves.

Run it with::

    python examples/speedup_study.py [circuit]
"""

from __future__ import annotations

import sys

from repro import (
    CostTrace,
    ParallelSearchParams,
    TabuSearchParams,
    build_problem,
    load_benchmark,
    paper_cluster,
    run_parallel_search,
    speedup_curve,
)
from repro.metrics import format_table


def sweep(netlist, *, vary: str, counts, seed: int = 2003):
    """Run the search for every worker count and return traces keyed by count."""
    cluster = paper_cluster()
    shared = dict(
        global_iterations=4,
        tabu=TabuSearchParams(local_iterations=8, pairs_per_step=5, move_depth=3),
        seed=seed,
    )
    reference_params = ParallelSearchParams(num_tsws=4, clws_per_tsw=1, **shared)
    problem = build_problem(netlist, reference_params)
    traces = {}
    for count in counts:
        if vary == "clws":
            params = ParallelSearchParams(num_tsws=4, clws_per_tsw=count, **shared)
        else:
            params = ParallelSearchParams(num_tsws=count, clws_per_tsw=1, **shared)
        run = run_parallel_search(netlist, params, cluster=cluster, problem=problem)
        traces[count] = CostTrace.from_pairs(run.trace, label=f"{vary}={count}")
        print(f"  {vary}={count}: best cost {run.best_cost:.4f}, "
              f"virtual runtime {run.virtual_runtime:.3f}s")
    return traces


def print_curve(title: str, traces) -> None:
    points = speedup_curve(traces, baseline_workers=min(traces))
    print()
    print(
        format_table(
            ["workers", "time to target (s)", "speedup"],
            [(p.workers, p.time, p.speedup) for p in points],
            title=f"{title} (target cost <= {points[0].threshold:.4f})",
        )
    )


def main(circuit: str = "c532") -> None:
    netlist = load_benchmark(circuit)
    print(f"Circuit {circuit}: {netlist.num_cells} cells\n")

    print("Sweeping the number of CLWs per TSW (low-level parallelisation):")
    clw_traces = sweep(netlist, vary="clws", counts=(1, 2, 3, 4))
    print_curve("Speedup vs number of CLWs (4 TSWs)", clw_traces)

    print("\nSweeping the number of TSWs (high-level parallelisation):")
    tsw_traces = sweep(netlist, vary="tsws", counts=(1, 2, 4, 6, 8))
    print_curve("Speedup vs number of TSWs (1 CLW per TSW)", tsw_traces)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "c532")
