#!/usr/bin/env python
"""Per-iteration cost of the tabu iteration driver on c532 and rand100 QAP.

PR 1 made trial evaluation cheap and PR 3 made commits/installs cheap, but a
serial tabu iteration still cost ~13-15 ms on c532 — the Python-object
driver *around* the kernels (2·m scalar RNG draws per step, per-swap
commit/record loops, dict-and-tuple tabu bookkeeping, rewind-and-recommit
accepts) had become the bottleneck every TSW/CLW inherits.  PR 5 vectorized
the driver end-to-end (array-backed tabu memory, bulk candidate sampling,
fused step-1 scoring, masked selection, end-state accepts); this benchmark
measures the result and guards it:

* **ms/iteration** — serial tabu iterations at the heavy reference workload
  (m = 256 candidate pairs per step, full depth d = 6, no early accept) for
  both the vectorized and the reference (dict oracle) driver;
* **driver-overhead ratio** — iteration time divided by the pure
  batch-evaluation time of the same trial volume (d standalone 256-pair
  ``evaluate_swaps_batch`` calls).  A ratio near 1 means the driver adds
  almost nothing on top of the kernels it schedules;
* **rewind strategies** — snapshot restore versus reverse ``undo_swaps``
  for a compound-move-sized rewind (documents why the driver jumps through
  ``save_state``/``restore_state`` tokens).

Results land in ``BENCH_driver.json`` (override with ``BENCH_DRIVER_JSON``);
CI uploads the file per run.  Enforced bars (each overridable by env var,
retried once against runner noise):

* serial vectorized iteration on c532 <= 7 ms (``REPRO_DRIVER_SERIAL_BAR_MS``;
  the dev-environment target is <= 5 ms — CI runners get headroom);
* driver-overhead ratio <= 3x on both instances
  (``REPRO_DRIVER_OVERHEAD_RATIO``).

Run it directly::

    PYTHONPATH=src python benchmarks/bench_iteration_driver.py
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro import (
    ParallelSearchParams,
    TabuSearch,
    TabuSearchParams,
    TerminationCriteria,
    load_benchmark,
)
from repro.core import get_domain
from repro.parallel import build_problem

PAIRS_PER_STEP = 256
MOVE_DEPTH = 6
SEED = 2003
WARMUP_ITERATIONS = 15
MEASURED_ITERATIONS = 60
SERIAL_BAR_MS = float(os.environ.get("REPRO_DRIVER_SERIAL_BAR_MS", "7"))
OVERHEAD_RATIO_BAR = float(os.environ.get("REPRO_DRIVER_OVERHEAD_RATIO", "3"))
OUTPUT = Path(os.environ.get("BENCH_DRIVER_JSON", "BENCH_driver.json"))


def _tabu_params(driver: str, iterations: int) -> TabuSearchParams:
    return TabuSearchParams(
        local_iterations=iterations,
        pairs_per_step=PAIRS_PER_STEP,
        move_depth=MOVE_DEPTH,
        early_accept=False,
        driver=driver,
    )


def _ms_per_iteration(problem, driver: str) -> float:
    evaluator = problem.make_evaluator(problem.random_solution(SEED))
    search = TabuSearch(
        evaluator,
        _tabu_params(driver, WARMUP_ITERATIONS + MEASURED_ITERATIONS),
        seed=SEED,
    )
    search.run(TerminationCriteria(max_iterations=WARMUP_ITERATIONS), record_trace=False)
    start = time.perf_counter()
    search.run(
        TerminationCriteria(max_iterations=WARMUP_ITERATIONS + MEASURED_ITERATIONS),
        record_trace=False,
    )
    return (time.perf_counter() - start) / MEASURED_ITERATIONS * 1e3


def _batch_eval_ms(problem) -> float:
    """Pure kernel cost of one iteration's trial volume (d full batches)."""
    evaluator = problem.make_evaluator(problem.random_solution(SEED))
    rng = np.random.default_rng(7)
    pairs = rng.integers(0, evaluator.num_cells, size=(PAIRS_PER_STEP, 2))
    for _ in range(20):
        evaluator.evaluate_swaps_batch(pairs)
    repeats = 100
    start = time.perf_counter()
    for _ in range(repeats):
        evaluator.evaluate_swaps_batch(pairs)
    per_batch = (time.perf_counter() - start) / repeats * 1e3
    return per_batch * MOVE_DEPTH


def _rewind_ms(problem) -> dict:
    """Snapshot-restore versus reverse-apply rewind of a depth-6 move."""
    evaluator = problem.make_evaluator(problem.random_solution(SEED))
    rng = np.random.default_rng(8)
    pairs = rng.integers(0, evaluator.num_cells, size=(MOVE_DEPTH, 2))
    pairs = pairs[pairs[:, 0] != pairs[:, 1]]

    def snapshot_rewind():
        state = evaluator.save_state()
        evaluator.apply_swaps(pairs)
        evaluator.restore_state(state)

    def undo_rewind():
        evaluator.apply_swaps(pairs)
        evaluator.undo_swaps(pairs)

    def timed(func, repeats=60, warmup=10):
        for _ in range(warmup):
            func()
        start = time.perf_counter()
        for _ in range(repeats):
            func()
        return (time.perf_counter() - start) / repeats * 1e3

    return {
        "snapshot_rewind_ms": timed(snapshot_rewind),
        "undo_swaps_rewind_ms": timed(undo_rewind),
    }


def measure_instance(name: str, problem) -> dict:
    vectorized_ms = _ms_per_iteration(problem, "vectorized")
    reference_ms = _ms_per_iteration(problem, "reference")
    batch_ms = _batch_eval_ms(problem)
    result = {
        "instance": name,
        "pairs_per_step": PAIRS_PER_STEP,
        "move_depth": MOVE_DEPTH,
        "vectorized_ms_per_iter": vectorized_ms,
        "reference_ms_per_iter": reference_ms,
        "batch_eval_ms_per_iter": batch_ms,
        "driver_overhead_ratio": vectorized_ms / batch_ms,
    }
    result.update(_rewind_ms(problem))
    return result


def measure() -> dict:
    placement_problem = build_problem(load_benchmark("c532"), ParallelSearchParams())
    qap_problem = get_domain("qap").build_problem("rand100", reference_seed=0)
    return {
        "c532": measure_instance("c532", placement_problem),
        "rand100": measure_instance("rand100", qap_problem),
    }


def _passes(results: dict) -> bool:
    serial_ok = results["c532"]["vectorized_ms_per_iter"] <= SERIAL_BAR_MS
    ratio_ok = all(
        results[name]["driver_overhead_ratio"] <= OVERHEAD_RATIO_BAR
        for name in results
    )
    return serial_ok and ratio_ok


def main() -> int:
    attempts = []
    for _attempt in range(2):  # one retry against runner noise
        results = measure()
        attempts.append(results)
        if _passes(results):
            break

    # prefer an attempt that clears every bar; only fall back to the
    # fastest attempt when none passed (so the retry can actually rescue
    # a noisy first run)
    best = next(
        (r for r in attempts if _passes(r)),
        min(attempts, key=lambda r: r["c532"]["vectorized_ms_per_iter"]),
    )
    payload = {
        "bar": {
            "serial_ms_max_c532": SERIAL_BAR_MS,
            "driver_overhead_ratio_max": OVERHEAD_RATIO_BAR,
        },
        "results": best,
        "attempts": len(attempts),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2))

    for name, row in best.items():
        print(f"{name} (m={PAIRS_PER_STEP}, d={MOVE_DEPTH}, no early accept):")
        for key, value in row.items():
            if isinstance(value, float):
                print(f"  {key:>26}: {value:.3f}")
            else:
                print(f"  {key:>26}: {value}")
    print(f"Results written to {OUTPUT}")

    failed = False
    if best["c532"]["vectorized_ms_per_iter"] > SERIAL_BAR_MS:
        print(
            f"FAIL: c532 serial iteration "
            f"{best['c532']['vectorized_ms_per_iter']:.2f} ms > "
            f"{SERIAL_BAR_MS:.1f} ms bar",
            file=sys.stderr,
        )
        failed = True
    for name, row in best.items():
        if row["driver_overhead_ratio"] > OVERHEAD_RATIO_BAR:
            print(
                f"FAIL: {name} driver overhead "
                f"{row['driver_overhead_ratio']:.2f}x > "
                f"{OVERHEAD_RATIO_BAR:.1f}x batch-eval bar",
                file=sys.stderr,
            )
            failed = True
    if failed:
        return 1
    print(
        f"OK: c532 {best['c532']['vectorized_ms_per_iter']:.2f} ms/iter "
        f"(bar {SERIAL_BAR_MS:.1f}), overhead ratios "
        + ", ".join(
            f"{name} {row['driver_overhead_ratio']:.2f}x" for name, row in best.items()
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
