"""Figure 7 — effect of the number of TSWs on solution quality.

Paper setup: 1–8 TSWs, one CLW each, all four circuits.  Expected shape:
quality improves (cost drops) as TSWs are added up to roughly four, with
little or no further benefit beyond that.
"""

from __future__ import annotations

from _utils import run_once

from repro.experiments import fig7_tsw_quality


def test_fig7_tsw_quality(benchmark, figure_reporter):
    result = run_once(benchmark, fig7_tsw_quality)
    figure_reporter(result)

    quality = result.data["quality"]
    for circuit, per_tsw in quality.items():
        assert all(0.0 < cost < 1.0 for cost in per_tsw.values()), circuit
        # four TSWs should not be worse than a single TSW (the paper's claim
        # that high-level parallelisation helps, up to its saturation point)
        assert min(per_tsw[k] for k in per_tsw if k >= 4) <= per_tsw[1] + 0.02, circuit
    # adding TSWs beyond 4 brings little benefit: the best cost among 5..8
    # TSWs is not dramatically better than the best among 1..4.  The tiny
    # ``highway`` circuit is excluded — with 56 cells its run-to-run noise at
    # the quick scale exceeds the effect being measured.
    from repro.placement import load_benchmark

    for circuit, per_tsw in quality.items():
        if load_benchmark(circuit).num_cells < 300:
            continue
        best_low = min(cost for workers, cost in per_tsw.items() if workers <= 4)
        best_high = min(cost for workers, cost in per_tsw.items() if workers > 4)
        assert best_high >= best_low - 0.08, circuit
