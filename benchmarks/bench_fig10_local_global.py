"""Figure 10 — trade-off between global and local iterations.

Paper setup: total work (global x local iterations) held constant while the
split varies.  The paper's conclusion is that *no general rule* exists — the
best split depends on the circuit.  Expected shape here: every configuration
produces a valid result, the spread across splits is modest compared to the
overall improvement, and the winning split is not the same for all circuits
(or the spread is small enough to be circuit noise).
"""

from __future__ import annotations

from _utils import run_once

from repro.experiments import fig10_local_vs_global


def test_fig10_local_vs_global(benchmark, figure_reporter):
    result = run_once(benchmark, fig10_local_vs_global)
    figure_reporter(result)

    per_circuit = result.data["per_circuit"]
    winners = set()
    for circuit, outcomes in per_circuit.items():
        assert all(0.0 < cost < 1.0 for cost in outcomes.values()), circuit
        # constant total work per combination (up to the rounding of the split)
        totals = {g * l for (g, l) in outcomes}
        assert max(totals) <= 1.15 * min(totals)
        winners.add(min(outcomes, key=outcomes.get))
        spread = max(outcomes.values()) - min(outcomes.values())
        assert spread < 0.25, f"{circuit}: split changes outcome implausibly much"
    # "no general conclusion can be made": the best split is not universal,
    # unless the costs are so close that every split is effectively tied
    all_spreads = [
        max(outcomes.values()) - min(outcomes.values()) for outcomes in per_circuit.values()
    ]
    assert len(winners) > 1 or max(all_spreads) < 0.05
