"""Ablation — fuzzy goal-based aggregation versus a plain weighted sum.

The paper motivates the fuzzy goal-directed cost for the multi-objective
placement problem.  This ablation runs the same parallel search with the
fuzzy aggregation and with a normalised weighted sum, then compares the crisp
objectives (wirelength, delay, area) of the final solutions.  The expected
observation is that both cost models steer the search to solutions that
improve every crisp objective relative to the initial placement, i.e. the
parallel-search machinery is not tied to the fuzzy cost — while the fuzzy
model balances the three objectives rather than letting one dominate.
"""

from __future__ import annotations

from _utils import RESULTS_DIR, run_once

from repro.experiments import current_scale, params_for_circuit
from repro.metrics import format_table
from repro.parallel import build_problem, run_parallel_search
from repro.placement import CostModelParams, load_benchmark

CIRCUIT = "c532"


def sweep_cost_model():
    scale = current_scale()
    netlist = load_benchmark(CIRCUIT)
    rows = []
    outcomes = {}
    for label, aggregation in (("fuzzy", "fuzzy"), ("weighted sum", "weighted_sum")):
        base = params_for_circuit(CIRCUIT, scale, num_tsws=4, clws_per_tsw=2)
        params = base.with_(cost=CostModelParams(aggregation=aggregation))
        problem = build_problem(netlist, params)
        run = run_parallel_search(netlist, params, problem=problem)
        reference = problem.reference
        objectives = run.best_objectives
        outcomes[label] = (run, reference)
        rows.append(
            (
                label,
                objectives.wirelength / reference.wirelength,
                objectives.delay / reference.delay,
                objectives.area / reference.area,
            )
        )
    table = format_table(
        ["cost model", "wirelength ratio", "delay ratio", "area ratio"],
        rows,
        title=(
            f"{CIRCUIT}: final crisp objectives relative to the initial solution "
            "(lower is better)"
        ),
    )
    return outcomes, table


def test_ablation_cost_model(benchmark):
    outcomes, table = run_once(benchmark, sweep_cost_model)
    print()
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_cost_model.txt").write_text(table + "\n", encoding="utf-8")

    for label, (run, reference) in outcomes.items():
        objectives = run.best_objectives
        # both cost models reduce wirelength clearly and never blow up the
        # other two objectives
        assert objectives.wirelength < reference.wirelength, label
        assert objectives.delay < reference.delay * 1.1, label
        assert objectives.area <= reference.area * 1.1, label
