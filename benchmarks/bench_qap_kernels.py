#!/usr/bin/env python
"""QAP kernel benchmark and smoke gate for the domain-agnostic core.

Measures the QAP evaluator's hot kernels on a 100-facility instance and
enforces the CI bar that justifies running QAP through the batched CLW path:

* **batch swap-delta >= 20x scalar** — one 256-pair ``evaluate_swaps_batch``
  call versus 256 scalar ``evaluate_swap`` calls (each scalar call is itself
  the O(n) delta, so the factor isolates the batching win, exactly like the
  placement micro-bench); overridable with ``REPRO_QAP_BATCH_BAR``;
* informational latencies for ``commit_swap``, bulk ``apply_swaps`` delta
  adoption, full ``install_solution`` and the from-scratch O(n^2) cost.

Results land in ``BENCH_qap.json`` (override with the ``BENCH_QAP_JSON``
env var); CI uploads the file per run.  The bar retries once against runner
noise.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_qap_kernels.py
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.parallel.delta import swap_list_between
from repro.problems.qap import QAPProblem, generate_qap

N_FACILITIES = 100
BATCH_SIZE = 256
BATCH_BAR = float(os.environ.get("REPRO_QAP_BATCH_BAR", "20"))
OUTPUT = Path(os.environ.get("BENCH_QAP_JSON", "BENCH_qap.json"))


def _time_us(func, repeats: int, warmup: int = 10) -> float:
    for _ in range(warmup):
        func()
    start = time.perf_counter()
    for _ in range(repeats):
        func()
    return (time.perf_counter() - start) / repeats * 1e6


def build_evaluator():
    problem = QAPProblem.from_instance(
        generate_qap(N_FACILITIES, seed=0), reference_seed=0
    )
    return problem, problem.make_evaluator(problem.random_solution(seed=1))


def measure() -> dict:
    problem, evaluator = build_evaluator()
    rng = np.random.default_rng(2)
    pairs = rng.integers(0, N_FACILITIES, size=(BATCH_SIZE, 2))

    batch_us = _time_us(lambda: evaluator.evaluate_swaps_batch(pairs), repeats=50)

    def scalar_sweep():
        for cell_a, cell_b in pairs.tolist():
            evaluator.evaluate_swap(cell_a, cell_b)

    scalar_sweep_us = _time_us(scalar_sweep, repeats=5, warmup=2)
    scalar_us = scalar_sweep_us / BATCH_SIZE
    speedup = scalar_sweep_us / batch_us

    state = {"i": 0}
    commit_pairs = rng.integers(0, N_FACILITIES, size=(512, 2)).tolist()

    def commit():
        cell_a, cell_b = commit_pairs[state["i"] % len(commit_pairs)]
        state["i"] += 1
        evaluator.commit_swap(cell_a, cell_b)

    commit_us = _time_us(commit, repeats=200)

    base = evaluator.snapshot()
    target = base.copy()
    for cell_a, cell_b in rng.integers(0, N_FACILITIES, size=(6, 2)).tolist():
        target[[cell_a, cell_b]] = target[[cell_b, cell_a]]
    delta = swap_list_between(base, target)

    def adopt():
        evaluator.apply_swaps(delta, exact_timing=True)
        evaluator.install_solution(base)

    adopt_pair_us = _time_us(adopt, repeats=50)
    install_us = _time_us(lambda: evaluator.install_solution(base), repeats=100)
    scratch_us = _time_us(lambda: problem.instance.cost_of(base), repeats=200)

    return {
        "n_facilities": N_FACILITIES,
        "batch_size": BATCH_SIZE,
        "batch_eval_us": batch_us,
        "batch_eval_us_per_pair": batch_us / BATCH_SIZE,
        "scalar_eval_us": scalar_us,
        "batch_speedup_vs_scalar": speedup,
        "commit_swap_us": commit_us,
        "delta_adopt_plus_install_us": adopt_pair_us,
        "install_solution_us": install_us,
        "scratch_cost_us": scratch_us,
    }


def main() -> int:
    attempts = []
    for attempt in range(2):  # one retry against runner noise
        results = measure()
        attempts.append(results)
        if results["batch_speedup_vs_scalar"] >= BATCH_BAR:
            break

    best = max(attempts, key=lambda r: r["batch_speedup_vs_scalar"])
    payload = {
        "bar": {"batch_speedup_min": BATCH_BAR},
        "results": best,
        "attempts": len(attempts),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2))

    print(f"QAP kernels on a {N_FACILITIES}-facility instance "
          f"({BATCH_SIZE}-pair batches):")
    for key, value in best.items():
        print(f"  {key:>28}: {value:.2f}" if isinstance(value, float)
              else f"  {key:>28}: {value}")
    print(f"Results written to {OUTPUT}")

    if best["batch_speedup_vs_scalar"] < BATCH_BAR:
        print(f"FAIL: batch swap-delta speedup "
              f"{best['batch_speedup_vs_scalar']:.1f}x < {BATCH_BAR:.0f}x bar",
              file=sys.stderr)
        return 1
    print(f"OK: batch swap-delta {best['batch_speedup_vs_scalar']:.1f}x >= "
          f"{BATCH_BAR:.0f}x scalar")
    return 0


if __name__ == "__main__":
    sys.exit(main())
