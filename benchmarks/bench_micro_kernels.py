"""Micro-benchmarks of the hot kernels underneath the experiments.

Unlike the figure benchmarks (one long run each), these use pytest-benchmark's
normal repeated timing, so regressions in the incremental cost evaluation, the
full-circuit evaluation or the discrete-event kernel show up directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.placement import CostEvaluator, Layout, load_benchmark, random_placement
from repro.placement.timing import TimingAnalyzer
from repro.placement.wirelength import full_hpwl
from repro.pvm import SimKernel, homogeneous_cluster


@pytest.fixture(scope="module")
def c532_evaluator():
    layout = Layout(load_benchmark("c532"))
    return CostEvaluator(random_placement(layout, seed=1))


def test_bench_trial_swap_evaluation(benchmark, c532_evaluator):
    """Cost of one trial swap evaluation on c532 (the innermost CLW operation)."""
    rng = np.random.default_rng(0)
    n = c532_evaluator.placement.num_cells
    pairs = [(int(a), int(b)) for a, b in rng.integers(0, n, size=(256, 2))]
    state = {"i": 0}

    def trial():
        a, b = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return c532_evaluator.evaluate_swap(a, b)

    benchmark(trial)


def test_bench_batch_swap_evaluation(benchmark, c532_evaluator):
    """One 256-pair batched evaluation on c532 (the CLW's step-level kernel).

    The acceptance bar for the batched engine is ≥ 5× over 256 scalar
    ``evaluate_swap`` calls; compare against ``test_bench_trial_swap_evaluation``
    (which times one scalar trial) — this whole 256-pair batch should cost
    well under 256 of those.
    """
    rng = np.random.default_rng(2)
    n = c532_evaluator.placement.num_cells
    pairs = rng.integers(0, n, size=(256, 2))

    result = benchmark(c532_evaluator.evaluate_swaps_batch, pairs)
    assert result.shape == (256,)


def test_bench_commit_swap(benchmark, c532_evaluator):
    """Cost of committing a swap (placement update + all incremental caches)."""
    rng = np.random.default_rng(1)
    n = c532_evaluator.placement.num_cells
    pairs = [(int(a), int(b)) for a, b in rng.integers(0, n, size=(256, 2))]
    state = {"i": 0}

    def commit():
        a, b = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return c532_evaluator.commit_swap(a, b)

    benchmark(commit)


def test_bench_full_hpwl_c3540(benchmark):
    """Vectorised full-circuit HPWL on the largest paper circuit."""
    layout = Layout(load_benchmark("c3540"))
    placement = random_placement(layout, seed=2)
    benchmark(full_hpwl, placement)


def test_bench_exact_sta_c3540(benchmark):
    """Exact static timing analysis on the largest paper circuit."""
    netlist = load_benchmark("c3540")
    layout = Layout(netlist)
    placement = random_placement(layout, seed=3)
    analyzer = TimingAnalyzer(netlist)
    benchmark(analyzer.analyze, placement)


def test_bench_simkernel_message_round_trips(benchmark):
    """Throughput of the discrete-event kernel on a ping-pong workload."""

    def child(ctx):
        while True:
            message = yield ctx.recv()
            if message.tag == "stop":
                return None
            yield ctx.send(message.src, "pong", message.payload)

    def parent(ctx, rounds):
        child_pid = yield ctx.spawn(child, name="child")
        for index in range(rounds):
            yield ctx.send(child_pid, "ping", index)
            yield ctx.recv(tag="pong")
        yield ctx.send(child_pid, "stop")
        return rounds

    def run_kernel():
        kernel = SimKernel(homogeneous_cluster(2))
        pid = kernel.spawn(parent, 200, name="parent")
        kernel.run()
        return kernel.result_of(pid)

    assert benchmark(run_kernel) == 200
