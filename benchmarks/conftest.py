"""Shared infrastructure for the figure-reproduction benchmarks.

Every benchmark regenerates one figure of the paper on the simulated
twelve-machine cluster, prints the series the paper plots and writes it to
``benchmarks/results/<figure>.txt`` so the numbers quoted in EXPERIMENTS.md
can be re-derived with a single ``pytest benchmarks/ --benchmark-only`` run.

The amount of work is controlled by the ``REPRO_EXPERIMENT_SCALE`` environment
variable (``quick`` — the default, a few minutes for the whole suite — or
``full``).  Because a figure run is itself a long, internally-repeating
experiment, every benchmark executes exactly one round
(``benchmark.pedantic`` with ``rounds=1``); the interesting output is the
figure data, the benchmark timing is simply the wall-clock cost of
regenerating it.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make the sibling `_utils` module importable regardless of how pytest was
# invoked (repository root, benchmarks directory, ...).
_BENCH_DIR = str(Path(__file__).parent)
if _BENCH_DIR not in sys.path:
    sys.path.insert(0, _BENCH_DIR)

from _utils import report_figure  # noqa: E402


@pytest.fixture
def figure_reporter():
    """Callable that prints a FigureResult and saves it under results/."""
    return report_figure
