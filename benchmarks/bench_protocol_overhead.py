#!/usr/bin/env python
"""Per-iteration overhead of the parallel protocol on c532.

PR 1 made trial evaluation cheap and PR 2 made the search truly parallel;
what bounded the speedup afterwards was *everything around* the search:
full-solution pickles on every hop, full cache rebuilds on every install and
a ~200 µs commit.  PR 3 attacked exactly that (delta protocol, resident
solutions, incremental installs, in-place commits, shared-memory problem
shipping); this benchmark measures the result and guards it:

* **wire bytes** — pickled size of every solution-bearing message in full
  and delta form, plus the byte accounting of a whole simulated run;
* **kernel latencies** — ``commit_swap``, delta adoption via
  ``apply_swaps``, full ``install_solution`` and the exact STA;
* **path cost** — wall-clock milliseconds one parallel search path spends
  per local iteration (serial ms/iter is the lower bound; the gap is the
  protocol overhead).  Two parallel runs of different lengths give a
  steady-state estimate with the process spawn/join fixed cost cancelled
  out.

Results land in ``BENCH_protocol.json`` (override with the
``BENCH_PROTOCOL_JSON`` env var); CI uploads the file per run.  Enforced
bars (each overridable by env var, retried once against runner noise):

* ``commit_swap``  <= 60 µs absolute, OR <= 0.08x the 256-pair batch
  evaluation (machine-speed calibration: the seed ratio was ~0.23) —
  ``REPRO_PROTOCOL_COMMIT_BAR_US`` / ``REPRO_PROTOCOL_COMMIT_BAR_RATIO``
* steady-state path cost <= 17 ms/iter with 4 TSWs
  (``REPRO_PROTOCOL_PATH_BAR_MS``, enforced on runners with >= 4 cores only,
  like the wall-clock bar)
* protocol overhead (path cost minus serial ms/iter, measured in the same
  window so machine throttling cancels) <= 5 ms/iter
  (``REPRO_PROTOCOL_OVERHEAD_BAR_MS``, enforced on every runner)

Run it directly (the spawn context requires the ``__main__`` guard)::

    PYTHONPATH=src python benchmarks/bench_protocol_overhead.py
"""

from __future__ import annotations

import json
import os
import pickle
import sys
import time
from pathlib import Path

import numpy as np

from repro import (
    ParallelSearchParams,
    TabuSearch,
    TabuSearchParams,
    TerminationCriteria,
    homogeneous_cluster,
    load_benchmark,
    run_parallel_search,
)
from repro.parallel import build_problem
from repro.parallel.delta import DeltaEncoder, swap_list_between
from repro.parallel.messages import ClwTask, GlobalStart

CIRCUIT = "c532"
SEED = 2003
COMMIT_BAR_US = float(os.environ.get("REPRO_PROTOCOL_COMMIT_BAR_US", "60"))
COMMIT_BAR_RATIO = float(os.environ.get("REPRO_PROTOCOL_COMMIT_BAR_RATIO", "0.08"))
PATH_BAR_MS = float(os.environ.get("REPRO_PROTOCOL_PATH_BAR_MS", "17"))
OVERHEAD_BAR_MS = float(os.environ.get("REPRO_PROTOCOL_OVERHEAD_BAR_MS", "5"))


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _time_us(func, repeats: int, warmup: int = 20) -> float:
    for _ in range(warmup):
        func()
    start = time.perf_counter()
    for _ in range(repeats):
        func()
    return (time.perf_counter() - start) / repeats * 1e6


def measure_wire_bytes(problem) -> dict:
    """Pickled bytes of the protocol's solution-bearing messages."""
    rng = np.random.default_rng(1)
    solution = problem.random_solution(SEED)
    target = solution.copy()
    for _ in range(4):  # one accepted compound move worth of change
        cell_a, cell_b = rng.integers(0, solution.size, size=2)
        target[[cell_a, cell_b]] = target[[cell_b, cell_a]]

    encoder = DeltaEncoder()
    full_payload = encoder.encode(0, solution, version=0)
    delta_payload = encoder.encode(0, target, version=1)
    legacy_task = len(pickle.dumps(ClwTask(round_id=1, solution=solution)))
    full_task = len(pickle.dumps(ClwTask(round_id=1, solution=full_payload)))
    delta_task = len(pickle.dumps(ClwTask(round_id=2, solution=delta_payload)))
    legacy_start = len(
        pickle.dumps(GlobalStart(global_iteration=0, solution=solution))
    )
    full_start = len(
        pickle.dumps(GlobalStart(global_iteration=0, solution=full_payload))
    )
    return {
        "clw_task_legacy_full_int64": legacy_task,
        "clw_task_full_int32": full_task,
        "clw_task_delta_4_swaps": delta_task,
        "global_start_legacy_full_int64": legacy_start,
        "global_start_full_int32": full_start,
        "delta_vs_legacy_ratio": legacy_task / delta_task,
    }


def measure_simulated_run_bytes(netlist) -> dict:
    """Byte accounting of a whole simulated parallel run (delta protocol)."""
    params = ParallelSearchParams(
        num_tsws=2,
        clws_per_tsw=2,
        global_iterations=3,
        tabu=TabuSearchParams(local_iterations=5, pairs_per_step=8, move_depth=3),
        seed=7,
    )
    result = run_parallel_search(netlist, params, backend="simulated")
    stats = result.sim_stats
    local_iterations = params.global_iterations * params.tabu.local_iterations
    return {
        "total_messages": stats.total_messages,
        "total_bytes": stats.total_bytes,
        "bytes_per_local_iteration": stats.total_bytes / local_iterations,
        "best_cost": result.best_cost,
    }


def measure_kernel_latencies(problem) -> dict:
    """Microsecond costs of the install/commit path on c532."""
    evaluator = problem.make_evaluator(problem.random_solution(SEED))
    rng = np.random.default_rng(2)
    n = problem.num_cells
    pairs = [(int(a), int(b)) for a, b in rng.integers(0, n, size=(512, 2))]
    state = {"i": 0}

    def commit():
        cell_a, cell_b = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        evaluator.commit_swap(cell_a, cell_b)

    commit_us = min(_time_us(commit, 2000) for _ in range(2))
    # machine-speed calibration: the PR 1 batch kernel is the stable yardstick
    batch_pairs = rng.integers(0, n, size=(256, 2))

    def batch():
        evaluator.evaluate_swaps_batch(batch_pairs)

    batch_us = min(_time_us(batch, 150, warmup=4) for _ in range(2))

    base = evaluator.snapshot()
    target = base.copy()
    for cell_a, cell_b in pairs[:6]:
        target[[cell_a, cell_b]] = target[[cell_b, cell_a]]
    delta = swap_list_between(base, target)
    back = swap_list_between(target, base)
    flips = {"forward": True}

    def adopt_delta():
        evaluator.apply_swaps(delta if flips["forward"] else back, exact_timing=True)
        flips["forward"] = not flips["forward"]

    adopt_us = min(_time_us(adopt_delta, 200, warmup=4) for _ in range(2))

    other = problem.random_solution(SEED + 1)
    current = {"flip": False}

    def install_full():
        current["flip"] = not current["flip"]
        evaluator.install_solution(other if current["flip"] else base)

    install_us = min(_time_us(install_full, 200, warmup=4) for _ in range(2))
    sta_us = min(
        _time_us(lambda: evaluator._timing.exact_delay(), 300, warmup=4)
        for _ in range(2)
    )
    return {
        "commit_swap_us": commit_us,
        "batch_eval_256_us": batch_us,
        "commit_vs_batch_ratio": commit_us / batch_us,
        "delta_adopt_6_swaps_us": adopt_us,
        "install_solution_full_us": install_us,
        "exact_sta_us": sta_us,
    }


def measure_path_cost(problem, netlist, iterations: int, num_tsws: int) -> dict:
    """Wall-clock ms one parallel path spends per local iteration.

    The parallel run puts ``2 * num_tsws + 1`` processes on the available
    cores; with full utilisation the per-path-iteration cost is
    ``t_parallel * min(cpus, procs) / (num_tsws * iterations)``.  Process
    spawn/join is a fixed cost independent of the iteration count, so two
    runs of different lengths isolate the steady-state slope:
    ``(t_long - t_short) / (iters_long - iters_short)``.
    """
    global_iterations = 3
    short_locals = max(1, iterations // (6 * global_iterations))
    long_locals = max(short_locals + 1, iterations // global_iterations)
    tabu = dict(pairs_per_step=256, move_depth=6, early_accept=False)

    serial_iterations = global_iterations * long_locals
    evaluator = problem.make_evaluator(problem.random_solution(SEED))
    search = TabuSearch(
        evaluator,
        TabuSearchParams(local_iterations=serial_iterations, **tabu),
        seed=SEED,
    )
    start = time.perf_counter()
    search.run(TerminationCriteria(max_iterations=serial_iterations))
    serial_seconds = time.perf_counter() - start
    serial_ms = serial_seconds / serial_iterations * 1e3

    def run_parallel(local_iterations):
        params = ParallelSearchParams(
            num_tsws=num_tsws,
            clws_per_tsw=1,
            global_iterations=global_iterations,
            sync_mode="homogeneous",
            diversify=False,
            tabu=TabuSearchParams(local_iterations=local_iterations, **tabu),
            seed=SEED,
        )
        start = time.perf_counter()
        result = run_parallel_search(
            netlist,
            params,
            backend="processes",
            cluster=homogeneous_cluster(2 * num_tsws + 1),
            problem=problem,
            join_timeout=3600.0,
        )
        assert result.best_cost < result.initial_cost
        return time.perf_counter() - start

    cpus = _available_cpus()
    effective_cores = min(cpus, 2 * num_tsws + 1)

    def measure_once():
        short_seconds = run_parallel(short_locals)
        long_seconds = run_parallel(long_locals)
        slope = (long_seconds - short_seconds) / (
            global_iterations * (long_locals - short_locals)
        )
        return short_seconds, long_seconds, slope * effective_cores / num_tsws * 1e3

    short_seconds, long_seconds, path_ms = measure_once()
    attempts = 1
    over_absolute = path_ms > PATH_BAR_MS and cpus >= 4
    over_relative = path_ms - serial_ms > OVERHEAD_BAR_MS
    if over_absolute or over_relative:
        # one retry against noisy neighbours, keep the better run
        retry = measure_once()
        attempts = 2
        if retry[2] < path_ms:
            short_seconds, long_seconds, path_ms = retry
    inclusive_ms = (
        long_seconds * effective_cores / (num_tsws * global_iterations * long_locals) * 1e3
    )
    return {
        "iterations_per_path": global_iterations * long_locals,
        "num_tsws": num_tsws,
        "cpu_count": cpus,
        "effective_cores": effective_cores,
        "serial_ms_per_iter": serial_ms,
        "parallel_seconds_short": short_seconds,
        "parallel_seconds_long": long_seconds,
        "parallel_path_ms_per_iter": path_ms,
        "parallel_path_ms_per_iter_with_spawn": inclusive_ms,
        "overhead_ms_per_iter": path_ms - serial_ms,
        "attempts": attempts,
    }


def run_benchmark() -> dict:
    netlist = load_benchmark(CIRCUIT)
    params = ParallelSearchParams(tabu=TabuSearchParams(), seed=SEED)
    problem = build_problem(netlist, params)
    iterations = int(os.environ.get("REPRO_PROTOCOL_ITERS", "300"))
    report = {
        "circuit": CIRCUIT,
        "wire_bytes": measure_wire_bytes(problem),
        "simulated_run": measure_simulated_run_bytes(netlist),
        "latencies": measure_kernel_latencies(problem),
        "path_cost": measure_path_cost(problem, netlist, iterations, num_tsws=4),
        "bars": {
            "commit_swap_us": COMMIT_BAR_US,
            "commit_vs_batch_ratio": COMMIT_BAR_RATIO,
            "path_ms_per_iter": PATH_BAR_MS,
            "overhead_ms_per_iter": OVERHEAD_BAR_MS,
        },
    }
    return report


def main() -> int:
    report = run_benchmark()
    out_path = Path(os.environ.get("BENCH_PROTOCOL_JSON", "BENCH_protocol.json"))
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {out_path}")

    failures = []
    commit_us = report["latencies"]["commit_swap_us"]
    commit_ratio = report["latencies"]["commit_vs_batch_ratio"]
    if commit_us > COMMIT_BAR_US and commit_ratio > COMMIT_BAR_RATIO:
        # a throttled runner slows both kernels alike, so a real regression
        # must fail the absolute bar AND the machine-calibrated ratio
        failures.append(
            f"commit_swap {commit_us:.1f} us exceeds the {COMMIT_BAR_US:.0f} us bar "
            f"and its batch-calibrated ratio {commit_ratio:.3f} exceeds "
            f"{COMMIT_BAR_RATIO:.3f} (seed: ~0.23)"
        )
    path = report["path_cost"]
    if path["cpu_count"] >= 4 and path["parallel_path_ms_per_iter"] > PATH_BAR_MS:
        failures.append(
            f"parallel path cost {path['parallel_path_ms_per_iter']:.1f} ms/iter "
            f"exceeds the {PATH_BAR_MS:.0f} ms bar on a {path['cpu_count']}-core machine"
        )
    elif path["cpu_count"] < 4:
        print(
            f"note: only {path['cpu_count']} core(s) available — the "
            f"{PATH_BAR_MS:.0f} ms/iter path bar was not enforced"
        )
    if path["overhead_ms_per_iter"] > OVERHEAD_BAR_MS:
        failures.append(
            f"protocol overhead {path['overhead_ms_per_iter']:.1f} ms/iter "
            f"exceeds the {OVERHEAD_BAR_MS:.0f} ms bar (path "
            f"{path['parallel_path_ms_per_iter']:.1f} vs serial "
            f"{path['serial_ms_per_iter']:.1f})"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def test_protocol_overhead():
    """Pytest entry point (not collected by default: bench_* naming)."""
    assert main() == 0


if __name__ == "__main__":
    sys.exit(main())
