"""Ablation — the early-report threshold of the heterogeneous synchronisation.

The paper fixes the threshold at one half ("once half of them complete all
assigned iterations").  This ablation sweeps the fraction and reports virtual
runtime and final quality, showing the trade-off the choice embodies: lower
fractions interrupt earlier (faster, potentially less exploration), a fraction
of 1.0 degenerates into the homogeneous strategy.
"""

from __future__ import annotations

from _utils import RESULTS_DIR, run_once

from repro.experiments import current_scale, params_for_circuit, run_configuration
from repro.metrics import format_table
from repro.parallel import build_problem
from repro.placement import load_benchmark
from repro.pvm import paper_cluster

CIRCUIT = "c532"
FRACTIONS = (0.25, 0.5, 0.75, 1.0)


def sweep_report_fraction():
    scale = current_scale()
    cluster = paper_cluster()
    base = params_for_circuit(CIRCUIT, scale, num_tsws=4, clws_per_tsw=4)
    problem = build_problem(load_benchmark(CIRCUIT), base)
    rows = []
    outcomes = {}
    for fraction in FRACTIONS:
        params = base.with_(report_fraction=fraction)
        run = run_configuration(CIRCUIT, params, cluster=cluster, problem=problem)
        outcomes[fraction] = run
        rows.append((fraction, run.virtual_runtime, run.best_cost, run.improvement))
    table = format_table(
        ["report fraction", "virtual runtime (s)", "best cost", "improvement"],
        rows,
        title=f"{CIRCUIT}: early-report threshold sweep (4 TSWs x 4 CLWs, paper cluster)",
    )
    return outcomes, table


def test_ablation_sync_fraction(benchmark):
    outcomes, table = run_once(benchmark, sweep_report_fraction)
    print()
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_sync_fraction.txt").write_text(table + "\n", encoding="utf-8")

    # interrupting earlier can only shorten (or keep) the virtual runtime
    assert outcomes[0.25].virtual_runtime <= outcomes[1.0].virtual_runtime + 1e-9
    # quality stays within a narrow band across the sweep
    costs = [run.best_cost for run in outcomes.values()]
    assert max(costs) - min(costs) < 0.15
