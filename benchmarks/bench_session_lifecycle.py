#!/usr/bin/env python
"""Session lifecycle latency: warm-pool submits vs cold startups on processes.

PR 7 split worker lifecycle from run lifecycle: a :class:`repro.WorkerPool`
keeps the TSW/CLW process tree (and the kernel's shared-memory exports)
alive across consecutive searches, so a warm submit only spawns the master
and ships ``SETUP`` messages, while a cold :func:`repro.run_parallel_search`
pays kernel construction plus one OS-process spawn per worker every time.
This benchmark puts a number on that split and on the checkpoint codec.

Method
------
* **Cold** — ``REPRO_SESSION_REPEATS`` one-shot
  ``run_parallel_search(..., backend="processes")`` calls on a deliberately
  small c532 workload (startup-dominated); best (minimum) wall time wins.
* **Warm** — one :class:`~repro.session.WorkerPool` (spawn time reported
  separately), then the same number of :class:`~repro.session.SearchSession`
  runs against it.  The worker pids must be stable across runs (no respawn)
  and, since the workload pins ``sync_mode="homogeneous"``, every run must
  reproduce the cold best cost exactly.
* **Checkpoint codec** — a simulated session is stepped one global
  iteration, checkpointed, and restored: artifact size plus encode / save /
  load+restore times, and the resumed run must finish bit-identical to an
  uninterrupted session.

Results are written to ``BENCH_session.json`` (override with the
``BENCH_SESSION_JSON`` env var); CI uploads the file per run.  The enforced
bar: the best warm submit must be at least 3x faster than the best cold
startup (the measurement section gets one retry, mirroring the wall-clock
benchmark — shared runners have noisy neighbours).

Environment knobs:

* ``REPRO_SESSION_TSWS``    — TSW count (default ``4``, 1 CLW each)
* ``REPRO_SESSION_REPEATS`` — cold/warm runs measured (default ``3``)
* ``REPRO_SESSION_BAR``     — warm-vs-cold speedup bar (default ``3.0``)

Run it directly (the spawn context requires the ``__main__`` guard)::

    PYTHONPATH=src python benchmarks/bench_session_lifecycle.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro import (
    ParallelSearchParams,
    SearchSession,
    SessionState,
    TabuSearchParams,
    WorkerPool,
    homogeneous_cluster,
    load_benchmark,
    run_parallel_search,
)
from repro.parallel import build_problem

CIRCUIT = "c532"
SEED = 2003
#: Acceptance: warm submit >= 3x faster than cold startup (overridable for
#: slower/noisier environments).
WARM_BAR = float(os.environ.get("REPRO_SESSION_BAR", "3.0"))


def _available_cpus() -> int:
    """CPUs actually available to this process (cgroup/affinity aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _params(num_tsws: int) -> ParallelSearchParams:
    # Small, startup-dominated workload: the search itself takes a fraction
    # of a second, so the cold/warm gap isolates lifecycle overhead.
    # Homogeneous sync makes every run's decisions timing-independent, which
    # lets the benchmark assert warm runs reproduce the cold best exactly.
    return ParallelSearchParams(
        num_tsws=num_tsws,
        clws_per_tsw=1,
        global_iterations=2,
        sync_mode="homogeneous",
        diversify=False,
        tabu=TabuSearchParams(local_iterations=10, pairs_per_step=64, move_depth=3),
        seed=SEED,
    )


def measure_lifecycle(netlist, problem, params, cluster, repeats):
    """Time `repeats` cold one-shot runs and `repeats` warm pooled runs."""
    cold_seconds = []
    cold_best = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_parallel_search(
            netlist,
            params,
            backend="processes",
            cluster=cluster,
            problem=problem,
        )
        cold_seconds.append(time.perf_counter() - start)
        cold_best = result.best_cost

    pool_start = time.perf_counter()
    pool = WorkerPool(
        params.num_tsws, params.clws_per_tsw, backend="processes", cluster=cluster
    )
    pool_spawn_seconds = time.perf_counter() - pool_start
    warm_seconds = []
    pids_stable = True
    try:
        pids_before = pool.tsw_pids
        for _ in range(repeats):
            session = SearchSession(problem=problem, params=params, pool=pool)
            start = time.perf_counter()
            result = session.run()
            warm_seconds.append(time.perf_counter() - start)
            # same seed + homogeneous sync: the pooled run must walk the
            # same trajectory as the cold one-shot run
            assert result.best_cost == cold_best, (result.best_cost, cold_best)
        pids_stable = pool.tsw_pids == pids_before
        runs_served = pool.runs_served
    finally:
        pool.close()
    return {
        "cold_seconds_all": cold_seconds,
        "cold_seconds": min(cold_seconds),
        "pool_spawn_seconds": pool_spawn_seconds,
        "warm_seconds_all": warm_seconds,
        "warm_seconds": min(warm_seconds),
        "warm_vs_cold": min(cold_seconds) / min(warm_seconds),
        "runs_served": runs_served,
        "pids_stable": pids_stable,
        "best_cost": cold_best,
    }


def measure_checkpoint(problem, params):
    """Checkpoint-codec cost on a simulated mid-run session."""
    session = SearchSession(problem=problem, params=params, backend="simulated")
    session.step(1)
    state = session.checkpoint()

    encode_start = time.perf_counter()
    blob = state.to_bytes()
    encode_ms = (time.perf_counter() - encode_start) * 1e3

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "session.ckpt"
        save_start = time.perf_counter()
        state.save(path)
        save_ms = (time.perf_counter() - save_start) * 1e3

        restore_start = time.perf_counter()
        resumed = SearchSession.restore(SessionState.load(path))
        load_restore_ms = (time.perf_counter() - restore_start) * 1e3
        resumed_result = resumed.run()

    uninterrupted = SearchSession(
        problem=problem, params=params, backend="simulated"
    ).run()
    identical = bool(resumed_result.best_cost == uninterrupted.best_cost)
    assert identical, (resumed_result.best_cost, uninterrupted.best_cost)
    return {
        "size_bytes": len(blob),
        "encode_ms": encode_ms,
        "save_ms": save_ms,
        "load_restore_ms": load_restore_ms,
        "resume_bit_identical": identical,
    }


def run_benchmark(num_tsws, repeats):
    netlist = load_benchmark(CIRCUIT)
    params = _params(num_tsws)
    problem = build_problem(netlist, params)
    cluster = homogeneous_cluster(2 * num_tsws + 1)

    lifecycle = measure_lifecycle(netlist, problem, params, cluster, repeats)
    attempts = 1
    # One retry, mirroring bench_wallclock_parallel.py: a transient dip on a
    # noisy shared runner must not read as a lifecycle regression.
    if lifecycle["warm_vs_cold"] < WARM_BAR:
        retry = measure_lifecycle(netlist, problem, params, cluster, repeats)
        attempts = 2
        if retry["warm_vs_cold"] > lifecycle["warm_vs_cold"]:
            lifecycle = retry
    lifecycle["attempts"] = attempts
    print(
        f"cold start: {lifecycle['cold_seconds']:6.2f} s   "
        f"warm submit: {lifecycle['warm_seconds']:6.2f} s   "
        f"(pool spawn {lifecycle['pool_spawn_seconds']:.2f} s, "
        f"{lifecycle['runs_served']} runs served, "
        f"pids stable: {lifecycle['pids_stable']})"
    )
    print(f"warm vs cold: {lifecycle['warm_vs_cold']:.2f}x")

    checkpoint = measure_checkpoint(problem, params)
    print(
        f"checkpoint : {checkpoint['size_bytes']} bytes, "
        f"encode {checkpoint['encode_ms']:.2f} ms, save {checkpoint['save_ms']:.2f} ms, "
        f"load+restore {checkpoint['load_restore_ms']:.2f} ms, "
        f"resume bit-identical: {checkpoint['resume_bit_identical']}"
    )

    return {
        "circuit": CIRCUIT,
        "backend": "processes",
        "cpu_count": _available_cpus(),
        "topology": {"num_tsws": num_tsws, "clws_per_tsw": 1},
        "workload": {
            "global_iterations": params.global_iterations,
            "local_iterations": params.tabu.local_iterations,
            "pairs_per_step": params.tabu.pairs_per_step,
            "move_depth": params.tabu.move_depth,
            "sync_mode": params.sync_mode,
            "repeats": repeats,
        },
        "lifecycle": lifecycle,
        "checkpoint": checkpoint,
        "bar": WARM_BAR,
    }


def main() -> int:
    num_tsws = int(os.environ.get("REPRO_SESSION_TSWS", "4"))
    repeats = int(os.environ.get("REPRO_SESSION_REPEATS", "3"))
    report = run_benchmark(num_tsws, repeats)

    out_path = Path(os.environ.get("BENCH_SESSION_JSON", "BENCH_session.json"))
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")

    lifecycle = report["lifecycle"]
    failed = False
    if lifecycle["warm_vs_cold"] < WARM_BAR:
        print(
            f"FAIL: warm submit only {lifecycle['warm_vs_cold']:.2f}x faster "
            f"than cold startup (bar: {WARM_BAR}x)",
            file=sys.stderr,
        )
        failed = True
    else:
        print(f"warm-start speedup {lifecycle['warm_vs_cold']:.2f}x >= {WARM_BAR}x bar")
    if not lifecycle["pids_stable"]:
        print("FAIL: worker pids changed across warm runs (respawn)", file=sys.stderr)
        failed = True
    if not report["checkpoint"]["resume_bit_identical"]:
        print("FAIL: resumed run diverged from uninterrupted run", file=sys.stderr)
        failed = True
    return 1 if failed else 0


def test_session_lifecycle():
    """Pytest entry point (not collected by default: bench_* naming)."""
    assert main() == 0


if __name__ == "__main__":
    sys.exit(main())
