"""Figure 9 — effect of the TSW diversification step.

Paper setup: 4 TSWs, 1 CLW each, identical runs except that one performs the
range-restricted diversification at the start of every global iteration and
the other does not.  Expected shape: the diversified run ends with a better
(or at worst equal) cost on most circuits.
"""

from __future__ import annotations

from _utils import run_once

from repro.experiments import fig9_diversification


def test_fig9_diversification(benchmark, figure_reporter):
    result = run_once(benchmark, fig9_diversification)
    figure_reporter(result)

    per_circuit = result.data["per_circuit"]
    wins = 0
    for circuit, data in per_circuit.items():
        costs = data["best_costs"]
        assert set(costs) == {"diversified", "non-diversified"}
        if costs["diversified"] <= costs["non-diversified"] + 1e-9:
            wins += 1
    # the diversified run wins (or ties) on the majority of circuits
    assert wins >= (len(per_circuit) + 1) // 2
