"""Ablation — early acceptance inside compound moves and the move depth.

The paper's CLW accepts a compound move as soon as the cost improves, without
exploring the remaining depth.  This ablation compares early acceptance
against always exploring the full depth (and two depths), reporting the final
quality and the work spent, to show what the early-accept rule buys.
"""

from __future__ import annotations

from _utils import RESULTS_DIR, run_once

from repro.experiments import current_scale, params_for_circuit, run_configuration
from repro.metrics import format_table
from repro.parallel import build_problem
from repro.placement import load_benchmark

CIRCUIT = "c532"


def sweep_compound_move():
    scale = current_scale()
    base = params_for_circuit(CIRCUIT, scale, num_tsws=4, clws_per_tsw=2)
    problem = build_problem(load_benchmark(CIRCUIT), base)
    rows = []
    outcomes = {}
    for label, early_accept, depth in (
        ("early-accept, depth 3", True, 3),
        ("full depth 3", False, 3),
        ("early-accept, depth 6", True, 6),
        ("full depth 6", False, 6),
    ):
        params = base.with_(tabu=base.tabu.with_(early_accept=early_accept, move_depth=depth))
        run = run_configuration(CIRCUIT, params, problem=problem)
        outcomes[label] = run
        work = run.sim_stats.total_work_units
        rows.append((label, run.best_cost, run.virtual_runtime, work))
    table = format_table(
        ["configuration", "best cost", "virtual runtime (s)", "work units"],
        rows,
        title=f"{CIRCUIT}: compound-move early acceptance vs full-depth exploration",
    )
    return outcomes, table


def test_ablation_compound_depth(benchmark):
    outcomes, table = run_once(benchmark, sweep_compound_move)
    print()
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_compound_depth.txt").write_text(table + "\n", encoding="utf-8")

    # full-depth exploration does strictly more work than early acceptance
    assert (
        outcomes["full depth 6"].sim_stats.total_work_units
        > outcomes["early-accept, depth 6"].sim_stats.total_work_units
    )
    # ... and the extra exploration never hurts quality: the full-depth runs
    # are at least as good as their early-accepting counterparts (the paper's
    # early-accept rule trades some quality per iteration for speed)
    assert (
        outcomes["full depth 3"].best_cost
        <= outcomes["early-accept, depth 3"].best_cost + 0.05
    )
    assert (
        outcomes["full depth 6"].best_cost
        <= outcomes["early-accept, depth 6"].best_cost + 0.05
    )
    # every configuration still produces a meaningful placement cost
    assert all(0.0 < run.best_cost < 1.0 for run in outcomes.values())
