#!/usr/bin/env python
"""Large-instance scaling benchmark: the 10k-cell tier and n=256 QAP.

The paper's circuits top out at 2243 cells; everything beyond that exercised
code paths that either silently fell back to slow kernels (the lexsort
shared-net detection) or blew past memory budgets (the dense incidence
matrix, the O(num_cells^2) tabu vector).  PR 6 added sparse/hashed variants
that engage automatically past the budgets; this benchmark proves the large
tier actually runs and guards its scaling properties:

* **ms/iteration** — serial vectorized tabu iterations (m = 256, d = 6, no
  early accept) on c532 (395 cells, dense paths), big2k (2000 cells) and
  big10k (10000 cells, sparse paths), plus n=256 QAP;
* **CSR kernel tax** — the batched wirelength kernel on c532 with the CSR
  shared-net path forced, relative to the dense path.  Small instances pay
  at most a modest tax for the path large instances need
  (``REPRO_LARGE_CSR_RATIO``, default <= 1.5x);
* **sublinear scaling** — per-iteration time must grow sublinearly in cell
  count: ``(t_10k / t_c532) / (10000 / 395)`` stays below
  ``REPRO_LARGE_SUBLINEAR`` (default 0.5 — i.e. at least 2x better than
  linear extrapolation from the dense tier);
* **batch leverage at n=256** — the QAP batch kernel must keep a large
  advantage over scalar evaluation at the bigger size
  (``REPRO_LARGE_QAP_BATCH``, default >= 15x; lower than the 20x bar at
  n=100 because each scalar call's fixed Python overhead amortises against
  an O(n) kernel that is 2.56x larger here — the measured headroom is
  ~19x);
* **peak memory** — the whole benchmark (10k placement + n=256 QAP,
  serial + parallel) must finish under ``REPRO_LARGE_RSS_MB`` (default
  1500 MB) of peak RSS per ``resource.getrusage`` — the dense fallbacks it
  replaced could not;
* **end-to-end parallel** — a short 4-TSW ``processes``-backend run on both
  big10k and rand256 (informational timing: CI runners differ in core
  count; the point is that the full parallel stack works at scale).

The benchmark asserts it measures the paths it means to: big10k must select
the ``csr`` incidence mode and the hashed tabu layout, c532 the dense ones.

Results land in ``BENCH_large.json`` (override with ``BENCH_LARGE_JSON``);
CI uploads the file per run.  Enforced bars are retried once against runner
noise.

Run it directly (the spawn context requires the ``__main__`` guard)::

    PYTHONPATH=src python benchmarks/bench_large_instances.py
"""

from __future__ import annotations

import json
import os
import resource
import sys
import time
from pathlib import Path

import numpy as np

from repro import (
    ParallelSearchParams,
    TabuSearch,
    TabuSearchParams,
    TerminationCriteria,
    homogeneous_cluster,
    load_benchmark,
    run_parallel_search,
)
from repro.core import get_domain
from repro.parallel import build_problem
from repro.placement import Layout, random_placement
from repro.placement.wirelength import WirelengthState
from repro.tabu.tabu_list import ARRAY_TABU_MAX_CELLS

PAIRS_PER_STEP = 256
MOVE_DEPTH = 6
SEED = 2003
WARMUP_ITERATIONS = 5
MEASURED_ITERATIONS = 25

CSR_RATIO_BAR = float(os.environ.get("REPRO_LARGE_CSR_RATIO", "1.5"))
SUBLINEAR_BAR = float(os.environ.get("REPRO_LARGE_SUBLINEAR", "0.5"))
QAP_BATCH_BAR = float(os.environ.get("REPRO_LARGE_QAP_BATCH", "15"))
RSS_BAR_MB = float(os.environ.get("REPRO_LARGE_RSS_MB", "1500"))
OUTPUT = Path(os.environ.get("BENCH_LARGE_JSON", "BENCH_large.json"))

PLACEMENT_CIRCUITS = ("c532", "big2k", "big10k")


def _tabu_params(iterations: int) -> TabuSearchParams:
    return TabuSearchParams(
        local_iterations=iterations,
        pairs_per_step=PAIRS_PER_STEP,
        move_depth=MOVE_DEPTH,
        early_accept=False,
        driver="vectorized",
    )


def _ms_per_iteration(problem) -> float:
    evaluator = problem.make_evaluator(problem.random_solution(SEED))
    search = TabuSearch(
        evaluator,
        _tabu_params(WARMUP_ITERATIONS + MEASURED_ITERATIONS),
        seed=SEED,
    )
    search.run(TerminationCriteria(max_iterations=WARMUP_ITERATIONS), record_trace=False)
    start = time.perf_counter()
    search.run(
        TerminationCriteria(max_iterations=WARMUP_ITERATIONS + MEASURED_ITERATIONS),
        record_trace=False,
    )
    return (time.perf_counter() - start) / MEASURED_ITERATIONS * 1e3


def _incidence_mode(problem) -> str:
    evaluator = problem.make_evaluator(problem.random_solution(SEED))
    return evaluator._wirelength.incidence_mode


def _csr_dense_kernel_ratio() -> dict:
    """Batched wirelength kernel on c532: forced CSR vs forced dense."""
    placement = random_placement(Layout(load_benchmark("c532")), seed=SEED)
    rng = np.random.default_rng(7)
    a = rng.integers(0, placement.num_cells, PAIRS_PER_STEP).astype(np.int64)
    b = rng.integers(0, placement.num_cells, PAIRS_PER_STEP).astype(np.int64)

    def timed(state, repeats=200, warmup=20):
        for _ in range(warmup):
            state.deltas_for_swaps(a, b)
        start = time.perf_counter()
        for _ in range(repeats):
            state.deltas_for_swaps(a, b)
        return (time.perf_counter() - start) / repeats * 1e3

    dense_ms = timed(WirelengthState(placement, incidence="dense"))
    csr_ms = timed(WirelengthState(placement, incidence="csr"))
    return {
        "dense_batch_ms": dense_ms,
        "csr_batch_ms": csr_ms,
        "csr_over_dense_ratio": csr_ms / dense_ms,
    }


def _qap_batch_leverage(problem) -> dict:
    """Batch vs scalar swap evaluation on n=256 QAP (per-pair time ratio)."""
    evaluator = problem.make_evaluator(problem.random_solution(SEED))
    rng = np.random.default_rng(9)
    pairs = rng.integers(0, evaluator.num_cells, size=(PAIRS_PER_STEP, 2))

    def timed_batch():
        for _ in range(20):
            evaluator.evaluate_swaps_batch(pairs)
        repeats = 100
        start = time.perf_counter()
        for _ in range(repeats):
            evaluator.evaluate_swaps_batch(pairs)
        return (time.perf_counter() - start) / (repeats * len(pairs)) * 1e6

    scalar_pairs = pairs[:32].tolist()

    def timed_scalar():
        for cell_a, cell_b in scalar_pairs[:8]:
            evaluator.evaluate_swap(cell_a, cell_b)
        repeats = 25
        start = time.perf_counter()
        for _ in range(repeats):
            for cell_a, cell_b in scalar_pairs:
                evaluator.evaluate_swap(cell_a, cell_b)
        return (time.perf_counter() - start) / (repeats * len(scalar_pairs)) * 1e6

    # best-of-3 each: single-shot timings on shared runners are noisy and a
    # transient stall must not masquerade as lost batch leverage
    batch_per_pair_us = min(timed_batch() for _ in range(3))
    scalar_per_pair_us = min(timed_scalar() for _ in range(3))

    return {
        "batch_us_per_pair": batch_per_pair_us,
        "scalar_us_per_pair": scalar_per_pair_us,
        "batch_speedup": scalar_per_pair_us / batch_per_pair_us,
    }


def _parallel_run(problem, instance_name: str, num_tsws: int = 4) -> dict:
    """Short end-to-end processes-backend run (informational timing)."""
    global_iterations = 2
    local_iterations = 5
    params = ParallelSearchParams(
        num_tsws=num_tsws,
        clws_per_tsw=1,
        global_iterations=global_iterations,
        sync_mode="homogeneous",
        diversify=False,
        tabu=_tabu_params(local_iterations),
        seed=SEED,
    )
    iterations = global_iterations * local_iterations
    start = time.perf_counter()
    result = run_parallel_search(
        params=params,
        problem=problem,
        backend="processes",
        cluster=homogeneous_cluster(2 * num_tsws + 1),
        join_timeout=3600.0,
    )
    seconds = time.perf_counter() - start
    assert result.best_cost <= result.initial_cost
    return {
        "instance": instance_name,
        "num_tsws": num_tsws,
        "iterations_per_path": iterations,
        "seconds": seconds,
        "ms_per_iteration_per_path": seconds / iterations * 1e3,
        "best_cost": result.best_cost,
        "initial_cost": result.initial_cost,
        "informational": True,
    }


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def measure() -> dict:
    results: dict = {"serial": {}, "kernel": {}, "qap": {}, "parallel": []}

    placement_problems = {}
    for circuit in PLACEMENT_CIRCUITS:
        netlist = load_benchmark(circuit)
        problem = build_problem(netlist, ParallelSearchParams())
        placement_problems[circuit] = problem
        results["serial"][circuit] = {
            "num_cells": netlist.num_cells,
            "ms_per_iteration": _ms_per_iteration(problem),
            "incidence_mode": _incidence_mode(problem),
            "tabu_layout": (
                "dense" if netlist.num_cells <= ARRAY_TABU_MAX_CELLS else "hashed"
            ),
        }

    # the benchmark must provably measure the paths it claims to
    assert results["serial"]["c532"]["incidence_mode"] == "dense"
    assert results["serial"]["big10k"]["incidence_mode"] == "csr"
    assert results["serial"]["big10k"]["tabu_layout"] == "hashed"

    qap_problem = get_domain("qap").build_problem("rand256", reference_seed=0)
    results["serial"]["rand256"] = {
        "num_cells": qap_problem.num_cells,
        "ms_per_iteration": _ms_per_iteration(qap_problem),
    }

    results["kernel"] = _csr_dense_kernel_ratio()
    results["qap"] = _qap_batch_leverage(qap_problem)

    big_c532 = results["serial"]["c532"]
    big_10k = results["serial"]["big10k"]
    results["scaling"] = {
        "cells_ratio": big_10k["num_cells"] / big_c532["num_cells"],
        "time_ratio": big_10k["ms_per_iteration"] / big_c532["ms_per_iteration"],
        "sublinear_factor": (
            big_10k["ms_per_iteration"] / big_c532["ms_per_iteration"]
        )
        / (big_10k["num_cells"] / big_c532["num_cells"]),
    }

    results["parallel"].append(_parallel_run(placement_problems["big10k"], "big10k"))
    results["parallel"].append(_parallel_run(qap_problem, "rand256"))

    results["peak_rss_mb"] = _peak_rss_mb()
    return results


def _passes(results: dict) -> bool:
    return (
        results["kernel"]["csr_over_dense_ratio"] <= CSR_RATIO_BAR
        and results["scaling"]["sublinear_factor"] <= SUBLINEAR_BAR
        and results["qap"]["batch_speedup"] >= QAP_BATCH_BAR
        and results["peak_rss_mb"] <= RSS_BAR_MB
    )


def main() -> int:
    attempts = []
    for _attempt in range(2):  # one retry against runner noise
        results = measure()
        attempts.append(results)
        if _passes(results):
            break

    best = next(
        (r for r in attempts if _passes(r)),
        min(attempts, key=lambda r: r["scaling"]["sublinear_factor"]),
    )
    payload = {
        "bar": {
            "csr_over_dense_ratio_max": CSR_RATIO_BAR,
            "sublinear_factor_max": SUBLINEAR_BAR,
            "qap_batch_speedup_min": QAP_BATCH_BAR,
            "peak_rss_mb_max": RSS_BAR_MB,
        },
        "workload": {
            "pairs_per_step": PAIRS_PER_STEP,
            "move_depth": MOVE_DEPTH,
            "measured_iterations": MEASURED_ITERATIONS,
        },
        "results": best,
        "attempts": len(attempts),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2))

    print("serial ms/iteration (m=256, d=6, no early accept):")
    for name, row in best["serial"].items():
        mode = row.get("incidence_mode", "-")
        print(
            f"  {name:>8}: {row['ms_per_iteration']:7.2f} ms "
            f"({row['num_cells']} cells, incidence={mode})"
        )
    print(
        f"c532 CSR kernel tax: {best['kernel']['csr_over_dense_ratio']:.2f}x "
        f"(bar {CSR_RATIO_BAR:.1f}x)"
    )
    print(
        f"scaling: 10k/c532 time ratio {best['scaling']['time_ratio']:.1f}x over "
        f"{best['scaling']['cells_ratio']:.1f}x cells -> sublinear factor "
        f"{best['scaling']['sublinear_factor']:.3f} (bar {SUBLINEAR_BAR:.2f})"
    )
    print(
        f"rand256 batch speedup: {best['qap']['batch_speedup']:.1f}x "
        f"(bar {QAP_BATCH_BAR:.0f}x)"
    )
    for row in best["parallel"]:
        print(
            f"parallel {row['instance']}: {row['num_tsws']} TSWs x "
            f"{row['iterations_per_path']} iters in {row['seconds']:.2f} s "
            f"(informational)"
        )
    print(f"peak RSS: {best['peak_rss_mb']:.0f} MB (bar {RSS_BAR_MB:.0f} MB)")
    print(f"Results written to {OUTPUT}")

    failed = False
    if best["kernel"]["csr_over_dense_ratio"] > CSR_RATIO_BAR:
        print(
            f"FAIL: c532 CSR kernel tax "
            f"{best['kernel']['csr_over_dense_ratio']:.2f}x > {CSR_RATIO_BAR:.1f}x",
            file=sys.stderr,
        )
        failed = True
    if best["scaling"]["sublinear_factor"] > SUBLINEAR_BAR:
        print(
            f"FAIL: sublinear factor {best['scaling']['sublinear_factor']:.3f} > "
            f"{SUBLINEAR_BAR:.2f} (per-iteration time scaling too close to linear)",
            file=sys.stderr,
        )
        failed = True
    if best["qap"]["batch_speedup"] < QAP_BATCH_BAR:
        print(
            f"FAIL: rand256 batch speedup {best['qap']['batch_speedup']:.1f}x < "
            f"{QAP_BATCH_BAR:.0f}x",
            file=sys.stderr,
        )
        failed = True
    if best["peak_rss_mb"] > RSS_BAR_MB:
        print(
            f"FAIL: peak RSS {best['peak_rss_mb']:.0f} MB > {RSS_BAR_MB:.0f} MB",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print("OK: all large-instance bars hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
