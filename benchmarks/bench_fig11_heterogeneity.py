"""Figure 11 — accounting for heterogeneity (best cost versus runtime).

Paper setup: 4 TSWs x 4 CLWs on twelve machines (7 fast / 3 medium / 2 slow);
the heterogeneous run lets a parent interrupt its slower children once half
have reported, the homogeneous run waits for everyone.  Expected shape: the
heterogeneous run finishes in less (virtual) time while the final solution
quality shows "no noticeable difference" — it is never much worse.
"""

from __future__ import annotations

from _utils import run_once

from repro.experiments import fig11_heterogeneity


def test_fig11_heterogeneity(benchmark, figure_reporter):
    result = run_once(benchmark, fig11_heterogeneity)
    figure_reporter(result)

    per_circuit = result.data["per_circuit"]
    assert per_circuit
    faster = 0
    for circuit, data in per_circuit.items():
        runtimes = data["runtimes"]
        costs = data["best_costs"]
        if runtimes["heterogeneous"] <= runtimes["homogeneous"]:
            faster += 1
        # "no noticeable differences in solution quality": allow a small band
        assert costs["heterogeneous"] <= costs["homogeneous"] + 0.05, circuit
    # the heterogeneity-aware synchronisation is faster on (at least) the
    # majority of circuits
    assert faster >= (len(per_circuit) + 1) // 2
