"""Figure 6 — speedup in reaching a quality target versus the number of CLWs.

Paper setup: 4 TSWs, 1–4 CLWs per TSW, speedup defined as t(1, x) / t(n, x)
with x a solution quality every configuration reaches.  Expected shape: the
multi-CLW configurations reach the target at least as fast as the single-CLW
baseline for at least one of the two circuits, and the best observed speedup
exceeds 1.
"""

from __future__ import annotations

from _utils import run_once

from repro.experiments import fig6_clw_speedup


def test_fig6_clw_speedup(benchmark, figure_reporter):
    result = run_once(benchmark, fig6_clw_speedup)
    figure_reporter(result)

    curves = result.data["curves"]
    assert curves, "no speedup curves produced"
    best_speedups = []
    for circuit, points in curves.items():
        by_workers = {p.workers: p for p in points}
        baseline = by_workers[min(by_workers)]
        assert baseline.speedup == 1.0
        # every configuration reached the common quality target
        assert all(p.time is not None for p in points), circuit
        best_speedups.append(max(p.speedup for p in points if p.speedup is not None))
    # parallel candidate-list construction pays off somewhere
    assert max(best_speedups) > 1.0
