#!/usr/bin/env python
"""Real wall-clock speedup of the multiprocessing backend on c532.

This is the benchmark the whole repository builds toward: the paper's claim
is wall-clock speedup from parallel tabu search, and the ``processes``
backend is the first configuration that can demonstrate it on real hardware
(the simulator measures virtual time; the thread backend is GIL-bound).

Method
------
* **Serial baseline** — one :class:`~repro.tabu.search.TabuSearch` path of
  ``K`` iterations on c532 with a compute-heavy candidate configuration
  (``m = 256`` pairs per step, depth ``d = 6``, no early accept) so the
  batched numpy swap-evaluation kernel dominates per-iteration time.
* **Parallel runs** — ``run_parallel_search(..., backend="processes")`` with
  N TSWs × 1 CLW, homogeneous wait-for-all sync, no throttling
  (homogeneous cluster).  Every TSW performs the same ``K`` iterations
  (``global_iterations × local_iterations = K``), i.e. N serial-sized search
  paths run concurrently.
* **Speedup** — search-throughput speedup::

      speedup(N) = N * t_serial / t_parallel(N)

  — how much faster N concurrent paths finish than the same N paths run
  back-to-back on one core.  Wall times include process spawn/join overhead.

Results are written to ``BENCH_wallclock.json`` (override with the
``BENCH_WALLCLOCK_JSON`` env var); CI uploads the file per run to track the
wall-clock trajectory alongside ``BENCH_micro.json``.  On a runner with at
least four cores the 4-TSW configuration must reach >= 3x (raised from 2x
once the delta protocol cut the per-iteration path overhead, and again from
2.5x when the vectorized iteration driver cut the serial iteration itself);
the 8-TSW row is informational — it oversubscribes a 4-core runner by
design.

Environment knobs:

* ``REPRO_WALLCLOCK_TSWS``  — comma list of TSW counts (default ``2,4,8``)
* ``REPRO_WALLCLOCK_ITERS`` — iterations per search path (default ``600``)
* ``REPRO_WALLCLOCK_BAR``   — 4-TSW speedup bar (default ``3.0``)

Run it directly (the spawn context requires the ``__main__`` guard)::

    PYTHONPATH=src python benchmarks/bench_wallclock_parallel.py
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro import (
    ParallelSearchParams,
    TabuSearch,
    TabuSearchParams,
    TerminationCriteria,
    homogeneous_cluster,
    load_benchmark,
    run_parallel_search,
)
from repro.parallel import build_problem

CIRCUIT = "c532"
SEED = 2003
#: Acceptance: >= 3x with 4 TSWs on a >= 4-core runner (overridable for
#: slower/noisier environments).
SPEEDUP_BAR = float(os.environ.get("REPRO_WALLCLOCK_BAR", "3.0"))


def _available_cpus() -> int:
    """CPUs actually available to this process (cgroup/affinity aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _tabu_params(iterations: int) -> TabuSearchParams:
    return TabuSearchParams(
        local_iterations=iterations,
        pairs_per_step=256,
        move_depth=6,
        early_accept=False,
    )


def run_benchmark(tsw_counts, iterations):
    # Serial and parallel paths must run the *same* iteration count, so
    # round the requested budget down to a whole number of global rounds.
    global_iterations = 3
    local_iterations = max(1, iterations // global_iterations)
    iterations = global_iterations * local_iterations

    netlist = load_benchmark(CIRCUIT)
    reference_params = ParallelSearchParams(
        tabu=_tabu_params(iterations), seed=SEED, diversify=False
    )
    problem = build_problem(netlist, reference_params)

    # ---- serial baseline: one search path of `iterations` iterations -------
    evaluator = problem.make_evaluator(problem.random_solution(SEED))
    search = TabuSearch(evaluator, _tabu_params(iterations), seed=SEED)
    serial_start = time.perf_counter()
    serial_result = search.run(TerminationCriteria(max_iterations=iterations))
    serial_seconds = time.perf_counter() - serial_start
    print(
        f"serial    : {iterations} iters in {serial_seconds:6.2f} s "
        f"({serial_seconds / iterations * 1e3:.2f} ms/iter), "
        f"best {serial_result.best_cost:.4f}"
    )

    # ---- parallel runs: N concurrent serial-sized paths --------------------
    def run_parallel(num_tsws):
        params = ParallelSearchParams(
            num_tsws=num_tsws,
            clws_per_tsw=1,
            global_iterations=global_iterations,
            sync_mode="homogeneous",
            diversify=False,
            tabu=_tabu_params(local_iterations),
            seed=SEED,
        )
        start = time.perf_counter()
        result = run_parallel_search(
            netlist,
            params,
            backend="processes",
            cluster=homogeneous_cluster(2 * num_tsws + 1),
            problem=problem,
            join_timeout=3600.0,
        )
        return time.perf_counter() - start, result

    parallel_rows = []
    for num_tsws in tsw_counts:
        seconds, result = run_parallel(num_tsws)
        speedup = num_tsws * serial_seconds / seconds
        attempts = 1
        # The enforced configuration gets one retry: shared CI runners have
        # noisy neighbours, and a transient dip must not read as a perf
        # regression.  Real regressions fail both attempts.
        if num_tsws == 4 and speedup < SPEEDUP_BAR and _available_cpus() >= 4:
            retry_seconds, retry_result = run_parallel(num_tsws)
            attempts = 2
            if retry_seconds < seconds:
                seconds, result = retry_seconds, retry_result
                speedup = num_tsws * serial_seconds / seconds
        parallel_rows.append(
            {
                "num_tsws": num_tsws,
                "iterations_per_path": global_iterations * local_iterations,
                "seconds": seconds,
                "speedup": speedup,
                "attempts": attempts,
                "best_cost": result.best_cost,
                "initial_cost": result.initial_cost,
                # only the 4-TSW row is enforced; larger configurations
                # oversubscribe the CI runner and are tracked informationally
                "informational": num_tsws != 4,
            }
        )
        print(
            f"{num_tsws} TSWs    : {global_iterations * local_iterations} iters/path "
            f"in {seconds:6.2f} s -> speedup {speedup:4.2f}x, "
            f"best {result.best_cost:.4f}"
        )
        assert result.best_cost < result.initial_cost

    return {
        "circuit": CIRCUIT,
        "backend": "processes",
        "cpu_count": _available_cpus(),
        "speedup_definition": (
            "N * t_serial / t_parallel(N): N concurrent serial-sized tabu "
            "search paths vs the same N paths run back-to-back serially"
        ),
        "serial": {
            "iterations": iterations,
            "seconds": serial_seconds,
            "best_cost": serial_result.best_cost,
            "pairs_per_step": 256,
            "move_depth": 6,
        },
        "parallel": parallel_rows,
    }


def main() -> int:
    tsw_counts = [
        int(part)
        for part in os.environ.get("REPRO_WALLCLOCK_TSWS", "2,4,8").split(",")
        if part.strip()
    ]
    iterations = int(os.environ.get("REPRO_WALLCLOCK_ITERS", "600"))
    report = run_benchmark(tsw_counts, iterations)

    out_path = Path(os.environ.get("BENCH_WALLCLOCK_JSON", "BENCH_wallclock.json"))
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")

    cpu_count = _available_cpus()
    four_tsw = next((row for row in report["parallel"] if row["num_tsws"] == 4), None)
    if four_tsw is not None and cpu_count >= 4:
        if four_tsw["speedup"] < SPEEDUP_BAR:
            print(
                f"FAIL: 4-TSW speedup {four_tsw['speedup']:.2f}x below the "
                f"{SPEEDUP_BAR}x bar on a {cpu_count}-core machine",
                file=sys.stderr,
            )
            return 1
        print(f"4-TSW speedup {four_tsw['speedup']:.2f}x >= {SPEEDUP_BAR}x bar")
        eight_tsw = next(
            (row for row in report["parallel"] if row["num_tsws"] == 8), None
        )
        if eight_tsw is not None:
            print(
                f"8-TSW speedup {eight_tsw['speedup']:.2f}x (informational: "
                f"8 TSWs oversubscribe a {cpu_count}-core runner)"
            )
    elif four_tsw is not None:
        print(
            f"note: only {cpu_count} core(s) available — the {SPEEDUP_BAR}x bar "
            "applies on >= 4 cores and was not enforced"
        )
    return 0


def test_wallclock_speedup():
    """Pytest entry point (not collected by default: bench_* naming)."""
    assert main() == 0


if __name__ == "__main__":
    sys.exit(main())
