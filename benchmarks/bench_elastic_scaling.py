#!/usr/bin/env python
"""Elastic scale-up benchmark: value and cost of admitting workers mid-run.

PR 10 lets a running search grow: ``WorkerPool.grow`` hands fresh TSW loops
to the in-flight master (seeded :class:`repro.SpawnWorker` plan entries do
the same on the simulator), which SETUP-handshakes them, full-provisions
their resident state through the delta path and folds them into the next
global-iteration boundary's range re-partition.  This benchmark puts numbers
on that machinery:

* **Elastic vs static fleet (processes)** — the same seeded search on a warm
  pool that starts with 2 TSWs and admits 2 more one second in, against the
  static 2-TSW fleet.  Reported: wall time and total evaluations of both
  runs.  Enforced: the elastic run out-evaluates the static small fleet —
  the admitted workers do real work.
* **Admission overhead (simulated)** — virtual time from the seeded
  admission request to the boundary re-partition that activates the new
  workers.  Enforced: the new workers join at the *next* boundary (bounded
  by one global iteration), not rounds later.
* **Determinism (enforced)** — a grow+kill plan (two workers admitted, one
  original killed) repeated under the simulator must replay bit-identically:
  same trace, same fault events, same final cost.

Results are written to ``BENCH_elastic.json`` (override with the
``BENCH_ELASTIC_JSON`` env var); CI uploads the file per run.

Run it directly (the spawn context requires the ``__main__`` guard)::

    PYTHONPATH=src python benchmarks/bench_elastic_scaling.py
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from pathlib import Path

from repro import (
    FaultPlan,
    FaultPolicy,
    KillWorker,
    ParallelSearchParams,
    SearchSession,
    SpawnWorker,
    TabuSearchParams,
    WorkerPool,
)
from repro.core.registry import get_domain

CIRCUIT = "tiny16"
SEED = 2003


def _event_rows(result):
    return [
        {"time": e.time, "kind": e.kind, "worker": e.worker, "detail": e.detail}
        for e in result.fault_events
    ]


def measure_elastic_vs_static(problem):
    """Admit 2 workers into a 2-TSW run vs staying at 2 TSWs (processes)."""
    params = ParallelSearchParams(
        num_tsws=2,
        clws_per_tsw=1,
        global_iterations=8,
        sync_mode="homogeneous",
        tabu=TabuSearchParams(local_iterations=60),
        seed=SEED,
        fault=FaultPolicy(round_deadline=30.0, clw_deadline=20.0, max_missed_deadlines=0),
    )

    with WorkerPool(2, 1, backend="processes") as pool:
        start = time.perf_counter()
        static, _, _ = pool.run_master(problem, params, join_timeout=300.0)
        static_wall = time.perf_counter() - start
        assert static.complete and static.num_workers == 2

    with WorkerPool(2, 1, backend="processes") as pool:
        grown = []
        timer = threading.Timer(
            1.0, lambda: grown.extend(pool.grow(2, speed_hints=[1.0, 1.0]))
        )
        timer.start()
        start = time.perf_counter()
        try:
            elastic, _, _ = pool.run_master(problem, params, join_timeout=300.0)
        finally:
            timer.cancel()
        elastic_wall = time.perf_counter() - start
        assert elastic.complete, "elastic run must complete"
        assert len(grown) == 2, "grow must fire mid-run"
        assert elastic.admitted_workers == ("tsw2", "tsw3"), elastic.admitted_workers
        rows = {row[0]: row for row in elastic.health}
        assert rows[2][4] > 0 and rows[3][4] > 0, "admitted workers must contribute"

    gain = (
        elastic.total_tsw_evaluations / static.total_tsw_evaluations
        if static.total_tsw_evaluations
        else 1.0
    )
    assert gain > 1.05, (
        f"2+2 elastic fleet must out-evaluate the static 2-TSW fleet, "
        f"got {gain:.3f}x ({elastic.total_tsw_evaluations} vs "
        f"{static.total_tsw_evaluations})"
    )
    print(
        f"processes : static 2 TSWs {static_wall:6.2f} s "
        f"({static.total_tsw_evaluations} evals), elastic 2+2 "
        f"{elastic_wall:6.2f} s ({elastic.total_tsw_evaluations} evals), "
        f"evaluation gain {gain:.2f}x"
    )
    return {
        "static_wall_seconds": static_wall,
        "static_evaluations": static.total_tsw_evaluations,
        "elastic_wall_seconds": elastic_wall,
        "elastic_evaluations": elastic.total_tsw_evaluations,
        "evaluation_gain": gain,
        "admitted": list(elastic.admitted_workers),
    }


def _sim_params(num_tsws: int = 3) -> ParallelSearchParams:
    return ParallelSearchParams(
        num_tsws=num_tsws,
        clws_per_tsw=2,
        global_iterations=6,
        sync_mode="homogeneous",
        tabu=TabuSearchParams(local_iterations=4),
        seed=SEED,
        fault=FaultPolicy(round_deadline=50.0, clw_deadline=25.0, max_missed_deadlines=0),
    )


def measure_admission_overhead(problem):
    """Virtual time from the seeded admission to the activating re-partition."""
    plan = FaultPlan(spawns=(SpawnWorker(at=0.05, count=2),))
    session = SearchSession(problem=problem, params=_sim_params(), fault_plan=plan)
    result = session.run()
    assert result.complete
    master = session._master_result
    assert master.admitted_workers == ("tsw3", "tsw4"), master.admitted_workers

    admitted = [e for e in result.fault_events if e.kind == "worker-admitted"]
    reassigned = [e for e in result.fault_events if e.kind == "range-reassigned"]
    assert admitted and reassigned
    activation = reassigned[0].time
    overhead = activation - plan.spawns[0].at
    # rounds are ~0.03 virtual seconds here; the admission lands at the next
    # boundary, so request-to-activation stays under one round plus slack
    rounds = [t for t, _ in master.master_trace]
    round_span = max(
        b - a for a, b in zip(rounds, rounds[1:])
    ) if len(rounds) > 1 else 1.0
    assert overhead <= round_span + 0.11, (
        f"admission must activate at the next boundary: request at "
        f"{plan.spawns[0].at}, activated at {activation} "
        f"(round span {round_span:.4f})"
    )
    print(
        f"simulated : admission requested at {plan.spawns[0].at:.3f} vs, "
        f"activated at {activation:.3f} vs (overhead {overhead:.3f} vs, "
        f"round span {round_span:.3f} vs)"
    )
    return {
        "requested_at": plan.spawns[0].at,
        "activated_at": activation,
        "overhead_virtual_seconds": overhead,
        "round_span_virtual_seconds": round_span,
        "admitted": list(master.admitted_workers),
    }


def measure_grow_kill_determinism(problem):
    """A grow+kill plan must replay bit-identically under the simulator."""
    plan = FaultPlan(
        seed=7,
        spawns=(SpawnWorker(at=0.05, count=2),),
        kills=(KillWorker(at=0.16, name="tsw1"),),
    )

    def run():
        session = SearchSession(
            problem=problem, params=_sim_params(), fault_plan=plan
        )
        result = session.run()
        return result, session._master_result

    first, first_master = run()
    second, second_master = run()
    assert first.complete and second.complete
    assert first_master.admitted_workers == ("tsw3", "tsw4")
    assert first_master.dead_workers == ("tsw1",)
    deterministic = (
        first.trace == second.trace
        and _event_rows(first) == _event_rows(second)
        and first.best_cost == second.best_cost
    )
    assert deterministic, "same grow+kill plan must replay bit-identically"
    print(
        f"simulated : grow+kill plan replayed bit-identically "
        f"(admitted {first_master.admitted_workers}, "
        f"dead {first_master.dead_workers}, best {first.best_cost:.4f})"
    )
    return {
        "deterministic": deterministic,
        "admitted": list(first_master.admitted_workers),
        "dead": list(first_master.dead_workers),
        "best_cost": first.best_cost,
        "fault_events": _event_rows(first),
    }


def main() -> int:
    problem = get_domain("placement").build_problem(CIRCUIT, reference_seed=SEED)
    report = {
        "circuit": CIRCUIT,
        "seed": SEED,
        "elastic_vs_static": measure_elastic_vs_static(problem),
        "admission_overhead": measure_admission_overhead(problem),
        "grow_kill_determinism": measure_grow_kill_determinism(problem),
    }
    out_path = Path(os.environ.get("BENCH_ELASTIC_JSON", "BENCH_elastic.json"))
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
