"""Helpers shared by the figure-reproduction benchmarks."""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def run_once(benchmark, func, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result.

    A figure regeneration is itself a long, internally-repeating experiment,
    so repeating it for statistical timing would multiply the suite's runtime
    for no benefit — the interesting output is the figure data.
    """
    return benchmark.pedantic(func, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)


def report_figure(result) -> None:
    """Print a FigureResult and persist it under ``benchmarks/results/``."""
    text = result.format()
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{result.figure_id}.txt").write_text(text + "\n", encoding="utf-8")
