"""Figure 8 — speedup in reaching a quality target versus the number of TSWs.

Paper setup: 1–8 TSWs, one CLW each; the paper observes the speedup peaking
around 4 TSWs and degrading beyond.  Expected shape here: some multi-TSW
configuration beats the single-TSW baseline, and the largest configuration is
not the unambiguous best (diminishing or negative returns past the knee).
"""

from __future__ import annotations

from _utils import run_once

from repro.experiments import fig8_tsw_speedup


def test_fig8_tsw_speedup(benchmark, figure_reporter):
    result = run_once(benchmark, fig8_tsw_speedup)
    figure_reporter(result)

    curves = result.data["curves"]
    assert curves
    best_overall = 0.0
    for circuit, points in curves.items():
        by_workers = {p.workers: p for p in points}
        assert by_workers[min(by_workers)].speedup == 1.0
        reached = [p for p in points if p.speedup is not None]
        assert reached, circuit
        best_overall = max(best_overall, max(p.speedup for p in reached))
    assert best_overall > 1.0
