#!/usr/bin/env python
"""Dispatch-tax benchmark for the ``repro.accel`` xp-generic kernels.

The hot kernels (QAP batched swap deltas, the placement dense/CSR batched
wirelength kernel) used to be direct NumPy code inside their evaluators;
they now route through the array-module dispatch layer so the same source
runs on cupy.  The CI bar guards the refactor's core promise: **on the CPU
path the dispatch layer is free** —

* **dispatch tax <= 1.1x** — the shipped evaluator kernel versus the frozen
  pre-dispatch reference (``deltas_for_swaps_reference``) on c532 (dense
  incidence), big10k (CSR incidence) and rand256 QAP; overridable with
  ``REPRO_GPU_DISPATCH_TAX``.

When a CUDA device is present (it never is on the CPU-only CI runners) the
same batches run on the cupy path and report informational timings plus the
transfer-byte accounting; without one the GPU section records why it was
skipped.  Results land in ``BENCH_gpu.json`` (override with the
``BENCH_GPU_JSON`` env var); the bar retries once against runner noise.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_gpu_kernels.py
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.accel import cuda_available, cuda_unavailable_reason
from repro.core import get_domain
from repro.placement import Layout, load_benchmark, random_placement
from repro.placement.wirelength import (
    WirelengthState,
    deltas_for_swaps_reference as wirelength_reference,
)
from repro.problems.qap.evaluator import (
    deltas_for_swaps_reference as qap_reference,
)

PAIRS_PER_STEP = 256
SEED = 2003
WARMUP = 5
MEASURED = 30

DISPATCH_TAX_BAR = float(os.environ.get("REPRO_GPU_DISPATCH_TAX", "1.1"))
OUTPUT = Path(os.environ.get("BENCH_GPU_JSON", "BENCH_gpu.json"))


def _time_us(func, repeats: int = MEASURED, warmup: int = WARMUP) -> float:
    for _ in range(warmup):
        func()
    start = time.perf_counter()
    for _ in range(repeats):
        func()
    return (time.perf_counter() - start) / repeats * 1e6


def _pairs(num_cells: int, rng: np.random.Generator):
    a = rng.integers(0, num_cells, PAIRS_PER_STEP).astype(np.int64)
    b = rng.integers(0, num_cells, PAIRS_PER_STEP).astype(np.int64)
    return a, b


def _wirelength_case(circuit: str, device: str) -> dict:
    placement = random_placement(Layout(load_benchmark(circuit)), seed=SEED)
    state = WirelengthState(placement, device=device)
    a, b = _pairs(placement.num_cells, np.random.default_rng(7))

    shipped_us = _time_us(lambda: state.deltas_for_swaps(a, b))
    case = {
        "circuit": circuit,
        "num_cells": placement.num_cells,
        "incidence_mode": state.incidence_mode,
        "batch_size": PAIRS_PER_STEP,
        "shipped_us": shipped_us,
    }
    if device == "cpu":
        reference_us = _time_us(lambda: wirelength_reference(state, a, b))
        case["reference_us"] = reference_us
        case["dispatch_tax"] = shipped_us / reference_us
    else:  # pragma: no cover - requires a GPU
        case["transfer"] = state.transfer_stats().as_dict()
    return case


def _qap_case(device: str) -> dict:
    problem = get_domain("qap").build_problem("rand256", reference_seed=0)
    evaluator = problem.make_evaluator(problem.random_solution(SEED), device=device)
    a, b = _pairs(problem.instance.n, np.random.default_rng(11))

    shipped_us = _time_us(lambda: evaluator.deltas_for_swaps(a, b))
    case = {
        "instance": "rand256",
        "n_facilities": problem.instance.n,
        "batch_size": PAIRS_PER_STEP,
        "shipped_us": shipped_us,
    }
    if device == "cpu":
        reference_us = _time_us(lambda: qap_reference(evaluator, a, b))
        case["reference_us"] = reference_us
        case["dispatch_tax"] = shipped_us / reference_us
    else:  # pragma: no cover - requires a GPU
        case["transfer"] = evaluator.transfer_stats().as_dict()
    return case


def measure() -> dict:
    results = {
        "cpu": {
            "c532": _wirelength_case("c532", "cpu"),
            "big10k": _wirelength_case("big10k", "cpu"),
            "rand256": _qap_case("cpu"),
        }
    }
    # the c532/big10k split must actually cover both incidence kernels
    assert results["cpu"]["c532"]["incidence_mode"] == "dense"
    assert results["cpu"]["big10k"]["incidence_mode"] == "csr"

    if cuda_available():  # pragma: no cover - requires a GPU
        results["cuda"] = {
            "c532": _wirelength_case("c532", "cuda"),
            "big10k": _wirelength_case("big10k", "cuda"),
            "rand256": _qap_case("cuda"),
        }
    else:
        results["cuda"] = {"skipped": cuda_unavailable_reason()}
    return results


def _worst_tax(results: dict) -> float:
    return max(case["dispatch_tax"] for case in results["cpu"].values())


def main() -> int:
    attempts = []
    for attempt in range(2):  # one retry against runner noise
        results = measure()
        attempts.append(results)
        if _worst_tax(results) <= DISPATCH_TAX_BAR:
            break

    best = min(attempts, key=_worst_tax)
    worst_tax = _worst_tax(best)
    payload = {
        "bar": {"dispatch_tax_max": DISPATCH_TAX_BAR},
        "results": best,
        "attempts": len(attempts),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2))

    print(f"xp-dispatch kernels vs frozen references ({PAIRS_PER_STEP}-pair batches):")
    for name, case in best["cpu"].items():
        print(
            f"  {name:>8}: shipped {case['shipped_us']:8.1f} us  "
            f"reference {case['reference_us']:8.1f} us  "
            f"tax {case['dispatch_tax']:.3f}x"
        )
    if "skipped" in best["cuda"]:
        print(f"  cuda: skipped ({best['cuda']['skipped']})")
    else:  # pragma: no cover - requires a GPU
        for name, case in best["cuda"].items():
            print(f"  cuda {name:>8}: shipped {case['shipped_us']:8.1f} us")
    print(f"Results written to {OUTPUT}")

    if worst_tax > DISPATCH_TAX_BAR:
        print(
            f"FAIL: worst dispatch tax {worst_tax:.3f}x > "
            f"{DISPATCH_TAX_BAR:.2f}x bar",
            file=sys.stderr,
        )
        return 1
    print(f"OK: worst dispatch tax {worst_tax:.3f}x <= {DISPATCH_TAX_BAR:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
