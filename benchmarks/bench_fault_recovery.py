#!/usr/bin/env python
"""Fault-recovery benchmark: cost of surviving worker death mid-run.

PR 8 made the master elastic: a :class:`repro.FaultPolicy` arms deadline
tracking and obituary handling, a dead TSW's candidate range is re-partitioned
over the survivors, and the run completes degraded instead of raising.  This
benchmark puts numbers on that machinery:

* **Recovery overhead (simulated)** — the same seeded search, fault-enabled,
  with and without a :class:`repro.FaultPlan` that kills one of three TSWs
  mid-run.  Reported: virtual makespan of both runs, final cost of both runs,
  and the solution-quality degradation ratio of losing a third of the fleet.
* **Determinism (enforced)** — the killed run repeated with the same plan
  must reproduce a bit-identical trajectory: same trace, same fault events.
* **Real kill recovery (processes)** — a warm 3-TSW pool on the
  multiprocessing backend, one loop SIGTERMed one second into the run.
  Reported: wall time to degraded completion vs an unfaulted run, the repair
  respawn count, and that a second full-strength run follows.  Enforced: the
  killed run completes with the dead worker's range re-assigned.

Results are written to ``BENCH_faults.json`` (override with the
``BENCH_FAULTS_JSON`` env var); CI uploads the file per run.

Run it directly (the spawn context requires the ``__main__`` guard)::

    PYTHONPATH=src python benchmarks/bench_fault_recovery.py
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from pathlib import Path

from repro import (
    FaultPlan,
    FaultPolicy,
    KillWorker,
    ParallelSearchParams,
    SearchSession,
    TabuSearchParams,
    WorkerPool,
)
from repro.core.registry import get_domain

CIRCUIT = "tiny16"
SEED = 2003
NUM_TSWS = 3


def _sim_params() -> ParallelSearchParams:
    return ParallelSearchParams(
        num_tsws=NUM_TSWS,
        clws_per_tsw=2,
        global_iterations=6,
        sync_mode="homogeneous",
        tabu=TabuSearchParams(local_iterations=4),
        seed=SEED,
        fault=FaultPolicy(round_deadline=50.0, clw_deadline=25.0, max_missed_deadlines=0),
    )


def _event_rows(result):
    return [
        {"time": e.time, "kind": e.kind, "worker": e.worker, "detail": e.detail}
        for e in result.fault_events
    ]


def measure_simulated_recovery(problem):
    """Fault-armed run with and without a mid-run TSW kill, plus determinism."""
    params = _sim_params()

    def run(plan):
        return SearchSession(problem=problem, params=params, fault_plan=plan).run()

    clean = run(None)
    assert clean.complete and not clean.fault_events

    plan = FaultPlan(seed=7, kills=(KillWorker(at=0.08, name="tsw1"),))
    killed = run(plan)
    assert killed.complete, "killed run must complete degraded, not raise"
    dead = [e for e in killed.fault_events if e.kind == "worker-dead"]
    reassigned = [e for e in killed.fault_events if e.kind == "range-reassigned"]
    assert [e.worker for e in dead] == ["tsw1"], dead
    assert reassigned, "dead worker's range must be re-assigned"

    repeat = run(plan)
    deterministic = (
        repeat.trace == killed.trace
        and _event_rows(repeat) == _event_rows(killed)
        and repeat.best_cost == killed.best_cost
    )
    assert deterministic, "same fault plan must replay bit-identically"

    degradation = killed.best_cost / clean.best_cost if clean.best_cost else 1.0
    print(
        f"simulated : clean {clean.best_cost:.4f} ({clean.virtual_runtime:.3f} vs), "
        f"1-of-{NUM_TSWS} killed {killed.best_cost:.4f} "
        f"({killed.virtual_runtime:.3f} vs), degradation {degradation:.3f}x, "
        f"deterministic: {deterministic}"
    )
    return {
        "clean_best_cost": clean.best_cost,
        "clean_virtual_seconds": clean.virtual_runtime,
        "killed_best_cost": killed.best_cost,
        "killed_virtual_seconds": killed.virtual_runtime,
        "quality_degradation": degradation,
        "deterministic": deterministic,
        "fault_events": _event_rows(killed),
    }


def measure_process_recovery(problem):
    """SIGTERM one of three warm TSW loops mid-run on the processes backend."""
    params = ParallelSearchParams(
        num_tsws=NUM_TSWS,
        clws_per_tsw=1,
        global_iterations=6,
        sync_mode="homogeneous",
        tabu=TabuSearchParams(local_iterations=40),
        seed=SEED,
        fault=FaultPolicy(round_deadline=3.0, clw_deadline=2.0, max_missed_deadlines=0),
    )
    with WorkerPool(NUM_TSWS, 1, backend="processes") as pool:
        pool.kernel.death_report_grace = 0.5
        pool.kernel.death_notify_grace = 0.3

        start = time.perf_counter()
        clean, _, _ = pool.run_master(problem, params, join_timeout=300.0)
        clean_wall = time.perf_counter() - start
        assert clean.complete and clean.dead_workers == ()

        victim = pool.tsw_pids[1]
        killed_flags = []
        killer = threading.Timer(
            1.0, lambda: killed_flags.append(pool.kernel.terminate_worker(victim))
        )
        killer.start()
        start = time.perf_counter()
        try:
            degraded, _, _ = pool.run_master(problem, params, join_timeout=300.0)
        finally:
            killer.cancel()
        degraded_wall = time.perf_counter() - start
        assert killed_flags == [True], "the kill must actually fire mid-run"
        assert degraded.complete, "killed run must complete degraded, not raise"
        assert degraded.dead_workers == ("tsw1",), degraded.dead_workers
        kinds = [e.kind for e in degraded.fault_events]
        assert "range-reassigned" in kinds, kinds

        # a fault-enabled run repairs the pool first: the dead loop respawns
        start = time.perf_counter()
        second, _, _ = pool.run_master(problem, params, join_timeout=300.0)
        repaired_wall = time.perf_counter() - start
        assert second.complete and second.dead_workers == ()
        respawns = [e.worker for e in second.fault_events if e.kind == "worker-respawned"]
        assert respawns == ["tsw1"], respawns

    print(
        f"processes : clean {clean_wall:6.2f} s, 1 TSW killed {degraded_wall:6.2f} s "
        f"(overhead {degraded_wall - clean_wall:+.2f} s), "
        f"repaired rerun {repaired_wall:6.2f} s (respawned {respawns})"
    )
    return {
        "clean_wall_seconds": clean_wall,
        "killed_wall_seconds": degraded_wall,
        "recovery_overhead_seconds": degraded_wall - clean_wall,
        "repaired_wall_seconds": repaired_wall,
        "dead_workers": list(degraded.dead_workers),
        "respawned": respawns,
        "fault_events": _event_rows(degraded),
    }


def main() -> int:
    problem = get_domain("placement").build_problem(CIRCUIT, reference_seed=SEED)
    report = {
        "circuit": CIRCUIT,
        "seed": SEED,
        "num_tsws": NUM_TSWS,
        "simulated": measure_simulated_recovery(problem),
        "processes": measure_process_recovery(problem),
    }
    out_path = Path(os.environ.get("BENCH_FAULTS_JSON", "BENCH_faults.json"))
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
