"""Figure 5 — effect of the number of CLWs on solution quality.

Paper setup: 4 TSWs, 1–4 CLWs per TSW, all four ISCAS-89 circuits, twelve
machines.  Expected shape: more CLWs give equal or better best cost for the
larger circuits; the tiny ``highway`` circuit saturates after about 2 CLWs.
"""

from __future__ import annotations

from _utils import run_once

from repro.experiments import fig5_clw_quality


def test_fig5_clw_quality(benchmark, figure_reporter):
    result = run_once(benchmark, fig5_clw_quality)
    figure_reporter(result)

    quality = result.data["quality"]
    clw_counts = result.data["clw_counts"]
    lowest, highest = min(clw_counts), max(clw_counts)
    for circuit, per_clw in quality.items():
        # every configuration produced a meaningful (fuzzy) cost
        assert all(0.0 < cost < 1.0 for cost in per_clw.values()), circuit
        # the headline claim: for the non-trivial circuits the best
        # parallelised configuration is at least as good as the 1-CLW run
        if circuit != "highway":
            assert min(per_clw.values()) <= per_clw[lowest] + 0.02, circuit
    # at least half of the circuits strictly improve when going 1 -> max CLWs
    improved = sum(
        1 for per_clw in quality.values() if per_clw[highest] <= per_clw[lowest] + 1e-9
    )
    assert improved >= len(quality) / 2
