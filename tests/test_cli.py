"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.placement import Layout, load_benchmark
from repro.placement.io import read_placement


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        # the effective instance defaults to the domain's default (c532 for
        # placement) inside _command_run; the parser leaves both flags unset
        assert args.problem == "placement"
        assert args.instance is None
        assert args.circuit is None
        assert args.tsws == 4
        assert args.sync == "heterogeneous"

    def test_run_rejects_unknown_problem(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--problem", "knapsack"])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCircuitsCommand:
    def test_lists_paper_circuits(self, capsys):
        assert main(["circuits"]) == 0
        out = capsys.readouterr().out
        for name in ("highway", "c532", "c1355", "c3540"):
            assert name in out


class TestClassifyCommand:
    def test_paper_configuration(self, capsys):
        assert main(["classify", "--tsws", "4", "--clws", "4"]) == 0
        out = capsys.readouterr().out
        assert "p-control" in out
        assert "RS" in out

    def test_single_tsw(self, capsys):
        assert main(["classify", "--tsws", "1", "--clws", "1", "--no-diversify"]) == 0
        assert "1-control" in capsys.readouterr().out


class TestRunCommand:
    def test_small_run_prints_summary(self, capsys):
        code = main(
            [
                "run",
                "--circuit", "mini64",
                "--tsws", "2",
                "--clws", "1",
                "--global-iterations", "2",
                "--local-iterations", "3",
                "--cluster", "homogeneous:4",
                "--trace",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "best cost" in out
        assert "Best cost vs time" in out

    def test_save_placement(self, tmp_path, capsys):
        target = tmp_path / "best.pl"
        code = main(
            [
                "run",
                "--circuit", "tiny16",
                "--tsws", "1",
                "--clws", "1",
                "--global-iterations", "1",
                "--local-iterations", "2",
                "--cluster", "homogeneous:2",
                "--save-placement", str(target),
            ]
        )
        assert code == 0
        assert target.exists()
        netlist = load_benchmark("tiny16")
        placement = read_placement(target, Layout(netlist))
        placement.validate()

    def test_bad_cluster_spec_is_reported(self, capsys):
        code = main(["run", "--circuit", "tiny16", "--cluster", "quantum:3"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestSessionsWorkflow:
    """The checkpoint / resume / inspect loop through the CLI."""

    RUN_ARGS = [
        "run",
        "--circuit", "tiny16",
        "--tsws", "2",
        "--clws", "1",
        "--global-iterations", "3",
        "--local-iterations", "2",
        "--sync", "homogeneous",
        "--cluster", "homogeneous:4",
    ]

    def test_pause_checkpoint_inspect_resume(self, tmp_path, capsys):
        ckpt = tmp_path / "run.rtss"

        code = main(self.RUN_ARGS + ["--pause-after", "1", "--checkpoint", str(ckpt)])
        assert code == 0
        out = capsys.readouterr().out
        assert "1/3 global iterations (paused)" in out
        assert ckpt.exists()

        assert main(["sessions", str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "tiny16" in out
        assert "1/3" in out
        assert "paused" in out

        code = main(["run", "--resume", str(ckpt), "--checkpoint", str(ckpt)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Resuming tiny16" in out
        assert "best cost" in out

        assert main(["sessions", str(ckpt)]) == 0
        assert "complete" in capsys.readouterr().out

    def test_resume_rejects_instance_flags(self, tmp_path, capsys):
        ckpt = tmp_path / "run.rtss"
        assert main(self.RUN_ARGS + ["--pause-after", "1", "--checkpoint", str(ckpt)]) == 0
        capsys.readouterr()
        code = main(["run", "--resume", str(ckpt), "--circuit", "tiny16"])
        assert code == 2
        assert "drop --instance/--circuit" in capsys.readouterr().err

    def test_pause_after_must_be_positive(self, capsys):
        code = main(self.RUN_ARGS + ["--pause-after", "0"])
        assert code == 2
        assert "at least one" in capsys.readouterr().err

    def test_sessions_rejects_a_non_checkpoint_file(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.rtss"
        bogus.write_bytes(b"definitely not a checkpoint")
        code = main(["sessions", str(bogus)])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestFigureCommand:
    def test_runs_fig9_on_a_small_circuit(self, capsys, monkeypatch):
        # keep it quick: the tiny generated circuit and the quick scale
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "quick")
        code = main(["figure", "fig9", "--circuits", "mini64"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig9" in out
        assert "diversified" in out


class TestDeviceFlag:
    def test_parser_accepts_the_device_choices(self):
        args = build_parser().parse_args(["run", "--device", "cpu"])
        assert args.device == "cpu"
        assert build_parser().parse_args(["run"]).device is None

    def test_parser_rejects_unknown_devices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--device", "tpu"])

    def test_devices_command_prints_the_probe(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "accelerator probe" in out
        assert "numpy" in out
        assert "selected device" in out

    def test_cuda_without_a_device_fails_before_any_work(self, capsys, monkeypatch):
        from repro.accel import cuda_available

        if cuda_available():
            pytest.skip("cuda actually works here")
        monkeypatch.delenv("REPRO_DEVICE", raising=False)
        code = main(["run", "--circuit", "tiny16", "--device", "cuda"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unavailable" in err
        assert "pip install .[gpu]" in err

    def test_explicit_device_propagates_through_the_environment(
        self, capsys, monkeypatch
    ):
        import os

        monkeypatch.delenv("REPRO_DEVICE", raising=False)
        code = main(
            [
                "run",
                "--circuit", "tiny16",
                "--device", "cpu",
                "--tsws", "2",
                "--clws", "1",
                "--global-iterations", "1",
                "--local-iterations", "2",
            ]
        )
        assert code == 0
        assert os.environ["REPRO_DEVICE"] == "cpu"
        assert "best cost" in capsys.readouterr().out
