"""Parity tests for the wirelength shared-net detection modes.

The batched swap-delta kernel answers "does the swap partner also sit on
this net?" either with a dense boolean incidence matrix (small instances)
or with a binary search of the sorted CSR keys (large instances, where the
dense matrix would blow the 64 MB budget).  Both must produce bit-identical
deltas, and the commit paths (scalar pin scan vs vectorised net recompute)
must land in the same cache state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.placement import CostEvaluator, Layout, load_benchmark, random_placement
from repro.placement.wirelength import WirelengthState, full_hpwl


@pytest.fixture(scope="module")
def big2k_placement():
    layout = Layout(load_benchmark("big2k"))
    return random_placement(layout, seed=7)


@pytest.fixture(scope="module")
def big10k_placement():
    layout = Layout(load_benchmark("big10k"))
    return random_placement(layout, seed=7)


def _random_pairs(rng, num_cells, count):
    a = rng.integers(0, num_cells, count).astype(np.int64)
    b = rng.integers(0, num_cells, count).astype(np.int64)
    return a, b


class TestModeSelection:
    def test_small_circuit_defaults_to_dense(self):
        layout = Layout(load_benchmark("c532"))
        state = WirelengthState(random_placement(layout, seed=1))
        assert state.incidence_mode == "dense"

    def test_big10k_defaults_to_csr(self, big10k_placement):
        netlist = big10k_placement.netlist
        assert netlist.num_cells * netlist.num_nets > WirelengthState.INCIDENCE_BUDGET
        state = WirelengthState(big10k_placement)
        assert state.incidence_mode == "csr"

    def test_forced_modes(self, big2k_placement):
        assert WirelengthState(big2k_placement, incidence="dense").incidence_mode == "dense"
        assert WirelengthState(big2k_placement, incidence="csr").incidence_mode == "csr"

    def test_env_override(self, big2k_placement, monkeypatch):
        monkeypatch.setenv("REPRO_INCIDENCE", "csr")
        assert WirelengthState(big2k_placement).incidence_mode == "csr"

    def test_invalid_mode_rejected(self, big2k_placement):
        with pytest.raises(ValueError):
            WirelengthState(big2k_placement, incidence="sparse")


class TestCsrDenseParity:
    def test_batch_deltas_bit_identical(self, big2k_placement):
        dense = WirelengthState(big2k_placement, incidence="dense")
        csr = WirelengthState(big2k_placement, incidence="csr")
        rng = np.random.default_rng(0)
        a, b = _random_pairs(rng, big2k_placement.num_cells, 256)
        assert np.array_equal(dense.deltas_for_swaps(a, b), csr.deltas_for_swaps(a, b))

    def test_self_pairs_and_shared_net_pairs(self, big2k_placement):
        dense = WirelengthState(big2k_placement, incidence="dense")
        csr = WirelengthState(big2k_placement, incidence="csr")
        netlist = big2k_placement.netlist
        # pairs sharing a net are exactly the case the incidence test gates
        members = netlist.nets[0].members
        a = np.array([members[0], members[0], 5], dtype=np.int64)
        b = np.array([members[1], members[0], 5], dtype=np.int64)
        got_dense = dense.deltas_for_swaps(a, b)
        got_csr = csr.deltas_for_swaps(a, b)
        assert np.array_equal(got_dense, got_csr)
        assert got_dense[1] == 0.0 and got_dense[2] == 0.0

    def test_csr_deltas_match_full_recompute_at_10k(self, big10k_placement):
        state = WirelengthState(big10k_placement)
        assert state.incidence_mode == "csr"
        rng = np.random.default_rng(3)
        a, b = _random_pairs(rng, big10k_placement.num_cells, 4)
        deltas = state.deltas_for_swaps(a, b)
        for pair_a, pair_b, delta in zip(a.tolist(), b.tolist(), deltas.tolist()):
            big10k_placement.swap_cells(pair_a, pair_b)
            _, swapped_total = full_hpwl(big10k_placement)
            big10k_placement.swap_cells(pair_a, pair_b)
            assert delta == pytest.approx(swapped_total - state.total, abs=1e-6)


class TestCommitPathParity:
    def test_vectorized_commit_matches_scalar(self, big2k_placement):
        scalar = WirelengthState(big2k_placement, incidence="csr")
        vectorized = WirelengthState(big2k_placement, incidence="csr")
        # instance-level override forces the vectorised recompute route
        vectorized.SCALAR_COMMIT_MAX_PINS = 0
        rng = np.random.default_rng(5)
        for _ in range(20):
            a, b = (int(x) for x in rng.integers(0, big2k_placement.num_cells, 2))
            big2k_placement.swap_cells(a, b)
            scalar.commit_swap(a, b)
            vectorized.commit_swap(a, b)
            big2k_placement.swap_cells(a, b)  # leave the module fixture intact
            scalar.commit_swap(b, a)
            vectorized.commit_swap(b, a)
        assert vectorized.total == pytest.approx(scalar.total, abs=1e-9)
        assert np.allclose(vectorized.per_net, scalar.per_net, atol=1e-9)
        scalar.verify_consistency()
        vectorized.verify_consistency()

    def test_routed_commit_never_builds_scalar_caches(self, big10k_placement):
        state = WirelengthState(big10k_placement)
        state.SCALAR_COMMIT_MAX_PINS = 0  # what a >1M-pin instance would see
        big10k_placement.swap_cells(10, 9990)
        state.commit_swap(10, 9990)
        assert state._commit_lists is None  # scalar caches never built
        state.verify_consistency()
        big10k_placement.swap_cells(10, 9990)
        state.commit_swap(10, 9990)
        state.verify_consistency()


class TestLargeApplyUndoRoundtrip:
    def test_apply_undo_roundtrip_at_10k(self, big10k_placement):
        evaluator = CostEvaluator(big10k_placement)
        before_solution = evaluator.snapshot()
        before_cost = evaluator.cost()
        rng = np.random.default_rng(11)
        pairs = np.column_stack(
            [rng.integers(0, 10_000, 6), rng.integers(0, 10_000, 6)]
        ).astype(np.int64)
        evaluator.apply_swaps(pairs)
        evaluator.undo_swaps(pairs)
        assert np.array_equal(evaluator.snapshot(), before_solution)
        assert evaluator.cost() == pytest.approx(before_cost, rel=1e-9)
