"""Unit tests for the optional-JIT kernel module (:mod:`repro.placement._kernels`).

The NumPy implementations are the reference semantics; the jitted variants
(exercised only where numba is installed — the base environment does not
ship it) must agree bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.placement import _kernels
from repro.placement._kernels import (
    HAVE_NUMBA,
    _jit_requested,
    fallback_bbox_reduce,
    fallback_bbox_reduce_numpy,
    jit_enabled,
    shared_net_mask,
    shared_net_mask_numpy,
)


class TestJitSelection:
    def test_jit_requested_parsing(self):
        for raw in ("0", "false", "False", "OFF", "no", " 0 "):
            assert not _jit_requested(raw)
        for raw in ("1", "true", "yes", "on", "", "anything"):
            assert _jit_requested(raw)

    def test_default_is_on(self):
        assert _jit_requested(None) in (True, False)  # env-dependent, no crash

    def test_jit_enabled_matches_have_numba(self):
        assert jit_enabled() == HAVE_NUMBA


class TestSharedNetMask:
    def _brute(self, sorted_keys, query_keys):
        table = set(sorted_keys.tolist())
        return np.array([k in table for k in query_keys.tolist()], dtype=bool)

    def test_matches_brute_force(self):
        rng = np.random.default_rng(5)
        sorted_keys = np.unique(rng.integers(0, 10_000, size=400).astype(np.int64))
        queries = rng.integers(0, 10_000, size=1000).astype(np.int64)
        # include guaranteed hits and the extremes
        queries = np.concatenate([queries, sorted_keys[:50], sorted_keys[-1:]])
        want = self._brute(sorted_keys, queries)
        assert np.array_equal(shared_net_mask_numpy(sorted_keys, queries), want)
        assert np.array_equal(shared_net_mask(sorted_keys, queries), want)

    def test_query_beyond_last_key(self):
        sorted_keys = np.array([2, 5, 9], dtype=np.int64)
        queries = np.array([9, 10, 10**12], dtype=np.int64)
        got = shared_net_mask_numpy(sorted_keys, queries)
        assert got.tolist() == [True, False, False]

    def test_empty_inputs(self):
        empty = np.zeros(0, dtype=np.int64)
        keys = np.array([1, 2], dtype=np.int64)
        assert shared_net_mask(empty, keys).tolist() == [False, False]
        assert shared_net_mask(keys, empty).size == 0
        assert shared_net_mask(empty, empty).size == 0


def _bbox_case(seed: int, num_segments: int, num_cells: int = 40):
    rng = np.random.default_rng(seed)
    counts = rng.integers(1, 6, size=num_segments).astype(np.int64)
    members = rng.integers(0, num_cells, size=int(counts.sum())).astype(np.int64)
    # the moved pin of each segment is one of its members
    starts = np.zeros(num_segments, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    moved = members[starts]
    to_x = rng.uniform(0, 10, size=num_segments)
    to_y = rng.uniform(0, 10, size=num_segments)
    cts = rng.permutation(num_cells).astype(np.int64)
    slot_x = rng.uniform(0, 10, size=num_cells)
    slot_y = rng.uniform(0, 10, size=num_cells)
    return members, counts, moved, to_x, to_y, cts, slot_x, slot_y


class TestFallbackBboxReduce:
    def _brute(self, members, counts, moved, to_x, to_y, cts, slot_x, slot_y):
        x_min, x_max, y_min, y_max = [], [], [], []
        cursor = 0
        for s in range(counts.size):
            xs, ys = [], []
            for _ in range(counts[s]):
                m = members[cursor]
                cursor += 1
                if m == moved[s]:
                    xs.append(to_x[s])
                    ys.append(to_y[s])
                else:
                    xs.append(slot_x[cts[m]])
                    ys.append(slot_y[cts[m]])
            x_min.append(min(xs))
            x_max.append(max(xs))
            y_min.append(min(ys))
            y_max.append(max(ys))
        return tuple(np.array(v) for v in (x_min, x_max, y_min, y_max))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_brute_force(self, seed):
        case = _bbox_case(seed, num_segments=25)
        want = self._brute(*case)
        for got in (fallback_bbox_reduce_numpy(*case), fallback_bbox_reduce(*case)):
            for got_arr, want_arr in zip(got, want):
                assert np.array_equal(got_arr, want_arr)


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
class TestJitParity:
    """Bit-parity of the jitted kernels against the NumPy reference."""

    def test_shared_net_mask_parity(self):
        rng = np.random.default_rng(11)
        sorted_keys = np.unique(rng.integers(0, 50_000, size=2000).astype(np.int64))
        queries = np.concatenate(
            [rng.integers(0, 50_000, size=5000).astype(np.int64), sorted_keys[::7]]
        )
        assert np.array_equal(
            _kernels._shared_net_mask_jit(sorted_keys, queries),
            shared_net_mask_numpy(sorted_keys, queries),
        )

    def test_fallback_bbox_parity(self):
        case = _bbox_case(9, num_segments=200)
        got = _kernels._fallback_bbox_reduce_jit(*case)
        want = fallback_bbox_reduce_numpy(*case)
        for got_arr, want_arr in zip(got, want):
            assert np.array_equal(got_arr, want_arr)
