"""Equivalence tests for the bulk-commit / incremental-install kernels.

PR 3 replaced three hot paths with incremental variants:

* ``WirelengthState.commit_swap`` updates bboxes + edge multiplicities in
  place (scalar pin scan) instead of re-reducing whole nets;
* ``CostEvaluator.apply_swaps`` commits a whole swap sequence as one bulk
  cache update (the delta-install of the parallel protocol);
* ``TimingAnalyzer.analyze`` propagates arrivals level-by-level over
  pre-vectorised edge delays instead of a scalar topological loop.

Every variant must be indistinguishable from the reference path: same costs,
same caches, same critical paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.placement import CostEvaluator, Layout, load_benchmark, random_placement
from repro.placement.timing import TimingAnalyzer

CIRCUITS = ("mini64", "c532", "c1355")

BBOX_FIELDS = (
    "_x_min",
    "_x_max",
    "_y_min",
    "_y_max",
    "_n_x_min",
    "_n_x_max",
    "_n_y_min",
    "_n_y_max",
)


def make_evaluator(circuit: str, seed: int = 1) -> CostEvaluator:
    layout = Layout(load_benchmark(circuit))
    return CostEvaluator(random_placement(layout, seed=seed))


def assert_same_caches(left: CostEvaluator, right: CostEvaluator, *, atol=1e-6):
    """Placement, wirelength bbox cache and area rows must match exactly."""
    assert np.array_equal(left.snapshot(), right.snapshot())
    for field in BBOX_FIELDS:
        lhs = getattr(left._wirelength, field)
        rhs = getattr(right._wirelength, field)
        assert np.allclose(lhs, rhs, atol=atol), field
    assert np.allclose(left._wirelength.per_net, right._wirelength.per_net, atol=atol)
    assert abs(left._wirelength.total - right._wirelength.total) <= atol * max(
        1.0, abs(right._wirelength.total)
    )
    assert np.allclose(left._area.per_row, right._area.per_row, atol=atol)


@pytest.mark.parametrize("circuit", CIRCUITS)
def test_incremental_commit_matches_recompute(circuit):
    """Hundreds of in-place commits never drift from exact recomputation."""
    evaluator = make_evaluator(circuit)
    rng = np.random.default_rng(11)
    n = evaluator.placement.num_cells
    for index in range(300):
        cell_a, cell_b = (int(v) for v in rng.integers(0, n, size=2))
        evaluator.commit_swap(cell_a, cell_b)
        if index % 60 == 0:
            evaluator.verify_consistency()
    evaluator.verify_consistency()


@pytest.mark.parametrize("circuit", CIRCUITS)
def test_apply_swaps_equals_sequential_commits(circuit):
    """Bulk apply == one-by-one commits: same placement, caches and cost."""
    rng = np.random.default_rng(5)
    bulk = make_evaluator(circuit)
    sequential = make_evaluator(circuit)
    n = bulk.placement.num_cells
    for length in (1, 2, 5, 17):
        pairs = rng.integers(0, n, size=(length, 2))
        bulk.apply_swaps(pairs)
        for cell_a, cell_b in pairs:
            sequential.commit_swap(int(cell_a), int(cell_b))
        assert np.array_equal(bulk.snapshot(), sequential.snapshot())
        bulk.verify_consistency()
        # exact costs agree (the surrogate timing state may differ by design:
        # bulk advances it once, sequential once per swap)
        assert bulk.exact_cost() == pytest.approx(sequential.exact_cost(), abs=1e-9)


@pytest.mark.parametrize("circuit", CIRCUITS)
def test_delta_adopt_equals_full_install_and_scratch(circuit):
    """apply_swaps(exact_timing=True) == install_solution == fresh evaluator.

    This is the contract the parallel protocol's delta shipment rests on:
    adopting a solution via its swap delta must leave the worker in exactly
    the state a full installation (or a from-scratch build) would.
    """
    rng = np.random.default_rng(23)
    for round_index in range(4):
        delta_adopt = make_evaluator(circuit, seed=2)
        reference = delta_adopt.snapshot()
        n = delta_adopt.placement.num_cells
        pairs = rng.integers(0, n, size=(int(rng.integers(1, 24)), 2))

        target = reference.copy()
        for cell_a, cell_b in pairs:
            target[[cell_a, cell_b]] = target[[cell_b, cell_a]]

        delta_adopt.apply_swaps(pairs, exact_timing=True)
        assert np.array_equal(delta_adopt.snapshot(), target)

        full_install = make_evaluator(circuit, seed=2)
        full_install.install_solution(target)

        scratch = CostEvaluator(
            random_placement(Layout(load_benchmark(circuit)), seed=2),
        )
        scratch.install_solution(target)

        assert delta_adopt.cost() == pytest.approx(full_install.cost(), abs=1e-6)
        assert delta_adopt.cost() == pytest.approx(scratch.cost(), abs=1e-6)
        assert delta_adopt.objectives().delay == pytest.approx(
            full_install.objectives().delay, abs=1e-9
        )
        assert_same_caches(delta_adopt, full_install)
        assert_same_caches(delta_adopt, scratch)
        delta_adopt.verify_consistency()


def test_apply_swaps_empty_and_self_swaps():
    evaluator = make_evaluator("mini64")
    before = evaluator.snapshot()
    cost = evaluator.cost()
    assert evaluator.apply_swaps(np.zeros((0, 2), dtype=np.int64)) == cost
    assert evaluator.apply_swaps([(3, 3), (5, 5)]) == cost
    assert np.array_equal(evaluator.snapshot(), before)


@pytest.mark.parametrize("circuit", CIRCUITS + ("c3540",))
def test_vectorized_sta_matches_reference(circuit):
    """Both analyze propagation paths reproduce the scalar reference exactly."""
    netlist = load_benchmark(circuit)
    layout = Layout(netlist)
    analyzer = TimingAnalyzer(netlist)
    original_mode = analyzer._use_scalar_propagation
    try:
        for seed in range(4):
            placement = random_placement(layout, seed=seed)
            reference = analyzer.analyze_reference(placement)
            for scalar in (True, False):
                analyzer._use_scalar_propagation = scalar
                result = analyzer.analyze(placement)
                assert result.critical_delay == reference.critical_delay
                assert np.array_equal(result.arrival, reference.arrival)
                assert result.critical_path == reference.critical_path
    finally:
        analyzer._use_scalar_propagation = original_mode


@pytest.mark.parametrize("circuit", CIRCUITS)
def test_fast_scalar_cost_matches_aggregator(circuit):
    """The commit-path fast cost is bit-identical to the fuzzy aggregator."""
    evaluator = make_evaluator(circuit)
    rng = np.random.default_rng(3)
    n = evaluator.placement.num_cells
    for _ in range(60):
        cell_a, cell_b = (int(v) for v in rng.integers(0, n, size=2))
        evaluator.commit_swap(cell_a, cell_b)
        assert evaluator.cost() == evaluator.aggregate(evaluator.objectives())


def test_area_apply_moved_cells_matches_rebuild():
    evaluator = make_evaluator("c532")
    rng = np.random.default_rng(9)
    n = evaluator.placement.num_cells
    pairs = rng.integers(0, n, size=(12, 2))
    cells = np.unique(pairs)
    area = evaluator._area
    old_rows = evaluator.placement.layout.slot_row[
        evaluator.placement.cell_to_slot[cells]
    ]
    for cell_a, cell_b in pairs.tolist():
        evaluator.placement.swap_cells(cell_a, cell_b)
    area.apply_moved_cells(cells, old_rows)
    updated = area.per_row.copy()
    area.rebuild()
    assert np.allclose(updated, area.per_row, atol=1e-9)
